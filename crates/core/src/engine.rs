//! The monolithic-forwarding engine (Fig. 3).
//!
//! A [`PrismEngine`] is bound to one weight container plus configuration
//! and serves top-K selections. Execution is chunk-major: the monolithic
//! batch lives as a list of chunks whose hidden states may reside in
//! memory or in a spill file, layer weights arrive from a resident set or
//! the streaming prefetcher, candidates are scored at every layer boundary
//! and routed by [`crate::routing`], and every decision is recorded in an
//! [`EngineTrace`] the device simulator can replay at paper scale.

use std::path::PathBuf;

use prism_metrics::{LatencyRecorder, MemCategory, MemoryMeter};
use prism_model::layer::{forward_layer_with, intermediate_bytes, ForwardScratch};
use prism_model::model::{add_position, layer_section, SECTION_EMBEDDING, SECTION_HEAD};
use prism_model::{HeadWeights, LayerWeights, ModelConfig, SequenceBatch};
use prism_storage::{
    Container, DiskRowSource, EmbeddingCache, EmbeddingCacheStats, LayerStreamer, SpillFile,
    StreamStats, Throttle,
};
use prism_tensor::Tensor;
use serde::Serialize;

use crate::options::{EngineOptions, PruneMode};
use crate::routing::route_candidates;
use crate::{PrismError, Result};

/// One member of the final top-K.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RankedCandidate {
    /// Original candidate index in the request batch.
    pub id: usize,
    /// Score at the layer where the candidate's fate was decided.
    pub score: f32,
    /// Layer boundary at which the candidate was accepted (equals the
    /// model depth when it survived to the end).
    pub decided_at_layer: usize,
}

/// One routing event in the trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteEvent {
    /// Layer boundary where the gate ran (before executing this layer).
    pub layer: usize,
    /// Measured coefficient of variation.
    pub cv: f32,
    /// Whether clustering ran (gate fired).
    pub clustered: bool,
    /// Original candidate ids accepted here.
    pub selected: Vec<usize>,
    /// Original candidate ids dropped here.
    pub dropped: Vec<usize>,
}

/// Everything the engine observed during one selection.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EngineTrace {
    /// Active candidates entering each executed layer.
    pub active_per_layer: Vec<usize>,
    /// Number of transformer layers actually executed.
    pub executed_layers: usize,
    /// Routing events in order.
    pub routes: Vec<RouteEvent>,
    /// Per-layer scores aligned to original candidate ids (`None` once a
    /// candidate is no longer active); present when
    /// [`EngineOptions::record_score_trace`] is set. Index 0 is the
    /// post-embedding probe.
    pub score_trace: Vec<Vec<Option<f32>>>,
    /// Weight-streaming statistics (zero when streaming is off).
    #[serde(skip)]
    pub stream_stats: StreamStats,
    /// Embedding-cache statistics (zero when the cache is off).
    #[serde(skip)]
    pub cache_stats: EmbeddingCacheStats,
    /// Named latency spans (embed / stream-wait / forward / gate / ...).
    #[serde(skip)]
    pub latency: LatencyRecorder,
    /// Bytes moved to/from the hidden-state spill file.
    pub spill_bytes: u64,
}

/// Result of one top-K selection.
#[derive(Debug, Clone, Serialize)]
pub struct Selection {
    /// The top-K candidates, highest score first.
    pub ranked: Vec<RankedCandidate>,
    /// Last known score of every candidate in the request.
    pub last_scores: Vec<f32>,
    /// Execution trace.
    pub trace: EngineTrace,
}

impl Selection {
    /// Candidate ids of the top-K in rank order.
    pub fn top_ids(&self) -> Vec<usize> {
        self.ranked.iter().map(|r| r.id).collect()
    }
}

enum EmbedSource {
    Cache(Box<EmbeddingCache<DiskRowSource>>),
    Resident(Tensor),
}

/// A slice of the monolithic batch processed as one unit.
struct Chunk {
    /// Original candidate ids, in chunk order.
    ids: Vec<usize>,
    /// Per-candidate sequence lengths.
    seq_lens: Vec<usize>,
    /// Per-candidate `[start, end)` row ranges local to this chunk,
    /// cached so the per-layer forward loop does not rebuild them.
    ranges: Vec<(usize, usize)>,
    /// Hidden states when resident.
    hidden: Option<Tensor>,
    /// Slot in the spill file when offloaded.
    spill_slot: Option<usize>,
}

impl Chunk {
    fn ranges_from(seq_lens: &[usize]) -> Vec<(usize, usize)> {
        let mut ranges = Vec::with_capacity(seq_lens.len());
        let mut at = 0;
        for &l in seq_lens {
            ranges.push((at, at + l));
            at += l;
        }
        ranges
    }

    fn rows(&self) -> usize {
        self.seq_lens.iter().sum()
    }
}

/// The PRISM inference engine.
pub struct PrismEngine {
    config: ModelConfig,
    options: EngineOptions,
    container: Container,
    head: HeadWeights,
    embed: EmbedSource,
    resident_layers: Option<Vec<LayerWeights>>,
    meter: MemoryMeter,
    spill_path: PathBuf,
    request_counter: u64,
    /// Reusable forward workspaces, one per parallel chunk worker. Sized
    /// on first use from the request's chunk geometry and kept across
    /// requests so the steady-state forward path never allocates.
    scratch_pool: Vec<ForwardScratch>,
}

impl PrismEngine {
    /// Opens an engine over a weight container.
    pub fn new(
        container: Container,
        config: ModelConfig,
        options: EngineOptions,
        meter: MemoryMeter,
    ) -> Result<Self> {
        options.validate()?;
        config.validate()?;
        let throttle = options
            .stream_throttle
            .map_or(Throttle::unlimited(), Throttle::bandwidth);

        let mut head_blob = Vec::new();
        container.read_section_into(SECTION_HEAD, &mut head_blob)?;
        let head = HeadWeights::from_bytes(&config, &head_blob)?;
        meter.alloc(MemCategory::Head, head.size_bytes() as u64);

        let embed = if options.embed_cache {
            let source = DiskRowSource::new(&container, SECTION_EMBEDDING, throttle)?;
            let capacity = ((config.vocab_size as f64 * options.embed_cache_fraction) as usize)
                .max(config.max_seq);
            let cache = EmbeddingCache::new(source, capacity);
            meter.set(MemCategory::Embedding, cache.resident_bytes() as u64);
            EmbedSource::Cache(Box::new(cache))
        } else {
            let table = container.read_f32(SECTION_EMBEDDING)?;
            meter.set(MemCategory::Embedding, table.size_bytes() as u64);
            EmbedSource::Resident(table)
        };

        let resident_layers = if options.streaming {
            None
        } else {
            let mut layers = Vec::with_capacity(config.num_layers);
            let mut blob = Vec::new();
            let mut total = 0_u64;
            for l in 0..config.num_layers {
                container.read_section_into(&layer_section(l), &mut blob)?;
                let w = LayerWeights::from_bytes(&config, &blob)?;
                total += w.size_bytes() as u64;
                layers.push(w);
            }
            meter.set(MemCategory::LayerWeights, total);
            Some(layers)
        };

        let mut spill_path = std::env::temp_dir();
        spill_path.push(format!("prism-hidden-spill-{}.bin", std::process::id()));

        Ok(PrismEngine {
            config,
            options,
            container,
            head,
            embed,
            resident_layers,
            meter,
            spill_path,
            request_counter: 0,
            scratch_pool: Vec::new(),
        })
    }

    /// The engine's model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Replaces the dispersion threshold (used by the auto-calibrator).
    pub fn set_dispersion_threshold(&mut self, threshold: f32) {
        self.options.dispersion_threshold = threshold;
    }

    /// The shared memory meter.
    pub fn meter(&self) -> &MemoryMeter {
        &self.meter
    }

    /// Selects the top-`k` candidates of `batch` (Fig. 3's workflow).
    pub fn select_top_k(&mut self, batch: &SequenceBatch, k: usize) -> Result<Selection> {
        let n = batch.num_sequences();
        if n == 0 {
            return Err(PrismError::InvalidRequest("empty batch".into()));
        }
        if k == 0 {
            return Err(PrismError::InvalidRequest("k must be >= 1".into()));
        }
        if batch.max_seq_len() > self.config.max_seq {
            return Err(PrismError::InvalidRequest(format!(
                "sequence of {} tokens exceeds model max_seq {}",
                batch.max_seq_len(),
                self.config.max_seq
            )));
        }
        let k = k.min(n);
        self.request_counter += 1;
        let mut trace = EngineTrace::default();
        let mut latency = LatencyRecorder::new();

        // ---- Embedding phase (§4.4) ----
        let hidden_all = latency.time("embed", || self.embed_batch(batch))?;
        let throttle = self
            .options
            .stream_throttle
            .map_or(Throttle::unlimited(), Throttle::bandwidth);

        // ---- Chunk geometry (§4.3) ----
        let chunk_cands = if self.options.chunking {
            match self.options.chunk_candidates {
                Some(c) => c.max(1),
                None => {
                    let avg_len = (batch.total_tokens() / n).max(1);
                    (self.options.chunk_target_tokens / avg_len).clamp(1, n)
                }
            }
        } else {
            n
        };
        let mut chunks = build_chunks(batch, &hidden_all, chunk_cands)?;
        drop(hidden_all);
        // Borrow the engine's scratch pool for this request (restored on
        // the success path; an error simply re-sizes it next request).
        let mut scratch_pool = std::mem::take(&mut self.scratch_pool);

        // Spill setup: only when offloading is on and there is something to
        // offload.
        let mut spill: Option<SpillFile> = None;
        if self.options.hidden_offload && chunks.len() > 3 {
            let slot_floats = chunks
                .iter()
                .map(|c| c.rows() * self.config.hidden_dim)
                .max()
                .unwrap_or(0);
            let mut file =
                SpillFile::create(&self.spill_path, chunks.len(), slot_floats, throttle)?;
            // Offload all but the first window of chunks.
            for (i, chunk) in chunks.iter_mut().enumerate().skip(3) {
                if let Some(t) = chunk.hidden.take() {
                    file.offload(i, &t)?;
                    chunk.spill_slot = Some(i);
                }
            }
            spill = Some(file);
        }
        self.meter
            .set(MemCategory::HiddenStates, resident_hidden_bytes(&chunks));

        // ---- Streaming setup (§4.2) ----
        let mut streamer = if self.options.streaming {
            let sections: Vec<String> = (0..self.config.num_layers).map(layer_section).collect();
            Some(LayerStreamer::new(
                &self.container,
                &sections,
                self.options.stream_depth,
                throttle,
            )?)
        } else {
            None
        };

        // ---- State ----
        let mut last_scores = vec![0.0_f32; n];
        let mut accepted: Vec<RankedCandidate> = Vec::new();
        let mut terminated = false;

        // Post-embedding probe.
        let mut current_scores = latency.time("score", || {
            self.score_chunks(&mut chunks, &mut spill, &mut trace)
        })?;
        for (id, s) in &current_scores {
            last_scores[*id] = *s;
        }
        if self.options.record_score_trace {
            trace.score_trace.push(aligned_scores(&current_scores, n));
        }

        for layer_idx in 0..self.config.num_layers {
            // ---- Pruning gate (§4.1): uses scores from the previous
            // boundary, routes before executing this layer. ----
            if self.options.pruning
                && layer_idx >= self.options.min_gate_layer.max(1)
                && !current_scores.is_empty()
            {
                let k_remaining = k - accepted.len();
                let scores_only: Vec<f32> = current_scores.iter().map(|(_, s)| *s).collect();
                let decision = latency.time("gate", || {
                    route_candidates(
                        &scores_only,
                        k_remaining,
                        self.options.dispersion_threshold,
                        self.options.mode == PruneMode::TopKOnly,
                        self.options.max_clusters,
                        self.options.seed ^ (layer_idx as u64) ^ self.request_counter,
                    )
                });
                if decision.clustered || decision.terminate {
                    let selected_ids: Vec<usize> = decision
                        .selected
                        .iter()
                        .map(|&i| current_scores[i].0)
                        .collect();
                    let dropped_ids: Vec<usize> = decision
                        .dropped
                        .iter()
                        .map(|&i| current_scores[i].0)
                        .collect();
                    for &i in &decision.selected {
                        let (id, score) = current_scores[i];
                        accepted.push(RankedCandidate {
                            id,
                            score,
                            decided_at_layer: layer_idx,
                        });
                    }
                    trace.routes.push(RouteEvent {
                        layer: layer_idx,
                        cv: decision.cv,
                        clustered: decision.clustered,
                        selected: selected_ids.clone(),
                        dropped: dropped_ids.clone(),
                    });
                    if !selected_ids.is_empty() || !dropped_ids.is_empty() {
                        // A boolean mask keyed by candidate id turns every
                        // membership probe below into O(1) instead of the
                        // former O(|keep|) scans.
                        let mut keep_mask = vec![false; n];
                        for &i in &decision.deferred {
                            keep_mask[current_scores[i].0] = true;
                        }
                        latency.time("prune", || {
                            retain_candidates(&mut chunks, &mut spill, &keep_mask)
                        })?;
                        self.meter
                            .set(MemCategory::HiddenStates, resident_hidden_bytes(&chunks));
                        current_scores.retain(|(id, _)| keep_mask[*id]);
                    }
                    if decision.terminate {
                        terminated = true;
                        break;
                    }
                }
            }

            let active: usize = chunks.iter().map(|c| c.ids.len()).sum();
            if active == 0 {
                terminated = true;
                break;
            }
            trace.active_per_layer.push(active);

            // ---- Acquire this layer's weights ----
            let (weights, raw_section) = match (&self.resident_layers, streamer.as_mut()) {
                (Some(layers), _) => (LayerRef::Borrowed(&layers[layer_idx]), None),
                (None, Some(s)) => {
                    let section = latency.time("stream-wait", || s.next())?.ok_or_else(|| {
                        PrismError::InvalidRequest("streamer exhausted early".into())
                    })?;
                    self.meter
                        .alloc(MemCategory::LayerWeights, section.meta.len);
                    let decoded = LayerWeights::from_bytes(&self.config, &section.bytes)?;
                    self.meter
                        .alloc(MemCategory::LayerWeights, decoded.size_bytes() as u64);
                    (LayerRef::Owned(Box::new(decoded)), Some(section))
                }
                (None, None) => {
                    return Err(PrismError::InvalidRequest(
                        "engine has neither resident nor streamed weights".into(),
                    ))
                }
            };

            // ---- Chunked forward (§4.3) ----
            latency.time("forward", || {
                self.forward_chunks(
                    &mut chunks,
                    &mut spill,
                    weights.get(),
                    layer_idx,
                    &mut scratch_pool,
                )
            })?;

            // Release this layer's weights; recycle the stream buffer
            // (which immediately triggers the prefetch of layer+2).
            if let Some(section) = raw_section {
                let decoded_bytes = match &weights {
                    LayerRef::Owned(w) => w.size_bytes() as u64,
                    LayerRef::Borrowed(_) => 0,
                };
                self.meter
                    .free(MemCategory::LayerWeights, section.meta.len + decoded_bytes);
                if let Some(s) = streamer.as_mut() {
                    s.recycle(section)?;
                }
            }
            trace.executed_layers += 1;

            // ---- Score at the layer boundary ----
            current_scores = latency.time("score", || {
                self.score_chunks(&mut chunks, &mut spill, &mut trace)
            })?;
            for (id, s) in &current_scores {
                last_scores[*id] = *s;
            }
            if self.options.record_score_trace {
                trace.score_trace.push(aligned_scores(&current_scores, n));
            }
        }

        // ---- Finalize ----
        if !terminated {
            // Survivors compete for the remaining slots by final score.
            let mut survivors = current_scores.clone();
            survivors.sort_by(|a, b| b.1.total_cmp(&a.1));
            let slots = k - accepted.len();
            for &(id, score) in survivors.iter().take(slots) {
                accepted.push(RankedCandidate {
                    id,
                    score,
                    decided_at_layer: self.config.num_layers,
                });
            }
        }
        accepted.sort_by(|a, b| b.score.total_cmp(&a.score));
        accepted.truncate(k);

        if let Some(s) = streamer.take() {
            trace.stream_stats = s.stats();
        }
        if let EmbedSource::Cache(c) = &mut self.embed {
            trace.cache_stats = c.stats();
        }
        if let Some(file) = spill.take() {
            trace.spill_bytes = file.bytes_written() + file.bytes_read();
            file.cleanup()?;
        }
        self.meter.set(MemCategory::HiddenStates, 0);
        self.meter.set(MemCategory::Intermediate, 0);
        trace.latency = latency;
        self.scratch_pool = scratch_pool;

        Ok(Selection {
            ranked: accepted,
            last_scores,
            trace,
        })
    }

    fn embed_batch(&mut self, batch: &SequenceBatch) -> Result<Tensor> {
        let d = self.config.hidden_dim;
        let mut hidden = Tensor::zeros(batch.total_tokens(), d);
        // Match on the source once; the resident path copies straight from
        // the table row into the hidden row (no per-token heap traffic).
        match &mut self.embed {
            EmbedSource::Cache(cache) => {
                for &(start, end) in batch.ranges() {
                    for (pos, t) in (start..end).enumerate() {
                        let row = hidden.row_mut(t)?;
                        cache.lookup_into(batch.tokens()[t], row)?;
                        add_position(row, pos, d);
                    }
                }
            }
            EmbedSource::Resident(table) => {
                for &(start, end) in batch.ranges() {
                    for (pos, t) in (start..end).enumerate() {
                        let token = batch.tokens()[t] as usize;
                        if token >= table.rows() {
                            return Err(PrismError::InvalidRequest(format!(
                                "token {token} outside vocabulary"
                            )));
                        }
                        let row = hidden.row_mut(t)?;
                        row.copy_from_slice(table.row(token)?);
                        add_position(row, pos, d);
                    }
                }
            }
        }
        Ok(hidden)
    }

    /// Forwards every chunk through one layer.
    ///
    /// Resident (non-spilled) chunks run in parallel across a scoped
    /// thread pool — each worker owns one [`ForwardScratch`] — while the
    /// spill window stays sequential: spilled chunks share the spill file
    /// and are fetched, forwarded and written back one at a time, exactly
    /// as the §4.3 memory bound assumes. Chunks are data-independent and
    /// each is computed with a deterministic per-row accumulation order,
    /// so the parallel schedule cannot change results.
    fn forward_chunks(
        &self,
        chunks: &mut [Chunk],
        spill: &mut Option<SpillFile>,
        weights: &LayerWeights,
        layer_idx: usize,
        pool: &mut Vec<ForwardScratch>,
    ) -> Result<()> {
        let max_seq = chunks
            .iter()
            .flat_map(|c| c.seq_lens.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        let max_rows = chunks.iter().map(Chunk::rows).max().unwrap_or(0);
        let workers = self.chunk_workers(chunks, max_rows);
        while pool.len() < workers.max(1) {
            pool.push(ForwardScratch::new(&self.config, max_rows));
        }

        // ---- Sequential spill window ----
        for i in 0..chunks.len() {
            if chunks[i].spill_slot.is_none() {
                continue;
            }
            if chunks[i].hidden.is_none() {
                if let (Some(slot), Some(file)) = (chunks[i].spill_slot, spill.as_mut()) {
                    chunks[i].hidden = Some(file.fetch(slot)?);
                    self.meter
                        .set(MemCategory::HiddenStates, resident_hidden_bytes(chunks));
                }
            }
            let chunk = &mut chunks[i];
            let Some(hidden) = chunk.hidden.as_mut() else {
                continue;
            };
            let inter = intermediate_bytes(&self.config, hidden.rows(), max_seq);
            self.meter.alloc(MemCategory::Intermediate, inter);
            forward_layer_with(
                &self.config,
                weights,
                layer_idx,
                hidden,
                &chunk.ranges,
                &mut pool[0],
            )?;
            self.meter.free(MemCategory::Intermediate, inter);
            if let (Some(slot), Some(file)) = (chunk.spill_slot, spill.as_mut()) {
                let t = chunk.hidden.take().expect("hidden present");
                file.offload(slot, &t)?;
            }
            self.meter
                .set(MemCategory::HiddenStates, resident_hidden_bytes(chunks));
        }

        // ---- Parallel resident chunks ----
        let mut resident: Vec<&mut Chunk> = chunks
            .iter_mut()
            .filter(|c| c.spill_slot.is_none() && c.hidden.is_some())
            .collect();
        if resident.is_empty() {
            return Ok(());
        }
        // Each live worker holds one scratch sized for the largest chunk;
        // that product is the true concurrent intermediate footprint.
        let inter = workers.max(1) as u64 * intermediate_bytes(&self.config, max_rows, max_seq);
        self.meter.alloc(MemCategory::Intermediate, inter);
        let result: Result<()> = if workers <= 1 {
            let scratch = &mut pool[0];
            resident.iter_mut().try_for_each(|chunk| -> Result<()> {
                let hidden = chunk.hidden.as_mut().expect("resident chunk");
                forward_layer_with(
                    &self.config,
                    weights,
                    layer_idx,
                    hidden,
                    &chunk.ranges,
                    scratch,
                )?;
                Ok(())
            })
        } else {
            let group = resident.len().div_ceil(workers);
            let results: Vec<Result<()>> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (chunk_group, scratch) in resident.chunks_mut(group).zip(pool.iter_mut()) {
                    handles.push(scope.spawn(move || -> Result<()> {
                        for chunk in chunk_group.iter_mut() {
                            let hidden = chunk.hidden.as_mut().expect("resident chunk");
                            forward_layer_with(
                                &self.config,
                                weights,
                                layer_idx,
                                hidden,
                                &chunk.ranges,
                                scratch,
                            )?;
                        }
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunk worker panicked"))
                    .collect()
            });
            results.into_iter().collect()
        };
        self.meter.free(MemCategory::Intermediate, inter);
        result
    }

    /// How many workers the resident chunks of this request justify: one
    /// unless there are several chunks *and* enough per-layer work for the
    /// thread fan-out to beat its own overhead.
    fn chunk_workers(&self, chunks: &[Chunk], max_rows: usize) -> usize {
        /// Per-chunk multiply-accumulate work below which spawning scoped
        /// threads costs more than it saves.
        const PAR_MAC_THRESHOLD: usize = 1 << 19;
        let resident = chunks
            .iter()
            .filter(|c| c.spill_slot.is_none() && c.hidden.is_some())
            .count();
        let d = self.config.hidden_dim;
        let f = self.config.ffn_dim;
        let macs = max_rows * d * (4 * d + 3 * f);
        if resident < 2 || macs < PAR_MAC_THRESHOLD {
            return 1;
        }
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(resident)
            .min(8)
    }

    /// Scores all active candidates; returns `(original_id, score)` pairs
    /// in chunk order.
    fn score_chunks(
        &self,
        chunks: &mut [Chunk],
        spill: &mut Option<SpillFile>,
        _trace: &mut EngineTrace,
    ) -> Result<Vec<(usize, f32)>> {
        let mut out = Vec::new();
        for chunk in chunks.iter_mut() {
            if chunk.ids.is_empty() {
                continue;
            }
            let fetched_here = chunk.hidden.is_none();
            if fetched_here {
                if let (Some(slot), Some(file)) = (chunk.spill_slot, spill.as_mut()) {
                    chunk.hidden = Some(file.fetch(slot)?);
                }
            }
            let hidden = chunk.hidden.as_ref().ok_or_else(|| {
                PrismError::InvalidRequest("chunk hidden state unavailable".into())
            })?;
            let scores = prism_model::classifier::score_sequences(
                &self.config,
                &self.head,
                hidden,
                &chunk.ranges,
            )?;
            for (id, s) in chunk.ids.iter().zip(scores) {
                out.push((*id, s));
            }
            if fetched_here && chunk.spill_slot.is_some() {
                // Scoring does not dirty hidden states; just release.
                chunk.hidden = None;
            }
        }
        Ok(out)
    }
}

enum LayerRef<'a> {
    Borrowed(&'a LayerWeights),
    Owned(Box<LayerWeights>),
}

impl LayerRef<'_> {
    fn get(&self) -> &LayerWeights {
        match self {
            LayerRef::Borrowed(w) => w,
            LayerRef::Owned(w) => w,
        }
    }
}

fn build_chunks(
    batch: &SequenceBatch,
    hidden_all: &Tensor,
    chunk_cands: usize,
) -> Result<Vec<Chunk>> {
    let n = batch.num_sequences();
    let mut chunks = Vec::with_capacity(n.div_ceil(chunk_cands));
    let mut i = 0;
    while i < n {
        let end = (i + chunk_cands).min(n);
        let ids: Vec<usize> = (i..end).collect();
        let seq_lens: Vec<usize> = ids
            .iter()
            .map(|&c| {
                let (s, e) = batch.ranges()[c];
                e - s
            })
            .collect();
        let row_start = batch.ranges()[i].0;
        let row_end = batch.ranges()[end - 1].1;
        let hidden = hidden_all.slice_rows(row_start, row_end)?;
        let ranges = Chunk::ranges_from(&seq_lens);
        chunks.push(Chunk {
            ids,
            seq_lens,
            ranges,
            hidden: Some(hidden),
            spill_slot: None,
        });
        i = end;
    }
    Ok(chunks)
}

fn resident_hidden_bytes(chunks: &[Chunk]) -> u64 {
    chunks
        .iter()
        .filter_map(|c| c.hidden.as_ref().map(|h| h.size_bytes() as u64))
        .sum()
}

fn aligned_scores(scores: &[(usize, f32)], n: usize) -> Vec<Option<f32>> {
    let mut out = vec![None; n];
    for &(id, s) in scores {
        out[id] = Some(s);
    }
    out
}

/// Removes all candidates whose id is unset in the `keep` mask (indexed
/// by original candidate id), fetching and re-offloading spilled chunks
/// as needed.
fn retain_candidates(
    chunks: &mut Vec<Chunk>,
    spill: &mut Option<SpillFile>,
    keep: &[bool],
) -> Result<()> {
    for chunk in chunks.iter_mut() {
        let keep_local: Vec<usize> = chunk
            .ids
            .iter()
            .enumerate()
            .filter_map(|(li, id)| keep[*id].then_some(li))
            .collect();
        if keep_local.len() == chunk.ids.len() {
            continue;
        }
        let fetched_here = chunk.hidden.is_none();
        if fetched_here {
            if let (Some(slot), Some(file)) = (chunk.spill_slot, spill.as_mut()) {
                chunk.hidden = Some(file.fetch(slot)?);
            }
        }
        let Some(hidden) = chunk.hidden.take() else {
            // Nothing resident and no spill: chunk must be empty.
            chunk.ids.clear();
            chunk.seq_lens.clear();
            chunk.ranges.clear();
            continue;
        };
        let mut rows: Vec<usize> = Vec::new();
        for &li in &keep_local {
            let (s, e) = chunk.ranges[li];
            rows.extend(s..e);
        }
        let new_hidden = hidden.gather_rows(&rows)?;
        chunk.ids = keep_local.iter().map(|&li| chunk.ids[li]).collect();
        chunk.seq_lens = keep_local.iter().map(|&li| chunk.seq_lens[li]).collect();
        chunk.ranges = Chunk::ranges_from(&chunk.seq_lens);
        if let (Some(slot), Some(file), true) = (chunk.spill_slot, spill.as_mut(), fetched_here) {
            if chunk.ids.is_empty() {
                file.release(slot);
                chunk.spill_slot = None;
            } else {
                file.offload(slot, &new_hidden)?;
            }
            chunk.hidden = None;
        } else {
            chunk.hidden = if chunk.ids.is_empty() {
                None
            } else {
                Some(new_hidden)
            };
        }
    }
    chunks.retain(|c| !c.ids.is_empty());
    Ok(())
}
