//! The monolithic-forwarding engine (Fig. 3).
//!
//! A [`PrismEngine`] is bound to one weight container plus configuration
//! and serves top-K selections. Execution is chunk-major: the monolithic
//! batch lives as a list of chunks whose hidden states may reside in
//! memory or in a spill file, layer weights arrive from a resident set or
//! the streaming prefetcher, candidates are scored at every layer boundary
//! and routed by [`crate::routing`], and every decision is recorded in an
//! [`EngineTrace`] the device simulator can replay at paper scale.
//!
//! Since the serving front-end (`prism-serve`) landed, the engine is
//! **shared-state free on the request path**: [`PrismEngine::select_top_k`]
//! takes `&self`, so the engine is `Sync` and one instance can serve many
//! worker threads at once. A selection is decomposed into explicit phases —
//! [`PrismEngine::plan_request`] (embed + chunk + post-embedding probe),
//! a per-layer gate/forward/score advance, and
//! [`PrismEngine::finalize_request`] — and [`PrismEngine::select_batch`]
//! drives several planned requests through those phases in lockstep so one
//! streamed pass over the layer weights is amortized across every request
//! of a scheduler batch. Each request's own computation is performed in
//! exactly the order the single-request path uses, so batched results are
//! bit-identical to sequential ones.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use prism_metrics::{LatencyRecorder, MemCategory, MemoryMeter};
use prism_model::layer::{
    forward_layer_int8, forward_layer_with, intermediate_bytes, ForwardScratch,
};
use prism_model::model::{add_position, layer_section, SECTION_EMBEDDING, SECTION_HEAD};
use prism_model::{HeadWeights, Int8LayerWeights, LayerWeights, ModelConfig, SequenceBatch};
use prism_storage::{
    Container, DiskRowSource, EmbeddingCache, EmbeddingCacheStats, LayerStreamer, SpillFile,
    SpillPipeline, SpillPrecision, SpillStats, StorageError, StreamStats, Throttle,
};
use prism_tensor::igemm::RowQuantBlock;
use prism_tensor::Tensor;
use serde::Serialize;

use crate::control::{CancelToken, ProgressFn, ProgressUpdate};
use crate::options::{
    ComputePrecision, EngineOptions, PartialMode, Priority, PruneMode, SemCacheMode,
};
use crate::routing::route_candidates;
use crate::{PrismError, Result};

/// One member of the final top-K.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RankedCandidate {
    /// Original candidate index in the request batch.
    pub id: usize,
    /// Score at the layer where the candidate's fate was decided.
    pub score: f32,
    /// Layer boundary at which the candidate was accepted (equals the
    /// model depth when it survived to the end).
    pub decided_at_layer: usize,
}

/// One routing event in the trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteEvent {
    /// Layer boundary where the gate ran (before executing this layer).
    pub layer: usize,
    /// Measured coefficient of variation.
    pub cv: f32,
    /// Whether clustering ran (gate fired).
    pub clustered: bool,
    /// Original candidate ids accepted here.
    pub selected: Vec<usize>,
    /// Original candidate ids dropped here.
    pub dropped: Vec<usize>,
}

/// Everything the engine observed during one selection.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EngineTrace {
    /// Active candidates entering each executed layer.
    pub active_per_layer: Vec<usize>,
    /// Number of transformer layers actually executed.
    pub executed_layers: usize,
    /// Routing events in order.
    pub routes: Vec<RouteEvent>,
    /// Per-layer scores aligned to original candidate ids (`None` once a
    /// candidate is no longer active); present when
    /// [`EngineOptions::record_score_trace`] is set. Index 0 is the
    /// post-embedding probe.
    pub score_trace: Vec<Vec<Option<f32>>>,
    /// Weight-streaming statistics (zero when streaming is off). For a
    /// batched selection the streamer is shared, so every member request
    /// reports the batch-level stats.
    #[serde(skip)]
    pub stream_stats: StreamStats,
    /// Embedding-cache statistics (zero when the cache is off).
    #[serde(skip)]
    pub cache_stats: EmbeddingCacheStats,
    /// Spill-pipeline statistics (zero when hidden offload is off):
    /// bytes through the spill file, I/O time, and how much of it the
    /// overlapped window hid behind computation.
    #[serde(skip)]
    pub spill_stats: SpillStats,
    /// Named latency spans (embed / stream-wait / forward / gate / ...).
    #[serde(skip)]
    pub latency: LatencyRecorder,
    /// Bytes moved to/from the hidden-state spill file.
    pub spill_bytes: u64,
}

/// Result of one top-K selection.
#[derive(Debug, Clone, Serialize)]
pub struct Selection {
    /// The top-K candidates, highest score first.
    pub ranked: Vec<RankedCandidate>,
    /// Last known score of every candidate in the request.
    pub last_scores: Vec<f32>,
    /// Fraction of the request's candidates that were fully served, in
    /// `(0, 1]`. Always `1.0` for single-engine selections; a sharded
    /// request served under [`crate::PartialMode::Partial`] after losing
    /// candidates to an unrecoverable shard reports the surviving
    /// fraction, so callers can distinguish exact from best-effort
    /// results.
    pub coverage: f32,
    /// Execution trace.
    pub trace: EngineTrace,
}

impl Selection {
    /// Candidate ids of the top-K in rank order.
    pub fn top_ids(&self) -> Vec<usize> {
        self.ranked.iter().map(|r| r.id).collect()
    }

    /// Whether every candidate of the request was fully served (the
    /// bit-identity contract only holds for complete selections).
    pub fn is_complete(&self) -> bool {
        self.coverage >= 1.0
    }
}

/// Per-request selection parameters.
///
/// `k` is mandatory; the remaining fields optionally override the
/// engine-level [`EngineOptions`] knobs that only influence *routing* (not
/// execution strategy), which lets a multi-tenant server honour per-request
/// pruning preferences without rebuilding the engine. `tag` pins the
/// request's routing-RNG stream: two selections with the same batch,
/// options and tag produce bit-identical results regardless of what else
/// the engine served in between — the property the serving conformance
/// suite is built on. When `tag` is `None` the engine assigns the next
/// value of its internal request counter (the historical behaviour).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestOptions {
    /// Number of candidates to select.
    pub k: usize,
    /// Explicit routing-seed tag; `None` draws from the engine's counter.
    pub tag: Option<u64>,
    /// Override of [`EngineOptions::dispersion_threshold`].
    pub dispersion_threshold: Option<f32>,
    /// Override of [`EngineOptions::mode`].
    pub mode: Option<PruneMode>,
    /// Override of [`EngineOptions::pruning`].
    pub pruning: Option<bool>,
    /// Scheduling class: consumed by the serving layer's priority-aware
    /// batch planner, ignored by direct engine calls. Never influences
    /// the computed selection.
    pub priority: Priority,
    /// Relative deadline budget in microseconds, measured from
    /// submission. The serving layer rejects requests whose deadline has
    /// already passed at admission and sheds them from the queue when it
    /// passes while they wait; an in-flight request aborts at the next
    /// layer boundary with [`PrismError::DeadlineExceeded`]. `None`
    /// (default) means no deadline.
    pub deadline_us: Option<u64>,
    /// Precision of hidden states spilled under the offload regime. The
    /// default [`SpillPrecision::Int8`] moves 4x fewer bytes through the
    /// spill throttle (per-candidate scores shift within the row-quant
    /// error bound but top-K membership is preserved in practice);
    /// [`SpillPrecision::F32`] opts out for a bit-exact spill round trip.
    /// Ignored when the engine does not offload hidden states.
    pub spill_precision: SpillPrecision,
    /// Numeric precision of the per-layer forward computation. The
    /// default [`ComputePrecision::F32`] keeps the historical bit-exact
    /// path; [`ComputePrecision::Int8`] opts into the integer GEMM
    /// micro-kernels (see [`ComputePrecision`] for the accuracy
    /// contract). When combined with the default int8 spill precision,
    /// spilled hidden states move through the pipeline as row-quant
    /// blocks and skip the f32 decode round-trip entirely.
    pub compute_precision: ComputePrecision,
    /// Semantic result-cache policy (see [`SemCacheMode`]). Consumed by
    /// the serving layer's cross-request cache (`prism-semcache`);
    /// ignored by direct engine calls. The default [`SemCacheMode::Off`]
    /// keeps the exact path. Because the cache may change *what* a
    /// selection returns (in [`SemCacheMode::Aggressive`]), the mode
    /// participates in serving result-cache keys.
    pub semcache: SemCacheMode,
    /// Degraded-mode policy when a sharded deployment loses candidates
    /// it cannot recover (every replica of a shard down). The default
    /// [`PartialMode::Fail`] keeps the exact-or-error contract;
    /// [`PartialMode::Partial`] accepts a best-effort top-k over the
    /// survivors, surfaced as [`Selection::coverage`]` < 1.0`. Ignored
    /// by direct single-engine calls.
    pub on_partial: PartialMode,
}

impl RequestOptions {
    /// Plain top-`k` with every engine default.
    pub fn top_k(k: usize) -> Self {
        RequestOptions {
            k,
            tag: None,
            dispersion_threshold: None,
            mode: None,
            pruning: None,
            priority: Priority::Normal,
            deadline_us: None,
            spill_precision: SpillPrecision::default(),
            compute_precision: ComputePrecision::default(),
            semcache: SemCacheMode::default(),
            on_partial: PartialMode::default(),
        }
    }

    /// Same as [`RequestOptions::top_k`] with an explicit routing tag.
    pub fn tagged(k: usize, tag: u64) -> Self {
        RequestOptions {
            tag: Some(tag),
            ..RequestOptions::top_k(k)
        }
    }

    /// Returns a copy with the given scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy with a relative deadline budget.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Returns a copy with a per-request dispersion-threshold override
    /// (the calibrator's actuator since the engine became `Sync`).
    pub fn with_dispersion_threshold(mut self, threshold: f32) -> Self {
        self.dispersion_threshold = Some(threshold);
        self
    }

    /// Returns a copy with the given hidden-state spill precision.
    pub fn with_spill_precision(mut self, precision: SpillPrecision) -> Self {
        self.spill_precision = precision;
        self
    }

    /// Returns a copy with the given forward-compute precision.
    pub fn with_compute_precision(mut self, precision: ComputePrecision) -> Self {
        self.compute_precision = precision;
        self
    }

    /// Returns a copy with the given semantic result-cache policy.
    pub fn with_semcache(mut self, mode: SemCacheMode) -> Self {
        self.semcache = mode;
        self
    }

    /// Returns a copy with the given degraded-mode policy.
    pub fn with_on_partial(mut self, mode: PartialMode) -> Self {
        self.on_partial = mode;
        self
    }
}

/// One request of a batched selection: a borrowed batch plus its options.
#[derive(Debug)]
pub struct RequestSpec<'a> {
    /// The candidate batch to select from.
    pub batch: &'a SequenceBatch,
    /// Per-request parameters.
    pub options: RequestOptions,
}

/// Routing parameters resolved for one request (engine defaults plus
/// [`RequestOptions`] overrides). Crate-visible so the scatter-gather
/// coordinator ([`crate::scatter`]) resolves them with the same rule.
#[derive(Debug, Clone)]
pub(crate) struct GateParams {
    pub(crate) pruning: bool,
    pub(crate) dispersion_threshold: f32,
    pub(crate) top_k_only: bool,
    pub(crate) max_clusters: usize,
    pub(crate) min_gate_layer: usize,
}

impl GateParams {
    /// Resolves the gate parameters for one request: engine defaults with
    /// the per-request routing overrides applied. Both the in-engine gate
    /// and the scatter-gather coordinator go through here, so a sharded
    /// request can never resolve differently from a single-engine one.
    pub(crate) fn resolve(engine: &EngineOptions, options: &RequestOptions) -> GateParams {
        GateParams {
            pruning: options.pruning.unwrap_or(engine.pruning),
            dispersion_threshold: options
                .dispersion_threshold
                .unwrap_or(engine.dispersion_threshold),
            top_k_only: options.mode.unwrap_or(engine.mode) == PruneMode::TopKOnly,
            max_clusters: engine.max_clusters,
            min_gate_layer: engine.min_gate_layer,
        }
    }
}

/// Mutable view of the selection bookkeeping one gate evaluation updates.
///
/// There is exactly one implementation of the gate's bookkeeping —
/// [`route_and_book`] — borrowed by both the in-engine gate
/// ([`PrismEngine`]'s layer loop over an [`ActiveRequest`]) and the
/// scatter-gather coordinator ([`crate::scatter::ScatterGate`], which runs
/// the gate over the merged cross-shard score vector). Any drift between
/// the two would break the sharded path's bit-identity contract.
pub(crate) struct GateBook<'a> {
    /// Top-K size (already clamped to the candidate count).
    pub k: usize,
    /// Candidate count of the originating batch.
    pub n: usize,
    pub accepted: &'a mut Vec<RankedCandidate>,
    pub current_scores: &'a mut Vec<(usize, f32)>,
    pub trace: &'a mut EngineTrace,
    pub dropped_total: &'a mut usize,
}

/// Outcome of one gate evaluation ([`route_and_book`]).
pub(crate) struct GateStep {
    /// Keep-mask over original candidate ids, present when the decision
    /// pruned anyone — drives physical retention of chunks / spill slots.
    pub keep_mask: Option<Vec<bool>>,
    /// The request is decided: stop forwarding layers.
    pub terminate: bool,
}

/// Runs the pruning gate for one layer boundary over `book` and applies
/// the routing decision to the score-level bookkeeping (accepted set,
/// current scores, trace, dropped count). Physical retention of hidden
/// states is left to the caller via the returned keep-mask.
pub(crate) fn route_and_book(
    book: GateBook<'_>,
    layer_idx: usize,
    gate: &GateParams,
    engine_seed: u64,
    tag: u64,
) -> GateStep {
    if !(gate.pruning && layer_idx >= gate.min_gate_layer.max(1) && !book.current_scores.is_empty())
    {
        return GateStep {
            keep_mask: None,
            terminate: false,
        };
    }
    let k_remaining = book.k - book.accepted.len();
    let scores_only: Vec<f32> = book.current_scores.iter().map(|(_, s)| *s).collect();
    let decision = route_candidates(
        &scores_only,
        k_remaining,
        gate.dispersion_threshold,
        gate.top_k_only,
        gate.max_clusters,
        engine_seed ^ (layer_idx as u64) ^ tag,
    );
    if !(decision.clustered || decision.terminate) {
        return GateStep {
            keep_mask: None,
            terminate: false,
        };
    }
    let selected_ids: Vec<usize> = decision
        .selected
        .iter()
        .map(|&i| book.current_scores[i].0)
        .collect();
    let dropped_ids: Vec<usize> = decision
        .dropped
        .iter()
        .map(|&i| book.current_scores[i].0)
        .collect();
    for &i in &decision.selected {
        let (id, score) = book.current_scores[i];
        book.accepted.push(RankedCandidate {
            id,
            score,
            decided_at_layer: layer_idx,
        });
    }
    *book.dropped_total += dropped_ids.len();
    book.trace.routes.push(RouteEvent {
        layer: layer_idx,
        cv: decision.cv,
        clustered: decision.clustered,
        selected: selected_ids.clone(),
        dropped: dropped_ids.clone(),
    });
    let keep_mask = (!selected_ids.is_empty() || !dropped_ids.is_empty()).then(|| {
        // A boolean mask keyed by candidate id turns every membership
        // probe into O(1) instead of an O(|keep|) scan.
        let mut mask = vec![false; book.n];
        for &i in &decision.deferred {
            mask[book.current_scores[i].0] = true;
        }
        mask
    });
    if let Some(mask) = &keep_mask {
        book.current_scores.retain(|(id, _)| mask[*id]);
    }
    GateStep {
        keep_mask,
        terminate: decision.terminate,
    }
}

/// Ranks the survivors of a finished selection into `accepted`: undecided
/// candidates compete for the remaining slots by final score (stable sort,
/// so ties keep ascending-id order), then the whole accepted set is
/// ordered score-descending and truncated to `k`. Shared by
/// [`PrismEngine::finalize_request`] and the scatter-gather coordinator —
/// the merge tie-breaking rule exists exactly once.
pub(crate) fn finalize_ranked(
    accepted: &mut Vec<RankedCandidate>,
    current_scores: &[(usize, f32)],
    terminated: bool,
    k: usize,
    depth: usize,
) {
    if !terminated {
        let mut survivors = current_scores.to_vec();
        survivors.sort_by(|a, b| b.1.total_cmp(&a.1));
        let slots = k - accepted.len();
        for &(id, score) in survivors.iter().take(slots) {
            accepted.push(RankedCandidate {
                id,
                score,
                decided_at_layer: depth,
            });
        }
    }
    accepted.sort_by(|a, b| b.score.total_cmp(&a.score));
    accepted.truncate(k);
}

/// Ranks a complete full-depth score vector into the top-`k` — the
/// pruning-off selection rule as a standalone function: candidates sort
/// by score descending with ties keeping ascending-id order, take `k`,
/// every winner decided at `depth` (a full-depth run decides everyone at
/// the final layer, [`PrismEngine::finalize_request`] passes the model's
/// layer count).
///
/// This is the internal `finalize_ranked` path with an empty accepted set, exported so
/// the serving layer's semantic result cache (`prism-semcache`) can merge
/// replayed and recomputed per-candidate scores and rank them *through
/// the same code path* a pruning-off engine run uses — the bit-identity
/// contract of `SemCacheMode::VerifyAndFallback` rests on this being the
/// one ranking rule.
pub fn rank_full_scores(scores: &[f32], k: usize, depth: usize) -> Vec<RankedCandidate> {
    let indexed: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    let mut accepted = Vec::new();
    finalize_ranked(&mut accepted, &indexed, false, k.min(scores.len()), depth);
    accepted
}

enum EmbedSource {
    Cache(Box<EmbeddingCache<DiskRowSource>>),
    Resident(Tensor),
}

/// A slice of the monolithic batch processed as one unit.
struct Chunk {
    /// Original candidate ids, in chunk order.
    ids: Vec<usize>,
    /// Per-candidate sequence lengths.
    seq_lens: Vec<usize>,
    /// Per-candidate `[start, end)` row ranges local to this chunk,
    /// cached so the per-layer forward loop does not rebuild them.
    ranges: Vec<(usize, usize)>,
    /// Per-candidate token sequences, kept so a chunk whose spill slot
    /// fails its checksum can be recomputed from the weights (embed +
    /// replay the executed layers) instead of poisoning the request.
    /// Token ids are small next to hidden states (4 bytes/token vs
    /// 4·hidden_dim), so this costs well under 1% of a chunk.
    tokens: Vec<Vec<u32>>,
    /// Hidden states when resident.
    hidden: Option<Tensor>,
    /// Slot in the spill file when offloaded.
    spill_slot: Option<usize>,
}

impl Chunk {
    fn ranges_from(seq_lens: &[usize]) -> Vec<(usize, usize)> {
        let mut ranges = Vec::with_capacity(seq_lens.len());
        let mut at = 0;
        for &l in seq_lens {
            ranges.push((at, at + l));
            at += l;
        }
        ranges
    }

    fn rows(&self) -> usize {
        self.seq_lens.iter().sum()
    }
}

/// In-flight state of one planned selection.
///
/// Produced by [`PrismEngine::plan_request`], advanced layer by layer by
/// [`PrismEngine::select_batch_with`]'s loop, consumed by
/// [`PrismEngine::finalize_request`]. Owning this state outside the engine
/// is what lets a serving scheduler interleave many requests over one
/// weight stream.
pub struct ActiveRequest {
    n: usize,
    k: usize,
    tag: u64,
    gate: GateParams,
    /// Forward-compute precision this request was planned with.
    compute: ComputePrecision,
    /// Whether the spill window moves row-quant blocks instead of f32
    /// tensors (int8 compute combined with int8 spill precision).
    block_spill: bool,
    /// Whether the int8 spill regime is active for this request. When
    /// set, **every** chunk's hidden state passes through the rowq
    /// round-trip between layers — resident chunks in memory, spilled
    /// chunks through the file — so quantization is a property of the
    /// request, not of which chunks happened to be offloaded. Without
    /// this, result bits would depend on physical layout (chunk count,
    /// residency window, shard partitioning), breaking the cross-layout
    /// conformance guarantees.
    int8_spill: bool,
    record_score_trace: bool,
    chunks: Vec<Chunk>,
    /// Meter handle for drop-time release of this request's bytes.
    meter: MemoryMeter,
    spill: Option<SpillPipeline>,
    /// Live hidden-state bytes this request currently contributes to the
    /// shared meter (delta-tracked so concurrent requests don't clobber
    /// each other's ledger entries).
    metered_hidden: u64,
    current_scores: Vec<(usize, f32)>,
    last_scores: Vec<f32>,
    accepted: Vec<RankedCandidate>,
    terminated: bool,
    trace: EngineTrace,
    latency: LatencyRecorder,
    /// Cooperative cancellation flag, checked at every layer boundary.
    cancel: CancelToken,
    /// Absolute deadline, checked at every layer boundary.
    deadline: Option<Instant>,
    /// Layer-granularity progress sink.
    progress: Option<ProgressFn>,
    /// Why the request stopped early, if it did.
    abort: Option<AbortReason>,
    /// Candidates dropped by the gate so far (progress reporting).
    dropped_total: usize,
}

/// Why an in-flight request was aborted at a layer boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortReason {
    Cancelled,
    DeadlineExceeded,
}

impl ActiveRequest {
    /// Whether the request needs no further layers.
    pub fn is_done(&self) -> bool {
        self.terminated
    }

    /// Number of candidates in the originating batch.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// The routing-seed tag this request was planned with.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Attaches a cancellation token. The engine observes it at every
    /// layer boundary; on cancellation the request's spill file and
    /// hidden-state bytes are released immediately and
    /// [`PrismEngine::finalize_request`] returns
    /// [`PrismError::Cancelled`].
    pub fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Attaches an absolute deadline, enforced at every layer boundary;
    /// past it the request aborts like a cancellation and
    /// [`PrismEngine::finalize_request`] returns
    /// [`PrismError::DeadlineExceeded`].
    pub fn attach_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Attaches a progress sink receiving one [`ProgressUpdate`] per
    /// layer boundary (after the gate) and after each forwarded layer.
    pub fn attach_progress(&mut self, progress: ProgressFn) {
        self.progress = Some(progress);
    }

    /// Whether the request was aborted (cancelled / deadline) mid-flight.
    pub fn is_aborted(&self) -> bool {
        self.abort.is_some()
    }

    /// Scores of the still-active candidates, ascending by original
    /// candidate id — a pure read of the last layer boundary's (or the
    /// post-embedding probe's) output. A scatter-gather coordinator
    /// gathers these from every shard to rebuild the global score vector.
    pub fn scores(&self) -> &[(usize, f32)] {
        &self.current_scores
    }

    /// Aborts at a layer boundary: releases every resource the request
    /// holds *now* — resident hidden states come off the shared meter,
    /// the spill pipeline is stopped (in-flight background I/O joined)
    /// and its file deleted — instead of when the batch finishes.
    fn abort(&mut self, reason: AbortReason, meter: &MemoryMeter) {
        self.chunks.clear();
        self.current_scores.clear();
        // Stop the pipeline before re-syncing the meter: its held bytes
        // count as resident until the lanes have drained.
        if let Some(pipe) = self.spill.take() {
            let _ = pipe.cleanup();
        }
        self.meter_hidden(meter);
        self.terminated = true;
        self.abort = Some(reason);
    }

    /// Emits a progress update if a sink is attached.
    fn emit_progress(&self, layer: usize) {
        if let Some(progress) = &self.progress {
            progress(ProgressUpdate {
                layer,
                layers_forwarded: self.trace.executed_layers,
                active: self.active_candidates(),
                accepted: self.accepted.len(),
                pruned: self.dropped_total,
            });
        }
    }

    fn active_candidates(&self) -> usize {
        self.chunks.iter().map(|c| c.ids.len()).sum()
    }

    fn resident_hidden_bytes(&self) -> u64 {
        let in_chunks: u64 = self
            .chunks
            .iter()
            .filter_map(|c| c.hidden.as_ref().map(|h| h.size_bytes() as u64))
            .sum();
        // Tensors the overlapped pipeline still holds (queued/in-flight
        // write-backs, parked prefetch results) are just as resident as
        // the chunks' own state; without this term the §4.3 peak would
        // under-report by up to the pipeline's lane depth.
        let in_pipeline = self.spill.as_ref().map_or(0, SpillPipeline::held_bytes);
        in_chunks + in_pipeline
    }

    /// Re-syncs the shared meter with this request's resident hidden
    /// bytes using alloc/free deltas (safe under concurrency).
    fn meter_hidden(&mut self, meter: &MemoryMeter) {
        let now = self.resident_hidden_bytes();
        match now.cmp(&self.metered_hidden) {
            std::cmp::Ordering::Greater => {
                meter.alloc(MemCategory::HiddenStates, now - self.metered_hidden)
            }
            std::cmp::Ordering::Less => {
                meter.free(MemCategory::HiddenStates, self.metered_hidden - now)
            }
            std::cmp::Ordering::Equal => {}
        }
        self.metered_hidden = now;
    }
}

/// A request abandoned mid-flight (plan or run error, caller bailing
/// out) must not leak its spill temp file or leave its hidden-state
/// bytes on the shared meter; `finalize_request` clears both, making
/// this a no-op on the success path.
impl Drop for ActiveRequest {
    fn drop(&mut self) {
        if self.metered_hidden > 0 {
            self.meter
                .free(MemCategory::HiddenStates, self.metered_hidden);
            self.metered_hidden = 0;
        }
        if let Some(pipe) = self.spill.take() {
            let _ = pipe.cleanup();
        }
    }
}

/// The PRISM inference engine.
///
/// `Sync`: the request path takes `&self`, interior-mutable pieces (the
/// embedding LRU, the scratch-workspace pool, the request counter) sit
/// behind their own locks, and per-request state lives in
/// [`ActiveRequest`] values owned by the caller. One engine can therefore
/// be shared across serving workers behind an `Arc`.
pub struct PrismEngine {
    config: ModelConfig,
    options: EngineOptions,
    container: Container,
    head: HeadWeights,
    embed: Mutex<EmbedSource>,
    resident_layers: Option<Vec<LayerWeights>>,
    /// Lazily-built per-layer int8 weight cache for resident engines: the
    /// first int8-precision request pays the one-time quantization, every
    /// later one reuses it. Quantization is deterministic, so a racing
    /// double-init produces identical values and the loser is dropped.
    /// Streamed engines instead quantize per layer acquisition.
    int8_layers: Vec<OnceLock<Int8LayerWeights>>,
    meter: MemoryMeter,
    spill_dir: PathBuf,
    request_counter: AtomicU64,
    spill_counter: AtomicU64,
    /// Reusable forward workspaces handed to the convenience selection
    /// APIs. Serving workers keep their own pools and bypass this lock via
    /// [`PrismEngine::select_batch_with`].
    scratch_pool: Mutex<Vec<ForwardScratch>>,
}

impl PrismEngine {
    /// Opens an engine over a weight container.
    pub fn new(
        container: Container,
        config: ModelConfig,
        options: EngineOptions,
        meter: MemoryMeter,
    ) -> Result<Self> {
        options.validate()?;
        config.validate()?;
        let throttle = options
            .stream_throttle
            .map_or(Throttle::unlimited(), Throttle::bandwidth);

        let mut head_blob = Vec::new();
        container.read_section_into(SECTION_HEAD, &mut head_blob)?;
        let head = HeadWeights::from_bytes(&config, &head_blob)?;
        meter.alloc(MemCategory::Head, head.size_bytes() as u64);

        let embed = if options.embed_cache {
            let source = DiskRowSource::new(&container, SECTION_EMBEDDING, throttle)?;
            let capacity = ((config.vocab_size as f64 * options.embed_cache_fraction) as usize)
                .max(config.max_seq);
            let cache = EmbeddingCache::new(source, capacity);
            meter.set(MemCategory::Embedding, cache.resident_bytes() as u64);
            EmbedSource::Cache(Box::new(cache))
        } else {
            let table = container.read_f32(SECTION_EMBEDDING)?;
            meter.set(MemCategory::Embedding, table.size_bytes() as u64);
            EmbedSource::Resident(table)
        };

        let resident_layers = if options.streaming {
            None
        } else {
            let mut layers = Vec::with_capacity(config.num_layers);
            let mut blob = Vec::new();
            let mut total = 0_u64;
            for l in 0..config.num_layers {
                container.read_section_into(&layer_section(l), &mut blob)?;
                let w = LayerWeights::from_bytes(&config, &blob)?;
                total += w.size_bytes() as u64;
                layers.push(w);
            }
            meter.set(MemCategory::LayerWeights, total);
            Some(layers)
        };

        let int8_layers = (0..config.num_layers).map(|_| OnceLock::new()).collect();
        Ok(PrismEngine {
            config,
            options,
            container,
            head,
            embed: Mutex::new(embed),
            resident_layers,
            int8_layers,
            meter,
            spill_dir: std::env::temp_dir(),
            request_counter: AtomicU64::new(0),
            spill_counter: AtomicU64::new(0),
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// The engine's model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Returns the engine with hidden-state spill files created under
    /// `dir` instead of the system temp directory (tests and deployments
    /// that audit spill cleanup point this at a private directory).
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = dir;
        self
    }

    /// The shared memory meter.
    pub fn meter(&self) -> &MemoryMeter {
        &self.meter
    }

    /// Where this engine creates hidden-state spill files (leak audits
    /// point [`PrismEngine::with_spill_dir`] at a private directory and
    /// assert it drains empty here).
    pub fn spill_dir(&self) -> &std::path::Path {
        &self.spill_dir
    }

    /// Selects the top-`k` candidates of `batch` (Fig. 3's workflow).
    pub fn select_top_k(&self, batch: &SequenceBatch, k: usize) -> Result<Selection> {
        self.select_with(batch, RequestOptions::top_k(k))
    }

    /// Selects with per-request routing options.
    pub fn select_with(&self, batch: &SequenceBatch, options: RequestOptions) -> Result<Selection> {
        let mut out = self.select_batch(&[RequestSpec { batch, options }])?;
        Ok(out.pop().expect("one selection per request"))
    }

    /// Runs several selections through one pass over the layer weights.
    ///
    /// Requests advance in lockstep: per layer boundary every live request
    /// runs its pruning gate, then — if anyone still needs the layer — the
    /// weights are acquired **once** (borrowed from the resident set, or
    /// streamed and decoded a single time instead of once per request) and
    /// each live request forwards and re-scores its own chunks. Per-request
    /// compute order is identical to the single-request path, so results
    /// are bit-identical to running the requests one by one.
    pub fn select_batch(&self, specs: &[RequestSpec<'_>]) -> Result<Vec<Selection>> {
        let mut pool = std::mem::take(&mut *self.scratch_pool.lock().expect("scratch pool lock"));
        let result = self.select_batch_with(specs, &mut pool);
        let mut shared = self.scratch_pool.lock().expect("scratch pool lock");
        if shared.is_empty() {
            *shared = pool;
        }
        result
    }

    /// [`PrismEngine::select_batch`] with a caller-owned scratch pool (the
    /// serving worker path: no pool-lock contention between workers).
    pub fn select_batch_with(
        &self,
        specs: &[RequestSpec<'_>],
        pool: &mut Vec<ForwardScratch>,
    ) -> Result<Vec<Selection>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let mut requests = Vec::with_capacity(specs.len());
        for spec in specs {
            requests.push(self.plan_request(spec.batch, spec.options.clone())?);
        }
        self.run_planned(&mut requests, pool)?;
        let mut out = Vec::with_capacity(requests.len());
        for req in requests {
            out.push(self.finalize_request(req)?);
        }
        Ok(out)
    }

    /// Drives planned requests through the transformer, acquiring each
    /// layer's weights exactly once. Public so a serving scheduler can
    /// plan requests itself (e.g. with session-cached embeddings) and
    /// still share one weight pass; after this returns every request is
    /// ready for [`PrismEngine::finalize_request`].
    pub fn run_planned(
        &self,
        requests: &mut [ActiveRequest],
        pool: &mut Vec<ForwardScratch>,
    ) -> Result<()> {
        let mut streamer = if self.options.streaming {
            let throttle = self
                .options
                .stream_throttle
                .map_or(Throttle::unlimited(), Throttle::bandwidth);
            let sections: Vec<String> = (0..self.config.num_layers).map(layer_section).collect();
            Some(LayerStreamer::new(
                &self.container,
                &sections,
                self.options.stream_depth,
                throttle,
            )?)
        } else {
            None
        };

        for layer_idx in 0..self.config.num_layers {
            for req in requests.iter_mut() {
                self.gate_request(req, layer_idx)?;
            }
            if requests.iter().all(|r| r.terminated) {
                break;
            }

            // ---- Acquire this layer's weights, once for the batch ----
            let (weights, raw_section) = match (&self.resident_layers, streamer.as_mut()) {
                (Some(layers), _) => (LayerRef::Borrowed(&layers[layer_idx]), None),
                (None, Some(s)) => {
                    // The wait is physically shared; attribute it to the
                    // first live request so span totals stay meaningful.
                    let wait_req = requests
                        .iter_mut()
                        .find(|r| !r.terminated)
                        .expect("some request live");
                    let section = wait_req
                        .latency
                        .time("stream-wait", || s.next())?
                        .ok_or_else(|| {
                            PrismError::InvalidRequest("streamer exhausted early".into())
                        })?;
                    self.meter
                        .alloc(MemCategory::LayerWeights, section.meta.len);
                    let decoded = LayerWeights::from_bytes(&self.config, &section.bytes)?;
                    self.meter
                        .alloc(MemCategory::LayerWeights, decoded.size_bytes() as u64);
                    (LayerRef::Owned(Box::new(decoded)), Some(section))
                }
                (None, None) => {
                    return Err(PrismError::InvalidRequest(
                        "engine has neither resident nor streamed weights".into(),
                    ))
                }
            };

            // ---- Quantize this layer's weights once if anyone needs the
            // int8 path (cached for resident engines, per acquisition for
            // streamed ones). Errors flow through `layer_result` so the
            // meter-release block below still runs.
            let needs_int8 = requests
                .iter()
                .any(|r| !r.terminated && r.compute == ComputePrecision::Int8);
            let mut quant_err: Option<PrismError> = None;
            let int8_owned: Option<Int8LayerWeights> = match (&weights, needs_int8) {
                (LayerRef::Owned(w), true) => match Int8LayerWeights::from_layer(w) {
                    Ok(q) => Some(q),
                    Err(e) => {
                        quant_err = Some(e.into());
                        None
                    }
                },
                _ => None,
            };
            let int8_layer: Option<&Int8LayerWeights> = if !needs_int8 || quant_err.is_some() {
                None
            } else if let Some(q) = int8_owned.as_ref() {
                Some(q)
            } else {
                match self.resident_int8(layer_idx) {
                    Ok(q) => Some(q),
                    Err(e) => {
                        quant_err = Some(e);
                        None
                    }
                }
            };

            let mut layer_result: Result<()> = quant_err.map_or(Ok(()), Err);
            if layer_result.is_ok() {
                for req in requests.iter_mut() {
                    if req.terminated {
                        continue;
                    }
                    let int8 = if req.compute == ComputePrecision::Int8 {
                        int8_layer
                    } else {
                        None
                    };
                    if let Err(e) =
                        self.forward_and_score(req, layer_idx, weights.get(), int8, pool)
                    {
                        layer_result = Err(e);
                        break;
                    }
                }
            }

            // Release this layer's weights — also on a failed forward, so
            // the shared meter stays balanced; then recycle the stream
            // buffer (which immediately triggers the prefetch of layer+2).
            if let Some(section) = raw_section {
                let decoded_bytes = match &weights {
                    LayerRef::Owned(w) => w.size_bytes() as u64,
                    LayerRef::Borrowed(_) => 0,
                };
                self.meter
                    .free(MemCategory::LayerWeights, section.meta.len + decoded_bytes);
                if layer_result.is_ok() {
                    if let Some(s) = streamer.as_mut() {
                        s.recycle(section)?;
                    }
                }
            }
            layer_result?;
        }

        if let Some(s) = streamer.take() {
            let stats = s.stats();
            for req in requests.iter_mut() {
                req.trace.stream_stats = stats;
            }
        }
        Ok(())
    }

    /// Plans one selection: validates the request, embeds the batch,
    /// builds the chunk geometry (with optional spill), and runs the
    /// post-embedding score probe.
    pub fn plan_request(
        &self,
        batch: &SequenceBatch,
        options: RequestOptions,
    ) -> Result<ActiveRequest> {
        self.plan_request_with_embed(batch, options, None)
    }

    /// [`PrismEngine::plan_request`] with an optional precomputed
    /// embedding (`[total_tokens, hidden_dim]`, as returned by
    /// [`PrismEngine::embed_batch`]). Embedding is a pure function of the
    /// token content, so a serving-layer session cache can replay it
    /// across requests without changing results.
    pub fn plan_request_with_embed(
        &self,
        batch: &SequenceBatch,
        options: RequestOptions,
        embed: Option<&Tensor>,
    ) -> Result<ActiveRequest> {
        let n = batch.num_sequences();
        if n == 0 {
            return Err(PrismError::InvalidRequest("empty batch".into()));
        }
        if options.k == 0 {
            return Err(PrismError::InvalidRequest("k must be >= 1".into()));
        }
        if batch.max_seq_len() > self.config.max_seq {
            return Err(PrismError::InvalidRequest(format!(
                "sequence of {} tokens exceeds model max_seq {}",
                batch.max_seq_len(),
                self.config.max_seq
            )));
        }
        let k = options.k.min(n);
        let tag = options
            .tag
            .unwrap_or_else(|| self.request_counter.fetch_add(1, Ordering::Relaxed) + 1);
        let gate = GateParams::resolve(&self.options, &options);
        let mut latency = LatencyRecorder::new();

        // ---- Chunk geometry (§4.3) ----
        let chunk_cands = if self.options.chunking {
            match self.options.chunk_candidates {
                Some(c) => c.max(1),
                None => {
                    let avg_len = (batch.total_tokens() / n).max(1);
                    (self.options.chunk_target_tokens / avg_len).clamp(1, n)
                }
            }
        } else {
            n
        };

        // ---- Embedding phase (§4.4): chunks slice the embedded rows, so
        // a caller-provided tensor is read in place (no copy). ----
        let mut chunks = match embed {
            Some(t) => {
                if t.rows() != batch.total_tokens() || t.cols() != self.config.hidden_dim {
                    return Err(PrismError::InvalidRequest(format!(
                        "precomputed embedding is {}x{}, batch needs {}x{}",
                        t.rows(),
                        t.cols(),
                        batch.total_tokens(),
                        self.config.hidden_dim
                    )));
                }
                build_chunks(batch, t, chunk_cands)?
            }
            None => {
                let hidden_all = latency.time("embed", || self.embed_batch(batch))?;
                build_chunks(batch, &hidden_all, chunk_cands)?
            }
        };

        // Post-embedding probe, while every chunk is still resident: the
        // probe scores are computed from the exact embedded hidden states
        // (bit-identical to the pre-pipeline fetch-back path in f32 mode,
        // quantization-free in int8 mode) and the offload regime saves
        // one full read of every spilled chunk.
        let probe_scores = latency.time("score", || self.probe_scores(&chunks))?;

        // Spill setup: only when offloading is on and there is something to
        // offload. The spill file name is unique per request so concurrent
        // selections on one engine never share a slot file.
        let mut spill: Option<SpillPipeline> = None;
        if self.options.hidden_offload && chunks.len() > 3 {
            let throttle = self
                .options
                .stream_throttle
                .map_or(Throttle::unlimited(), Throttle::bandwidth);
            let max_rows = chunks.iter().map(Chunk::rows).max().unwrap_or(0);
            let mut path = self.spill_dir.clone();
            path.push(format!(
                "prism-hidden-spill-{}-{}.bin",
                std::process::id(),
                self.spill_counter.fetch_add(1, Ordering::Relaxed)
            ));
            let file = SpillFile::create(
                &path,
                chunks.len(),
                max_rows,
                self.config.hidden_dim,
                options.spill_precision,
                throttle,
            )?;
            let mut pipe = if self.options.spill_pipeline {
                SpillPipeline::overlapped(file)?
            } else {
                SpillPipeline::synchronous(file)
            };
            // Offload all but the first window of chunks (queued on the
            // writer lane when overlapped, so the initial offload hides
            // behind planning's remaining work). A failed write (disk
            // full — the regime spilling targets) must remove the temp
            // file: the per-request unique names would otherwise
            // accumulate one orphan per failure for the process
            // lifetime; `SpillPipeline::cleanup` (also run by the
            // `ActiveRequest` drop guard for deferred lane errors)
            // guarantees that.
            let mut setup: Result<()> = Ok(());
            for (i, chunk) in chunks.iter_mut().enumerate().skip(3) {
                if let Some(t) = chunk.hidden.take() {
                    match pipe.write_back(i, t) {
                        Ok(()) => chunk.spill_slot = Some(i),
                        Err(e) => {
                            setup = Err(e.into());
                            break;
                        }
                    }
                }
            }
            if let Err(e) = setup {
                let _ = pipe.cleanup();
                return Err(e);
            }
            spill = Some(pipe);
        }

        // Int8-spill value uniformity: chunks that stay resident get the
        // same rowq round-trip the offloaded chunks get from the file,
        // applied after the (exact) probe. See `ActiveRequest::int8_spill`.
        let int8_spill =
            self.options.hidden_offload && options.spill_precision == SpillPrecision::Int8;
        if int8_spill {
            for chunk in chunks.iter_mut() {
                if let Some(hidden) = chunk.hidden.as_mut() {
                    latency.time("quantize", || rowq_round_trip(hidden))?;
                }
            }
        }

        let mut req = ActiveRequest {
            n,
            k,
            tag,
            gate,
            compute: options.compute_precision,
            // Row-quant blocks flow through the spill window only when
            // both knobs agree: int8 compute re-quantizes activations
            // anyway, but an explicit f32 spill precision keeps its
            // bit-exact f32 round-trip promise even under int8 compute.
            block_spill: options.compute_precision == ComputePrecision::Int8
                && options.spill_precision == SpillPrecision::Int8,
            int8_spill,
            record_score_trace: self.options.record_score_trace,
            chunks,
            meter: self.meter.clone(),
            spill,
            metered_hidden: 0,
            current_scores: Vec::new(),
            last_scores: vec![0.0_f32; n],
            accepted: Vec::new(),
            terminated: false,
            trace: EngineTrace::default(),
            latency,
            cancel: CancelToken::new(),
            deadline: None,
            progress: None,
            abort: None,
            dropped_total: 0,
        };
        req.meter_hidden(&self.meter);

        req.current_scores = probe_scores;
        for (id, s) in &req.current_scores {
            req.last_scores[*id] = *s;
        }
        if req.record_score_trace {
            req.trace
                .score_trace
                .push(aligned_scores(&req.current_scores, n));
        }
        Ok(req)
    }

    /// Runs the pruning gate for `layer_idx` (§4.1): routes clusters using
    /// scores from the previous boundary, prunes routed candidates, and
    /// records the per-layer active count. May terminate the request.
    fn gate_request(&self, req: &mut ActiveRequest, layer_idx: usize) -> Result<()> {
        if req.terminated {
            return Ok(());
        }
        // ---- Cancellation / deadline points between phases ----
        if req.cancel.is_cancelled() {
            req.abort(AbortReason::Cancelled, &self.meter);
            return Ok(());
        }
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            req.abort(AbortReason::DeadlineExceeded, &self.meter);
            return Ok(());
        }
        let step = {
            let ActiveRequest {
                k,
                n,
                tag,
                gate,
                accepted,
                current_scores,
                trace,
                dropped_total,
                latency,
                ..
            } = req;
            let book = GateBook {
                k: *k,
                n: *n,
                accepted,
                current_scores,
                trace,
                dropped_total,
            };
            latency.time("gate", || {
                route_and_book(book, layer_idx, gate, self.options.seed, *tag)
            })
        };
        if let Some(keep_mask) = &step.keep_mask {
            {
                let executed = req.trace.executed_layers;
                let int8_file = req.int8_spill;
                let compute = req.compute;
                let recompute = |chunk: &Chunk| {
                    self.recompute_chunk_hidden(chunk, executed, int8_file, compute)
                };
                let ActiveRequest {
                    chunks,
                    spill,
                    latency,
                    ..
                } = req;
                latency.time("prune", || {
                    retain_candidates(chunks, spill, keep_mask, &recompute)
                })?;
            }
            req.meter_hidden(&self.meter);
        }
        if step.terminate {
            req.terminated = true;
            req.emit_progress(layer_idx);
            return Ok(());
        }

        let active = req.active_candidates();
        if active == 0 {
            req.terminated = true;
            req.emit_progress(layer_idx);
            return Ok(());
        }
        req.trace.active_per_layer.push(active);
        req.emit_progress(layer_idx);
        Ok(())
    }

    /// Forwards one request's chunks through `layer_idx` and re-scores at
    /// the layer boundary (fused: spilled chunks are scored while still
    /// resident, so the boundary score costs no extra spill read).
    fn forward_and_score(
        &self,
        req: &mut ActiveRequest,
        layer_idx: usize,
        weights: &LayerWeights,
        int8: Option<&Int8LayerWeights>,
        pool: &mut Vec<ForwardScratch>,
    ) -> Result<()> {
        let block_spill = req.block_spill;
        let int8_spill = req.int8_spill;
        req.current_scores = {
            let ActiveRequest {
                chunks,
                spill,
                latency,
                ..
            } = req;
            self.forward_and_score_chunks(
                chunks,
                spill,
                weights,
                int8,
                block_spill,
                int8_spill,
                layer_idx,
                pool,
                latency,
            )?
        };
        req.meter_hidden(&self.meter);
        req.trace.executed_layers += 1;
        for (id, s) in &req.current_scores {
            req.last_scores[*id] = *s;
        }
        if req.record_score_trace {
            req.trace
                .score_trace
                .push(aligned_scores(&req.current_scores, req.n));
        }
        req.emit_progress(layer_idx);
        Ok(())
    }

    /// Ranks survivors, closes the spill file, and assembles the
    /// [`Selection`].
    ///
    /// A request aborted mid-flight comes back as
    /// [`PrismError::Cancelled`] / [`PrismError::DeadlineExceeded`]; its
    /// resources were already released at the aborting layer boundary.
    pub fn finalize_request(&self, mut req: ActiveRequest) -> Result<Selection> {
        match req.abort {
            Some(AbortReason::Cancelled) => return Err(PrismError::Cancelled),
            Some(AbortReason::DeadlineExceeded) => return Err(PrismError::DeadlineExceeded),
            None => {}
        }
        finalize_ranked(
            &mut req.accepted,
            &req.current_scores,
            req.terminated,
            req.k,
            self.config.num_layers,
        );

        if let EmbedSource::Cache(c) = &mut *self.embed.lock().expect("embed lock") {
            req.trace.cache_stats = c.stats();
        }
        if let Some(mut pipe) = req.spill.take() {
            // Drain first so deferred background-write errors surface as
            // this request's error (cleanup still removes the file).
            let drained = pipe.drain();
            let stats = pipe.stats();
            req.trace.spill_stats = stats;
            req.trace.spill_bytes = stats.bytes();
            let cleaned = pipe.cleanup();
            drained.and(cleaned)?;
        }
        req.chunks.clear();
        req.meter_hidden(&self.meter);
        // `ActiveRequest` has a cleanup `Drop`, so fields move out via
        // take; spill/meter state is already cleared above, making the
        // drop a no-op.
        req.trace.latency = std::mem::take(&mut req.latency);

        Ok(Selection {
            ranked: std::mem::take(&mut req.accepted),
            last_scores: std::mem::take(&mut req.last_scores),
            // A single engine always serves every candidate it was
            // handed; partial coverage only arises when a sharded
            // coordinator loses candidates (see `ScatterGate`).
            coverage: 1.0,
            trace: std::mem::take(&mut req.trace),
        })
    }

    // ---- Layer-stepping API (scatter-gather execution) -----------------
    //
    // A sharded deployment partitions one request's candidates across
    // several shard-local `ActiveRequest`s and drives them in lockstep
    // from a coordinator that owns the *global* pruning gate (the gate is
    // a function of the whole batch's score distribution, so shard-local
    // gating would diverge from the single-engine result). The three
    // methods below expose exactly the per-layer phases `run_planned`
    // executes internally: boundary checks, one forward+score step, and
    // externally decided retention.

    /// Runs the layer-boundary phase for an externally gated request:
    /// cancellation/deadline checks (aborting releases spill and meter
    /// bytes immediately), termination when no candidate is active, trace
    /// and progress bookkeeping. Shard-local requests are planned with
    /// `pruning = Some(false)`, so no local routing decision is made —
    /// the coordinator's [`PrismEngine::apply_keep_mask`] is the only
    /// pruning authority.
    pub fn gate_planned(&self, req: &mut ActiveRequest, layer_idx: usize) -> Result<()> {
        self.gate_request(req, layer_idx)
    }

    /// Forwards one planned request through layer `layer_idx` and
    /// re-scores at the boundary — one iteration of `run_planned`'s inner
    /// loop for a single request. Requires resident layer weights
    /// (`EngineOptions::streaming = false`): the streaming prefetcher is
    /// strictly sequential and cannot serve random per-shard stepping.
    pub fn forward_planned_layer(
        &self,
        req: &mut ActiveRequest,
        layer_idx: usize,
        pool: &mut Vec<ForwardScratch>,
    ) -> Result<()> {
        if req.terminated {
            return Ok(());
        }
        let layers = self.resident_layers.as_ref().ok_or_else(|| {
            PrismError::InvalidRequest(
                "layer stepping requires resident weights (streaming off)".into(),
            )
        })?;
        let int8 = if req.compute == ComputePrecision::Int8 {
            Some(self.resident_int8(layer_idx)?)
        } else {
            None
        };
        self.forward_and_score(req, layer_idx, &layers[layer_idx], int8, pool)
    }

    /// Applies an externally computed keep-mask (indexed by this
    /// request's local candidate ids): physically retains the surviving
    /// hidden states (fetching/re-offloading spilled chunks as needed),
    /// re-syncs the memory meter, and terminates the request when nothing
    /// is left. The scatter-gather coordinator translates its global gate
    /// decision into one such mask per shard.
    pub fn apply_keep_mask(&self, req: &mut ActiveRequest, keep: &[bool]) -> Result<()> {
        if keep.len() != req.n {
            return Err(PrismError::InvalidRequest(format!(
                "keep mask has {} entries, request has {} candidates",
                keep.len(),
                req.n
            )));
        }
        {
            let executed = req.trace.executed_layers;
            let int8_file = req.int8_spill;
            let compute = req.compute;
            let recompute =
                |chunk: &Chunk| self.recompute_chunk_hidden(chunk, executed, int8_file, compute);
            let ActiveRequest {
                chunks,
                spill,
                latency,
                ..
            } = req;
            latency.time("prune", || {
                retain_candidates(chunks, spill, keep, &recompute)
            })?;
        }
        req.meter_hidden(&self.meter);
        req.current_scores.retain(|(id, _)| keep[*id]);
        if req.active_candidates() == 0 {
            req.terminated = true;
        }
        Ok(())
    }

    /// Marks a planned request as needing no further layers (the
    /// coordinator observed global termination).
    pub fn terminate_planned(&self, req: &mut ActiveRequest) {
        req.terminated = true;
    }

    /// Embeds a batch: one `[total_tokens, hidden_dim]` tensor with
    /// positional encoding applied. Pure in the token content — the
    /// serving session cache reuses the result across repeat corpora.
    pub fn embed_batch(&self, batch: &SequenceBatch) -> Result<Tensor> {
        let d = self.config.hidden_dim;
        let mut hidden = Tensor::zeros(batch.total_tokens(), d);
        // Match on the source once; the resident path copies straight from
        // the table row into the hidden row (no per-token heap traffic).
        match &mut *self.embed.lock().expect("embed lock") {
            EmbedSource::Cache(cache) => {
                for &(start, end) in batch.ranges() {
                    for (pos, t) in (start..end).enumerate() {
                        let row = hidden.row_mut(t)?;
                        cache.lookup_into(batch.tokens()[t], row)?;
                        add_position(row, pos, d);
                    }
                }
            }
            EmbedSource::Resident(table) => {
                for &(start, end) in batch.ranges() {
                    for (pos, t) in (start..end).enumerate() {
                        let token = batch.tokens()[t] as usize;
                        if token >= table.rows() {
                            return Err(PrismError::InvalidRequest(format!(
                                "token {token} outside vocabulary"
                            )));
                        }
                        let row = hidden.row_mut(t)?;
                        row.copy_from_slice(table.row(token)?);
                        add_position(row, pos, d);
                    }
                }
            }
        }
        Ok(hidden)
    }

    /// Forwards every chunk through one layer and scores it at the
    /// boundary, returning `(original_id, score)` pairs in chunk order.
    ///
    /// Resident (non-spilled) chunks run in parallel across a scoped
    /// thread pool — each worker owns one [`ForwardScratch`] — while the
    /// spill window runs the paper's three-stage overlap: while chunk *i*
    /// computes, chunk *i+1* prefetches on the pipeline's reader lane and
    /// chunk *i-1*'s write-back drains on the writer lane, keeping at
    /// most three spilled chunks in flight exactly as the §4.3 memory
    /// bound assumes. Each spilled chunk is scored while still resident,
    /// which saves the separate per-layer scoring read the synchronous
    /// path paid. Chunks are data-independent and each is computed with a
    /// deterministic per-row accumulation order, so neither the parallel
    /// schedule nor the overlap can change results.
    #[allow(clippy::too_many_arguments)] // internal driver: precision + pools
    fn forward_and_score_chunks(
        &self,
        chunks: &mut [Chunk],
        spill: &mut Option<SpillPipeline>,
        weights: &LayerWeights,
        int8: Option<&Int8LayerWeights>,
        block_spill: bool,
        int8_spill: bool,
        layer_idx: usize,
        pool: &mut Vec<ForwardScratch>,
        latency: &mut LatencyRecorder,
    ) -> Result<Vec<(usize, f32)>> {
        let max_seq = chunks
            .iter()
            .flat_map(|c| c.seq_lens.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        let max_rows = chunks.iter().map(Chunk::rows).max().unwrap_or(0);
        let workers = self.chunk_workers(chunks, max_rows);
        while pool.len() < workers.max(1) {
            pool.push(ForwardScratch::new(&self.config, max_rows));
        }
        let mut chunk_scores: Vec<Option<Vec<f32>>> = (0..chunks.len()).map(|_| None).collect();

        // ---- Overlapped spill window ----
        let spilled: Vec<usize> = (0..chunks.len())
            .filter(|&i| chunks[i].spill_slot.is_some())
            .collect();
        if let (Some(pipe), Some(&first)) = (spill.as_mut(), spilled.first()) {
            if chunks[first].hidden.is_none() {
                let slot = chunks[first].spill_slot.expect("spilled chunk");
                if block_spill {
                    pipe.prefetch_block(slot)?;
                } else {
                    pipe.prefetch(slot)?;
                }
            }
        }
        for (pos, &ci) in spilled.iter().enumerate() {
            let slot = chunks[ci].spill_slot.expect("spilled chunk");
            let pipe = spill.as_mut().ok_or_else(|| {
                PrismError::InvalidRequest("chunk spilled without a spill file".into())
            })?;
            // The fetched chunk's bytes are metered for exactly the
            // fetch→write-back window (alloc/free deltas, so concurrent
            // requests' ledgers stay untouched).
            let mut fetched_bytes = 0_u64;
            if chunks[ci].hidden.is_none() {
                // Int8 block spill: the pipeline moves row-quant codes;
                // the chunk is decoded to f32 exactly once per layer
                // (norm / attention / residual / scoring need f32) and
                // the integer GEMMs re-quantize activations internally.
                // On a checksum mismatch the slot is already quarantined:
                // rebuild its state from the weights instead of failing
                // the request. `layer_idx` layers have run, and a healthy
                // fetch would have returned the file's *decode* of the
                // stored codes, so an int8 file's replay passes one more
                // rowq round-trip.
                let recover = |chunk: &Chunk| -> Result<Tensor> {
                    let compute = if int8.is_some() {
                        ComputePrecision::Int8
                    } else {
                        ComputePrecision::F32
                    };
                    let mut t =
                        self.recompute_chunk_hidden(chunk, layer_idx, int8_spill, compute)?;
                    if int8_spill {
                        rowq_round_trip(&mut t)?;
                    }
                    Ok(t)
                };
                let t = if block_spill {
                    match latency.time("spill-wait", || pipe.fetch_block(slot)) {
                        Ok(block) => {
                            let mut t = Tensor::zeros(0, 0);
                            block.decode_into(&mut t)?;
                            t
                        }
                        Err(StorageError::ChecksumMismatch { .. }) => {
                            latency.time("recompute", || recover(&chunks[ci]))?
                        }
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    match latency.time("spill-wait", || pipe.fetch(slot)) {
                        Ok(t) => t,
                        Err(StorageError::ChecksumMismatch { .. }) => {
                            latency.time("recompute", || recover(&chunks[ci]))?
                        }
                        Err(e) => return Err(e.into()),
                    }
                };
                fetched_bytes = t.size_bytes() as u64;
                self.meter.alloc(MemCategory::HiddenStates, fetched_bytes);
                chunks[ci].hidden = Some(t);
            }
            // Kick off the next chunk's read before computing this one.
            if let Some(&next) = spilled.get(pos + 1) {
                if chunks[next].hidden.is_none() {
                    let next_slot = chunks[next].spill_slot.expect("spilled chunk");
                    let pipe = spill.as_mut().expect("spill file present");
                    if block_spill {
                        pipe.prefetch_block(next_slot)?;
                    } else {
                        pipe.prefetch(next_slot)?;
                    }
                }
            }
            let chunk = &mut chunks[ci];
            let Chunk { hidden, ranges, .. } = chunk;
            let Some(hidden) = hidden.as_mut() else {
                continue;
            };
            // Meter alloc/free pairs stay balanced on the error path
            // (`?` only after the frees): a failed request on a
            // long-running server must not inflate the shared ledger.
            let inter = intermediate_bytes(&self.config, hidden.rows(), max_seq);
            self.meter.alloc(MemCategory::Intermediate, inter);
            let step = latency
                .time("forward", || match int8 {
                    Some(q) => {
                        forward_layer_int8(&self.config, q, layer_idx, hidden, ranges, &mut pool[0])
                    }
                    None => forward_layer_with(
                        &self.config,
                        weights,
                        layer_idx,
                        hidden,
                        ranges,
                        &mut pool[0],
                    ),
                })
                .map_err(PrismError::from)
                .and_then(|()| {
                    // Score while resident: no extra spill read.
                    latency
                        .time("score", || {
                            prism_model::classifier::score_sequences(
                                &self.config,
                                &self.head,
                                hidden,
                                ranges,
                            )
                        })
                        .map_err(PrismError::from)
                });
            self.meter.free(MemCategory::Intermediate, inter);
            match step {
                Ok(scores) => {
                    chunk_scores[ci] = Some(scores);
                    let t = chunk.hidden.take().expect("hidden present");
                    let pipe = spill.as_mut().expect("spill file present");
                    let wb = if block_spill {
                        // Re-encode to codes before handing the pipeline
                        // the payload: the writer lane then holds ~4x
                        // fewer bytes than an f32 tensor would.
                        RowQuantBlock::encode(&t)
                            .map_err(PrismError::from)
                            .and_then(|b| pipe.write_back_block(slot, b).map_err(PrismError::from))
                    } else {
                        pipe.write_back(slot, t).map_err(PrismError::from)
                    };
                    self.meter.free(MemCategory::HiddenStates, fetched_bytes);
                    wb?;
                }
                Err(e) => {
                    self.meter.free(MemCategory::HiddenStates, fetched_bytes);
                    return Err(e);
                }
            }
        }

        // ---- Parallel resident chunks ----
        self.forward_resident_chunks(
            chunks, weights, int8, layer_idx, pool, workers, max_seq, latency,
        )?;

        // ---- Score resident chunks at the boundary ----
        latency.time("score", || -> Result<()> {
            for (ci, chunk) in chunks.iter().enumerate() {
                if chunk.spill_slot.is_some() || chunk.ids.is_empty() {
                    continue;
                }
                let Some(hidden) = chunk.hidden.as_ref() else {
                    continue;
                };
                chunk_scores[ci] = Some(prism_model::classifier::score_sequences(
                    &self.config,
                    &self.head,
                    hidden,
                    &chunk.ranges,
                )?);
            }
            Ok(())
        })?;

        // ---- Int8-spill value uniformity for resident chunks ----
        // Spilled chunks were scored on exact forward output, then
        // encoded on write-back; resident chunks must see the same
        // score-then-quantize order, so the in-memory round-trip comes
        // after the boundary scoring above.
        if int8_spill {
            latency.time("quantize", || -> Result<()> {
                for chunk in chunks.iter_mut() {
                    if chunk.spill_slot.is_some() || chunk.ids.is_empty() {
                        continue;
                    }
                    if let Some(hidden) = chunk.hidden.as_mut() {
                        rowq_round_trip(hidden)?;
                    }
                }
                Ok(())
            })?;
        }

        let mut out = Vec::new();
        for (ci, chunk) in chunks.iter().enumerate() {
            if let Some(scores) = chunk_scores[ci].take() {
                for (id, s) in chunk.ids.iter().zip(scores) {
                    out.push((*id, s));
                }
            }
        }
        Ok(out)
    }

    /// Runs the resident (non-spilled) chunks of one layer, in parallel
    /// when the per-layer work justifies the thread fan-out.
    #[allow(clippy::too_many_arguments)] // internal driver: shapes + pools
    fn forward_resident_chunks(
        &self,
        chunks: &mut [Chunk],
        weights: &LayerWeights,
        int8: Option<&Int8LayerWeights>,
        layer_idx: usize,
        pool: &mut [ForwardScratch],
        workers: usize,
        max_seq: usize,
        latency: &mut LatencyRecorder,
    ) -> Result<()> {
        let max_rows = chunks.iter().map(Chunk::rows).max().unwrap_or(0);
        let mut resident: Vec<&mut Chunk> = chunks
            .iter_mut()
            .filter(|c| c.spill_slot.is_none() && c.hidden.is_some())
            .collect();
        if resident.is_empty() {
            return Ok(());
        }
        let forward_start = Instant::now();
        // Each live worker holds one scratch sized for the largest chunk;
        // that product is the true concurrent intermediate footprint.
        let inter = workers.max(1) as u64 * intermediate_bytes(&self.config, max_rows, max_seq);
        self.meter.alloc(MemCategory::Intermediate, inter);
        // One forward closure shared by both schedules so the precision
        // dispatch lives in exactly one place.
        let forward_one = |hidden: &mut Tensor,
                           ranges: &[(usize, usize)],
                           scratch: &mut ForwardScratch|
         -> Result<()> {
            match int8 {
                Some(q) => forward_layer_int8(&self.config, q, layer_idx, hidden, ranges, scratch)?,
                None => {
                    forward_layer_with(&self.config, weights, layer_idx, hidden, ranges, scratch)?
                }
            }
            Ok(())
        };
        let result: Result<()> = if workers <= 1 {
            let scratch = &mut pool[0];
            resident.iter_mut().try_for_each(|chunk| -> Result<()> {
                let hidden = chunk.hidden.as_mut().expect("resident chunk");
                forward_one(hidden, &chunk.ranges, scratch)
            })
        } else {
            let group = resident.len().div_ceil(workers);
            let results: Vec<Result<()>> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (chunk_group, scratch) in resident.chunks_mut(group).zip(pool.iter_mut()) {
                    let forward_one = &forward_one;
                    handles.push(scope.spawn(move || -> Result<()> {
                        for chunk in chunk_group.iter_mut() {
                            let hidden = chunk.hidden.as_mut().expect("resident chunk");
                            forward_one(hidden, &chunk.ranges, scratch)?;
                        }
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunk worker panicked"))
                    .collect()
            });
            results.into_iter().collect()
        };
        self.meter.free(MemCategory::Intermediate, inter);
        latency.record("forward", forward_start.elapsed().as_micros() as u64);
        result
    }

    /// How many workers the resident chunks of this request justify: one
    /// unless there are several chunks *and* enough per-layer work for the
    /// thread fan-out to beat its own overhead.
    fn chunk_workers(&self, chunks: &[Chunk], max_rows: usize) -> usize {
        /// Per-chunk multiply-accumulate work below which spawning scoped
        /// threads costs more than it saves.
        const PAR_MAC_THRESHOLD: usize = 1 << 19;
        let resident = chunks
            .iter()
            .filter(|c| c.spill_slot.is_none() && c.hidden.is_some())
            .count();
        let d = self.config.hidden_dim;
        let f = self.config.ffn_dim;
        let macs = max_rows * d * (4 * d + 3 * f);
        if resident < 2 || macs < PAR_MAC_THRESHOLD {
            return 1;
        }
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(resident)
            .min(8)
    }

    /// Returns the cached int8 quantization of resident layer
    /// `layer_idx`, building it on first use. The cache lives for the
    /// engine's lifetime, so its bytes are metered once as layer weights.
    fn resident_int8(&self, layer_idx: usize) -> Result<&Int8LayerWeights> {
        let cell = &self.int8_layers[layer_idx];
        if let Some(q) = cell.get() {
            return Ok(q);
        }
        let layers = self.resident_layers.as_ref().ok_or_else(|| {
            PrismError::InvalidRequest("int8 weight cache requires resident layers".into())
        })?;
        let q = Int8LayerWeights::from_layer(&layers[layer_idx])?;
        let bytes = q.size_bytes() as u64;
        if cell.set(q).is_ok() {
            self.meter.alloc(MemCategory::LayerWeights, bytes);
        }
        Ok(cell.get().expect("int8 cell just initialized"))
    }

    /// The post-embedding score probe: every chunk is still resident at
    /// this point (spilling happens after the probe), so this is a pure
    /// read over the embedded hidden states. Returns
    /// `(original_id, score)` pairs in chunk order; layer-boundary
    /// scoring is fused into
    /// [`PrismEngine::forward_and_score_chunks`].
    fn probe_scores(&self, chunks: &[Chunk]) -> Result<Vec<(usize, f32)>> {
        let mut out = Vec::new();
        for chunk in chunks {
            if chunk.ids.is_empty() {
                continue;
            }
            let hidden = chunk.hidden.as_ref().ok_or_else(|| {
                PrismError::InvalidRequest("chunk hidden state unavailable".into())
            })?;
            let scores = prism_model::classifier::score_sequences(
                &self.config,
                &self.head,
                hidden,
                &chunk.ranges,
            )?;
            for (id, s) in chunk.ids.iter().zip(scores) {
                out.push((*id, s));
            }
        }
        Ok(out)
    }

    /// Rebuilds a chunk's hidden state from the weights after its spill
    /// slot was quarantined (checksum mismatch): re-embeds the chunk's
    /// surviving token sequences and replays the `layers_executed`
    /// transformer layers the request has run so far.
    ///
    /// Returns the **pre-encode** hidden state `h_L` — the exact forward
    /// output the quarantined slot was written from. The caller applies
    /// whatever transform the lost fetch would have: the per-layer fetch
    /// site applies the rowq round-trip when the file is int8 (a fetch
    /// decodes stored codes), the retain path re-encodes to codes, and an
    /// f32 file needs nothing (its round trip is bit-exact).
    ///
    /// Bit-identity to the lost slot holds because (a) embedding is pure
    /// in token content with per-sequence-local positions, (b) forward
    /// layers use per-candidate attention ranges, so a chunk's rows never
    /// depend on other chunks or pruned candidates, and (c) under the
    /// int8-spill regime every layer input passed through the same rowq
    /// round-trip this replay applies.
    fn recompute_chunk_hidden(
        &self,
        chunk: &Chunk,
        layers_executed: usize,
        int8_file: bool,
        compute: ComputePrecision,
    ) -> Result<Tensor> {
        let batch = SequenceBatch::new(&chunk.tokens)?;
        let mut hidden = self.embed_batch(&batch)?;
        if layers_executed == 0 {
            return Ok(hidden);
        }
        let mut scratch = ForwardScratch::new(&self.config, hidden.rows());
        let mut blob = Vec::new();
        for l in 0..layers_executed {
            // Every layer input — including the embedding — passed the
            // spill round-trip before being forwarded (offload encodes,
            // fetch decodes; resident chunks mirror it in memory).
            if int8_file {
                rowq_round_trip(&mut hidden)?;
            }
            let owned;
            let weights: &LayerWeights = match &self.resident_layers {
                Some(layers) => &layers[l],
                None => {
                    self.container
                        .read_section_into(&layer_section(l), &mut blob)?;
                    owned = LayerWeights::from_bytes(&self.config, &blob)?;
                    &owned
                }
            };
            match compute {
                ComputePrecision::Int8 => {
                    let q_owned;
                    let q: &Int8LayerWeights = if self.resident_layers.is_some() {
                        self.resident_int8(l)?
                    } else {
                        q_owned = Int8LayerWeights::from_layer(weights)?;
                        &q_owned
                    };
                    forward_layer_int8(
                        &self.config,
                        q,
                        l,
                        &mut hidden,
                        &chunk.ranges,
                        &mut scratch,
                    )?;
                }
                ComputePrecision::F32 => {
                    forward_layer_with(
                        &self.config,
                        weights,
                        l,
                        &mut hidden,
                        &chunk.ranges,
                        &mut scratch,
                    )?;
                }
            }
        }
        Ok(hidden)
    }
}

enum LayerRef<'a> {
    Borrowed(&'a LayerWeights),
    Owned(Box<LayerWeights>),
}

impl LayerRef<'_> {
    fn get(&self) -> &LayerWeights {
        match self {
            LayerRef::Borrowed(w) => w,
            LayerRef::Owned(w) => w,
        }
    }
}

fn build_chunks(
    batch: &SequenceBatch,
    hidden_all: &Tensor,
    chunk_cands: usize,
) -> Result<Vec<Chunk>> {
    let n = batch.num_sequences();
    let mut chunks = Vec::with_capacity(n.div_ceil(chunk_cands));
    let mut i = 0;
    while i < n {
        let end = (i + chunk_cands).min(n);
        let ids: Vec<usize> = (i..end).collect();
        let seq_lens: Vec<usize> = ids
            .iter()
            .map(|&c| {
                let (s, e) = batch.ranges()[c];
                e - s
            })
            .collect();
        let row_start = batch.ranges()[i].0;
        let row_end = batch.ranges()[end - 1].1;
        let hidden = hidden_all.slice_rows(row_start, row_end)?;
        let ranges = Chunk::ranges_from(&seq_lens);
        let tokens = ids
            .iter()
            .map(|&c| {
                let (s, e) = batch.ranges()[c];
                batch.tokens()[s..e].to_vec()
            })
            .collect();
        chunks.push(Chunk {
            ids,
            seq_lens,
            ranges,
            tokens,
            hidden: Some(hidden),
            spill_slot: None,
        });
        i = end;
    }
    Ok(chunks)
}

fn aligned_scores(scores: &[(usize, f32)], n: usize) -> Vec<Option<f32>> {
    let mut out = vec![None; n];
    for &(id, s) in scores {
        out[id] = Some(s);
    }
    out
}

/// Removes all candidates whose id is unset in the `keep` mask (indexed
/// by original candidate id), fetching and re-offloading spilled chunks
/// as needed.
///
/// Two fast paths avoid spill I/O entirely: a chunk whose keep-mask is
/// all-true is untouched (no read-back + rewrite when nothing is
/// pruned), and a chunk whose keep-mask is all-false releases its slot
/// without ever fetching the doomed rows.
/// One rowq encode/decode cycle in place — the exact numeric effect an
/// int8 spill slot applies to a chunk between layers. Resident chunks of
/// an int8-spill request pass through this so their values track the
/// offloaded chunks' values (see `ActiveRequest::int8_spill`).
fn rowq_round_trip(t: &mut Tensor) -> Result<()> {
    let block = RowQuantBlock::encode(t)?;
    block.decode_into(t)?;
    Ok(())
}

fn retain_candidates(
    chunks: &mut Vec<Chunk>,
    spill: &mut Option<SpillPipeline>,
    keep: &[bool],
    recompute: &dyn Fn(&Chunk) -> Result<Tensor>,
) -> Result<()> {
    for chunk in chunks.iter_mut() {
        let keep_local: Vec<usize> = chunk
            .ids
            .iter()
            .enumerate()
            .filter_map(|(li, id)| keep[*id].then_some(li))
            .collect();
        if keep_local.len() == chunk.ids.len() {
            continue;
        }
        if keep_local.is_empty() {
            // Everything in this chunk was pruned: drop the data where
            // it lives, no fetch required.
            if let (Some(slot), Some(file)) = (chunk.spill_slot, spill.as_mut()) {
                file.release(slot)?;
            }
            chunk.spill_slot = None;
            chunk.hidden = None;
            chunk.ids.clear();
            chunk.seq_lens.clear();
            chunk.ranges.clear();
            chunk.tokens.clear();
            continue;
        }
        let fetched_here = chunk.hidden.is_none();
        if fetched_here {
            if let (Some(slot), Some(file)) = (chunk.spill_slot, spill.as_mut()) {
                if file.precision() == SpillPrecision::Int8 {
                    // Compact the slot in the encoded domain: raw
                    // per-row affine/code copies, no decode→re-encode
                    // round. Re-quantizing survivors here would add a
                    // quantization step whose occurrence depends on
                    // which chunk-mates were pruned — i.e. on physical
                    // chunk layout — breaking bit-parity between layouts
                    // (single-engine vs sharded, different chunk sizes).
                    let rows: Vec<usize> = keep_local
                        .iter()
                        .flat_map(|&li| {
                            let (s, e) = chunk.ranges[li];
                            s..e
                        })
                        .collect();
                    // A quarantined slot is rebuilt from the weights and
                    // re-encoded; the file's int8 encode and the block
                    // encode are the same transform, so the recovered
                    // codes equal the lost ones bitwise.
                    let block = match file.fetch_block(slot) {
                        Ok(b) => b,
                        Err(StorageError::ChecksumMismatch { .. }) => {
                            RowQuantBlock::encode(&recompute(chunk)?)?
                        }
                        Err(e) => return Err(e.into()),
                    };
                    let kept = block.gather_rows(&rows)?;
                    file.write_back_block(slot, kept)?;
                    chunk.ids = keep_local.iter().map(|&li| chunk.ids[li]).collect();
                    chunk.seq_lens = keep_local.iter().map(|&li| chunk.seq_lens[li]).collect();
                    chunk.tokens = keep_local
                        .iter()
                        .map(|&li| std::mem::take(&mut chunk.tokens[li]))
                        .collect();
                    chunk.ranges = Chunk::ranges_from(&chunk.seq_lens);
                    continue;
                }
                // An f32 file's round trip is bit-exact, so a recompute
                // is the fetch it replaces.
                let fetched = match file.fetch(slot) {
                    Ok(t) => t,
                    Err(StorageError::ChecksumMismatch { .. }) => recompute(chunk)?,
                    Err(e) => return Err(e.into()),
                };
                chunk.hidden = Some(fetched);
            }
        }
        let Some(hidden) = chunk.hidden.take() else {
            // Nothing resident and no spill: chunk must be empty.
            chunk.ids.clear();
            chunk.seq_lens.clear();
            chunk.ranges.clear();
            chunk.tokens.clear();
            continue;
        };
        let mut rows: Vec<usize> = Vec::new();
        for &li in &keep_local {
            let (s, e) = chunk.ranges[li];
            rows.extend(s..e);
        }
        let new_hidden = hidden.gather_rows(&rows)?;
        chunk.ids = keep_local.iter().map(|&li| chunk.ids[li]).collect();
        chunk.seq_lens = keep_local.iter().map(|&li| chunk.seq_lens[li]).collect();
        chunk.tokens = keep_local
            .iter()
            .map(|&li| std::mem::take(&mut chunk.tokens[li]))
            .collect();
        chunk.ranges = Chunk::ranges_from(&chunk.seq_lens);
        if let (Some(slot), Some(file), true) = (chunk.spill_slot, spill.as_mut(), fetched_here) {
            file.write_back(slot, new_hidden)?;
            chunk.hidden = None;
        } else {
            chunk.hidden = Some(new_hidden);
        }
    }
    chunks.retain(|c| !c.ids.is_empty());
    Ok(())
}

#[cfg(test)]
mod sync_tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<PrismEngine>();
    }

    #[test]
    fn request_options_defaults() {
        let o = RequestOptions::top_k(5);
        assert_eq!(o.k, 5);
        assert!(o.tag.is_none() && o.dispersion_threshold.is_none());
        assert_eq!(o.priority, Priority::Normal);
        assert!(o.deadline_us.is_none());
        assert_eq!(o.spill_precision, SpillPrecision::Int8);
        assert_eq!(
            o.compute_precision,
            ComputePrecision::F32,
            "int8 compute is opt-in"
        );
        assert_eq!(o.on_partial, PartialMode::Fail, "degraded mode is opt-in");
        assert_eq!(
            RequestOptions::top_k(2)
                .with_on_partial(PartialMode::Partial)
                .on_partial,
            PartialMode::Partial
        );
        let t = RequestOptions::tagged(3, 42);
        assert_eq!(t.tag, Some(42));
        let p = RequestOptions::top_k(2)
            .with_priority(Priority::High)
            .with_deadline_us(5_000)
            .with_dispersion_threshold(0.4)
            .with_compute_precision(ComputePrecision::Int8)
            .with_spill_precision(SpillPrecision::F32);
        assert_eq!(p.priority, Priority::High);
        assert_eq!(p.deadline_us, Some(5_000));
        assert_eq!(p.dispersion_threshold, Some(0.4));
        assert_eq!(p.compute_precision, ComputePrecision::Int8);
        assert_eq!(p.spill_precision, SpillPrecision::F32);
    }

    #[test]
    fn priority_orders_urgency() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Bulk);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
