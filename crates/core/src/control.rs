//! Request-lifecycle control: cancellation tokens, deadlines and
//! layer-granularity progress reporting.
//!
//! These are the engine-side hooks behind the `prism-api` facade's
//! [`SelectionHandle`]: a handle's `cancel()` flips a [`CancelToken`]
//! shared with the engine, which observes it at every layer boundary (the
//! gap between the gate, forward and score phases) and aborts the request
//! there — releasing its spill file and hidden-state bytes immediately
//! instead of at the end of the pass. Deadlines reuse the same boundary:
//! a request whose deadline has passed aborts with
//! [`crate::PrismError::DeadlineExceeded`]. Progress flows the other way:
//! after each boundary the engine pushes a [`ProgressUpdate`] through an
//! optional [`ProgressFn`], so callers can watch layers execute and
//! candidates get pruned without polling the engine.
//!
//! All three hooks are opt-in and observation-only: attaching them never
//! changes the compute order, so results stay bit-identical with or
//! without them.
//!
//! [`SelectionHandle`]: https://docs.rs/prism-api

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::Serialize;

/// A shared cancellation flag: cloned between a caller-facing handle and
/// the in-flight request. Cheap to clone and check (one relaxed atomic
/// load per layer boundary).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; the engine observes it at the
    /// next layer boundary of the request the token is attached to.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One layer-boundary progress report for an in-flight selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProgressUpdate {
    /// Layer boundary this update was emitted at (0-based; the gate for
    /// layer `layer` has just run).
    pub layer: usize,
    /// Transformer layers fully forwarded so far.
    pub layers_forwarded: usize,
    /// Candidates still being forwarded (neither accepted nor pruned).
    pub active: usize,
    /// Candidates already accepted into the top-K.
    pub accepted: usize,
    /// Candidates pruned (dropped) so far.
    pub pruned: usize,
}

/// Callback receiving [`ProgressUpdate`]s; invoked from the thread
/// driving the request, so it must be cheap and non-blocking.
pub type ProgressFn = Arc<dyn Fn(ProgressUpdate) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        t.cancel();
        assert!(t.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn progress_update_serializes() {
        let u = ProgressUpdate {
            layer: 3,
            layers_forwarded: 3,
            active: 7,
            accepted: 1,
            pruned: 4,
        };
        assert!(serde_json::to_string(&u).is_ok());
    }
}
