//! Global selection bookkeeping for scatter-gather (sharded) execution.
//!
//! The pruning gate (§4.1) is a function of the *whole* batch's score
//! distribution — its CV test and 1-D K-Means see every active candidate
//! at once. A sharded deployment that let each shard gate its own subset
//! would therefore diverge from the single-engine result. Instead, shards
//! run with local pruning disabled and a coordinator owns one
//! [`ScatterGate`]: each layer boundary it gathers every shard's
//! `(candidate, score)` pairs, rebuilds the global score vector in
//! ascending-id order (exactly the order the single engine's
//! `current_scores` has), runs the gate through the *same*
//! `route_and_book` implementation the engine uses with the same seed
//! derivation, and hands each shard back a keep-mask. Finalization flows
//! through the same shared `finalize_ranked`, so the merged top-k is
//! bit-identical to single-engine selection — the property the cross-shard
//! conformance suite pins.

use crate::control::ProgressUpdate;
use crate::engine::{
    finalize_ranked, route_and_book, EngineTrace, GateBook, GateParams, RankedCandidate,
    RequestOptions, Selection,
};
use crate::options::EngineOptions;
use crate::{PrismError, Result};

/// The coordinator's decision for one layer boundary.
#[derive(Debug, Clone)]
pub struct ScatterStep {
    /// Keep-mask over *global* candidate ids when the gate pruned anyone;
    /// the coordinator projects it to shard-local masks and applies them
    /// via `PrismEngine::apply_keep_mask`.
    pub keep: Option<Vec<bool>>,
    /// The selection is decided: no shard needs further layers.
    pub done: bool,
}

/// Global gate + merge state for one scattered request.
///
/// Drives the identical bookkeeping an [`crate::ActiveRequest`] keeps for
/// the score-level selection state (accepted set, current scores, last
/// scores, trace, termination), while the per-shard `ActiveRequest`s keep
/// only the physical state (hidden chunks, spill slots, meter bytes).
pub struct ScatterGate {
    n: usize,
    k: usize,
    tag: u64,
    engine_seed: u64,
    num_layers: usize,
    gate: GateParams,
    current: Vec<(usize, f32)>,
    last_scores: Vec<f32>,
    accepted: Vec<RankedCandidate>,
    terminated: bool,
    trace: EngineTrace,
    dropped_total: usize,
    /// Per-candidate loss marks for unrecoverable shard failures
    /// (degraded-mode serving under [`crate::PartialMode::Partial`]);
    /// the count drives the merged selection's `coverage`.
    lost: Vec<bool>,
    lost_total: usize,
    /// Whether [`ScatterGate::seed_probe`] has run. Before seeding every
    /// candidate is active (nothing has been scored or pruned yet), so
    /// losses are counted without consulting the score vector.
    seeded: bool,
}

impl ScatterGate {
    /// Builds the coordinator state for a request of `n` candidates.
    ///
    /// `engine` must be the options every shard engine shares (validated
    /// by the serving layer's shard set); `tag` is the resolved routing
    /// tag — the same value a single engine would have used, since the
    /// gate seed is `engine.seed ^ layer ^ tag`.
    pub fn new(
        engine: &EngineOptions,
        options: &RequestOptions,
        n: usize,
        num_layers: usize,
        tag: u64,
    ) -> Result<Self> {
        if n == 0 {
            return Err(PrismError::InvalidRequest("empty batch".into()));
        }
        if options.k == 0 {
            return Err(PrismError::InvalidRequest("k must be >= 1".into()));
        }
        Ok(ScatterGate {
            n,
            k: options.k.min(n),
            tag,
            engine_seed: engine.seed,
            num_layers,
            gate: GateParams::resolve(engine, options),
            current: Vec::new(),
            last_scores: vec![0.0_f32; n],
            accepted: Vec::new(),
            terminated: false,
            trace: EngineTrace::default(),
            dropped_total: 0,
            lost: vec![false; n],
            lost_total: 0,
            seeded: false,
        })
    }

    /// Number of candidates in the originating batch.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// The resolved top-K size (clamped to the candidate count).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the selection is decided (no more layers needed).
    pub fn is_done(&self) -> bool {
        self.terminated
    }

    /// Seeds the post-embedding probe scores (the merge of every shard's
    /// probe, ascending by global id) — mirrors `plan_request`'s seeding
    /// of `current_scores` / `last_scores`.
    pub fn seed_probe(&mut self, merged: Vec<(usize, f32)>) {
        debug_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        self.current = merged;
        self.seeded = true;
        for &(id, s) in &self.current {
            self.last_scores[id] = s;
        }
    }

    /// Whether candidate `id` is still in play: neither pruned, accepted,
    /// nor lost. Before the probe is seeded every candidate is active.
    /// The failover coordinator uses this to decide which of a dead
    /// shard's candidates must be replayed on a replica.
    pub fn is_active(&self, id: usize) -> bool {
        if id >= self.n || self.lost[id] {
            return false;
        }
        if !self.seeded {
            return true;
        }
        self.current.iter().any(|&(c, _)| c == id)
    }

    /// Records the merged scores after one forwarded layer — mirrors the
    /// engine's `forward_and_score` bookkeeping.
    pub fn observe_layer(&mut self, merged: Vec<(usize, f32)>) {
        debug_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        self.current = merged;
        self.trace.executed_layers += 1;
        for &(id, s) in &self.current {
            self.last_scores[id] = s;
        }
    }

    /// Runs the global pruning gate for `layer_idx` — the same decision,
    /// seed and bookkeeping a single engine would run at this boundary.
    pub fn gate(&mut self, layer_idx: usize) -> ScatterStep {
        if self.terminated {
            return ScatterStep {
                keep: None,
                done: true,
            };
        }
        let step = route_and_book(
            GateBook {
                k: self.k,
                n: self.n,
                accepted: &mut self.accepted,
                current_scores: &mut self.current,
                trace: &mut self.trace,
                dropped_total: &mut self.dropped_total,
            },
            layer_idx,
            &self.gate,
            self.engine_seed,
            self.tag,
        );
        if step.terminate || self.current.is_empty() {
            self.terminated = true;
        } else {
            self.trace.active_per_layer.push(self.current.len());
        }
        ScatterStep {
            keep: step.keep_mask,
            done: self.terminated,
        }
    }

    /// Drops candidates whose shard died with every replica exhausted —
    /// the coordinator's degraded-mode path
    /// ([`crate::PartialMode::Partial`]). Still-active candidates in
    /// `lost` leave the score vector (the gate never sees them again);
    /// already-accepted or already-pruned candidates are unaffected
    /// (their fate was decided while their shard was alive). Returns how
    /// many active candidates were actually removed; the request
    /// terminates if nothing active remains.
    pub fn remove_candidates(&mut self, lost: &[usize]) -> usize {
        let mut removed = 0;
        for &id in lost {
            if self.is_active(id) {
                self.lost[id] = true;
                removed += 1;
            }
        }
        if removed > 0 {
            self.lost_total += removed;
            self.current.retain(|&(id, _)| !self.lost[id]);
            let none_left = if self.seeded {
                self.current.is_empty()
            } else {
                self.lost_total == self.n
            };
            if none_left {
                self.terminated = true;
            }
        }
        removed
    }

    /// Fraction of the request's candidates still served, in `(0, 1]` —
    /// what the merged selection will report as its coverage.
    pub fn coverage(&self) -> f32 {
        1.0 - self.lost_total as f32 / self.n as f32
    }

    /// A progress snapshot for the facade's layer-granularity stream
    /// (same fields the engine emits from its own boundary).
    pub fn progress(&self, layer: usize) -> ProgressUpdate {
        ProgressUpdate {
            layer,
            layers_forwarded: self.trace.executed_layers,
            active: self.current.len(),
            accepted: self.accepted.len(),
            pruned: self.dropped_total,
        }
    }

    /// Ranks the survivors and assembles the merged [`Selection`] through
    /// the same `finalize_ranked` path the engine uses (score-descending,
    /// ties keep ascending-id order).
    pub fn finalize(mut self) -> Selection {
        finalize_ranked(
            &mut self.accepted,
            &self.current,
            self.terminated,
            self.k,
            self.num_layers,
        );
        let coverage = 1.0 - self.lost_total as f32 / self.n as f32;
        Selection {
            ranked: self.accepted,
            last_scores: self.last_scores,
            coverage,
            trace: self.trace,
        }
    }
}

/// Merges per-shard `(global_id, score)` lists into one ascending-id
/// vector. Each shard's list is already ascending (shard-local order is a
/// subsequence of the global order), so this is a k-way merge.
pub fn merge_shard_scores(per_shard: &[Vec<(usize, f32)>]) -> Vec<(usize, f32)> {
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for scores in per_shard {
        merged.extend_from_slice(scores);
    }
    merged.sort_by_key(|&(id, _)| id);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> (EngineOptions, RequestOptions) {
        (EngineOptions::default(), RequestOptions::tagged(2, 7))
    }

    #[test]
    fn rejects_degenerate_requests() {
        let (eo, ro) = opts();
        assert!(ScatterGate::new(&eo, &ro, 0, 6, 7).is_err());
        let mut zero_k = ro.clone();
        zero_k.k = 0;
        assert!(ScatterGate::new(&eo, &zero_k, 4, 6, 7).is_err());
        let g = ScatterGate::new(&eo, &ro, 4, 6, 7).unwrap();
        assert_eq!(g.k(), 2);
        assert_eq!(g.num_candidates(), 4);
    }

    #[test]
    fn k_clamps_to_candidate_count() {
        let (eo, mut ro) = opts();
        ro.k = 10;
        let g = ScatterGate::new(&eo, &ro, 3, 6, 7).unwrap();
        assert_eq!(g.k(), 3);
    }

    #[test]
    fn no_pruning_finalize_ranks_by_score_then_id() {
        let (eo, mut ro) = opts();
        ro.pruning = Some(false);
        ro.k = 3;
        let mut g = ScatterGate::new(&eo, &ro, 4, 2, 7).unwrap();
        g.seed_probe(vec![(0, 0.1), (1, 0.9), (2, 0.9), (3, 0.4)]);
        for l in 0..2 {
            let step = g.gate(l);
            assert!(step.keep.is_none() && !step.done);
            g.observe_layer(vec![(0, 0.1), (1, 0.9), (2, 0.9), (3, 0.4)]);
        }
        let sel = g.finalize();
        // Tied scores keep ascending-id order (stable sort).
        assert_eq!(sel.top_ids(), vec![1, 2, 3]);
        assert_eq!(sel.last_scores, vec![0.1, 0.9, 0.9, 0.4]);
        assert!(
            sel.ranked.iter().all(|r| r.decided_at_layer == 2),
            "{:?}",
            sel.ranked
        );
    }

    #[test]
    fn removing_lost_candidates_tracks_coverage() {
        let (eo, mut ro) = opts();
        ro.pruning = Some(false);
        ro.k = 2;
        let mut g = ScatterGate::new(&eo, &ro, 4, 2, 7).unwrap();
        g.seed_probe(vec![(0, 0.1), (1, 0.9), (2, 0.8), (3, 0.4)]);
        assert_eq!(g.coverage(), 1.0);
        // Losing candidate 3 (plus an out-of-range id, ignored) leaves
        // three survivors and 75% coverage.
        assert_eq!(g.remove_candidates(&[3, 99]), 1);
        assert!(!g.is_done());
        // Removing an already-lost candidate is a no-op.
        assert_eq!(g.remove_candidates(&[3]), 0);
        for l in 0..2 {
            let step = g.gate(l);
            assert!(step.keep.is_none() && !step.done);
            g.observe_layer(vec![(0, 0.1), (1, 0.9), (2, 0.8)]);
        }
        let sel = g.finalize();
        assert_eq!(sel.top_ids(), vec![1, 2]);
        assert_eq!(sel.coverage, 0.75);
        assert!(!sel.is_complete());
    }

    #[test]
    fn pre_seed_losses_count_toward_coverage() {
        // A shard dead at planning time loses candidates before the probe
        // seeds the score vector; coverage must still account for them.
        let (eo, mut ro) = opts();
        ro.pruning = Some(false);
        let mut g = ScatterGate::new(&eo, &ro, 4, 2, 7).unwrap();
        assert!(g.is_active(0) && g.is_active(3), "all active pre-seed");
        assert_eq!(g.remove_candidates(&[3]), 1);
        assert!(!g.is_active(3));
        assert!(!g.is_done(), "survivors remain");
        g.seed_probe(vec![(0, 0.1), (1, 0.9), (2, 0.8)]);
        for l in 0..2 {
            let _ = g.gate(l);
            g.observe_layer(vec![(0, 0.1), (1, 0.9), (2, 0.8)]);
        }
        assert_eq!(g.coverage(), 0.75);
        assert_eq!(g.finalize().coverage, 0.75);
    }

    #[test]
    fn losing_every_candidate_terminates() {
        let (eo, mut ro) = opts();
        ro.pruning = Some(false);
        let mut g = ScatterGate::new(&eo, &ro, 2, 2, 7).unwrap();
        g.seed_probe(vec![(0, 0.1), (1, 0.9)]);
        assert_eq!(g.remove_candidates(&[0, 1]), 2);
        assert!(g.is_done());
        assert_eq!(g.finalize().coverage, 0.0);
    }

    #[test]
    fn merge_is_ascending_by_global_id() {
        let merged = merge_shard_scores(&[
            vec![(1, 0.5), (4, 0.2)],
            vec![(0, 0.9), (2, 0.1)],
            vec![(3, 0.7)],
        ]);
        assert_eq!(
            merged,
            vec![(0, 0.9), (1, 0.5), (2, 0.1), (3, 0.7), (4, 0.2)]
        );
    }
}
