//! Engine configuration: the dispersion threshold, routing mode and the
//! per-technique switches behind the Fig. 16 ablation.

use serde::Serialize;

/// What the application needs from the top-K (Discussion §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PruneMode {
    /// Only set membership matters: accept winners early *and* drop losers
    /// (maximum latency reduction — the default for RAG-style consumers).
    TopKOnly,
    /// Exact rank order / final scores matter: drop hopeless candidates
    /// but let top contenders run the full depth.
    ExactOrder,
}

/// Scheduling class of a request (used by the serving layer's
/// priority-then-EDF batch planner; ignored by direct engine calls).
///
/// Ordered: `Bulk < Normal < High`, so `Ord` comparisons pick the more
/// urgent class. Priority never influences *what* a selection computes —
/// only *when* a multi-tenant scheduler runs it — so it is deliberately
/// excluded from result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub enum Priority {
    /// Throughput-oriented background work; may wait for coalescing.
    Bulk,
    /// Interactive default.
    #[default]
    Normal,
    /// Latency-critical: jumps ahead of `Normal`/`Bulk` work.
    High,
}

/// Numeric precision of the per-layer forward computation.
///
/// [`ComputePrecision::F32`] (default) runs the f32 GEMM kernels.
/// [`ComputePrecision::Int8`] routes the seven per-layer projections
/// through the u8×i8 integer GEMM micro-kernels: activations are
/// row-quantized once per projection, weights are held as per-row
/// symmetric i8, and the exact i32 accumulator is rescaled back to f32 in
/// one fused step. Attention, normalization, residuals and scoring stay
/// f32. Scores shift within the quantization error bound but top-K
/// membership is preserved on the golden corpus, and under the offload
/// regime spilled int8 hidden states feed the integer kernels without an
/// f32 spill round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum ComputePrecision {
    /// Full-precision forward pass (bit-identical to the historical path).
    #[default]
    F32,
    /// Integer GEMMs with per-row affine activation scales.
    Int8,
}

/// Exactness policy of the semantic result cache (`prism-semcache`),
/// the similarity-keyed cross-request cache the serving layer places
/// between its per-session memo cache and the engine.
///
/// The cache only ever engages on *full-depth* requests (effective
/// pruning off): a candidate's full-depth score is a pure function of
/// its token sequence and precision knobs — the batch-independence
/// contract the conformance suites pin — so replaying a cached score is
/// sound. Pruned requests bypass the cache entirely.
///
/// Like [`ComputePrecision`], this knob changes *what may be reused*,
/// so it participates in result-cache keys (unlike [`Priority`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum SemCacheMode {
    /// Never probe or populate the cache (the exact path).
    #[default]
    Off,
    /// Replay only exact token-identical candidates (bit-identical to
    /// [`SemCacheMode::Off`] by construction); a sampled fraction of
    /// hits is re-scored against the exact path and a mismatch poisons
    /// the entry's LSH bucket, falling back to full compute.
    VerifyAndFallback,
    /// Additionally replay *near-duplicate* candidates whose mean-pooled
    /// embedding cosine clears the similarity threshold — approximate by
    /// design, maximum reuse.
    Aggressive,
}

/// What a sharded request does when candidates become unrecoverable —
/// every replica of their shard is down, so no engine can forward them.
///
/// Like [`SemCacheMode`], this knob can change *what* a selection
/// returns, so the serving layer keys result caches on it. Direct
/// single-engine calls never lose candidates and ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum PartialMode {
    /// Exact-or-error: the request fails with a typed shard failure
    /// (the historical behaviour, and the only sound choice for callers
    /// that require the bit-identity contract).
    #[default]
    Fail,
    /// Best-effort: the selection is computed over the surviving
    /// candidates and surfaced with `Selection::coverage < 1.0` so the
    /// caller can distinguish exact from partial results.
    Partial,
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineOptions {
    /// CV threshold that gates clustering (§4.1). Lower = more aggressive
    /// pruning; higher = more conservative.
    pub dispersion_threshold: f32,
    /// Routing semantics.
    pub mode: PruneMode,
    /// Master switch for progressive cluster pruning.
    pub pruning: bool,
    /// Stream layer weights from disk with double buffering (§4.2);
    /// `false` keeps all layers resident.
    pub streaming: bool,
    /// Number of in-flight stream buffers (the paper uses 2).
    pub stream_depth: usize,
    /// Execute the monolithic batch in chunks (§4.3).
    pub chunking: bool,
    /// Candidates per chunk; `None` derives it from a target token count.
    pub chunk_candidates: Option<usize>,
    /// Tokens per chunk targeted when `chunk_candidates` is `None`.
    pub chunk_target_tokens: usize,
    /// Serve embeddings from a disk-backed LRU cache (§4.4); `false`
    /// keeps the full table resident.
    pub embed_cache: bool,
    /// Cache capacity as a fraction of the vocabulary (paper: 10%).
    pub embed_cache_fraction: f64,
    /// Offload non-active chunk hidden states to a spill file (§4.3).
    pub hidden_offload: bool,
    /// Route spill reads/writes through the overlapped background I/O
    /// pipeline (chunk *i* computes while *i+1* prefetches and *i-1*
    /// writes back — §4.3's three-stage window). `false` degrades to the
    /// synchronous historical path; the offload benchmarks use it as the
    /// frozen baseline.
    pub spill_pipeline: bool,
    /// Maximum clusters the auto K-Means may produce.
    pub max_clusters: usize,
    /// First layer boundary at which the pruning gate may fire. The gate
    /// needs scores derived from at least one transformer layer's output
    /// (§4.1 computes them from "layer i's output scores"), so values
    /// below 1 are treated as 1.
    pub min_gate_layer: usize,
    /// Record per-layer score vectors in the trace (Fig. 2 probes; adds
    /// memory proportional to layers × candidates).
    pub record_score_trace: bool,
    /// Optional bandwidth cap (bytes/s) on weight streaming and spill
    /// I/O, emulating a specific SSD (tests, benches). `None` = native.
    pub stream_throttle: Option<u64>,
    /// Seed for K-Means initialization.
    pub seed: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            dispersion_threshold: 0.25,
            mode: PruneMode::TopKOnly,
            pruning: true,
            streaming: true,
            stream_depth: 2,
            chunking: true,
            chunk_candidates: None,
            chunk_target_tokens: 256,
            embed_cache: true,
            embed_cache_fraction: 0.10,
            hidden_offload: false,
            spill_pipeline: true,
            max_clusters: 5,
            min_gate_layer: 1,
            record_score_trace: false,
            stream_throttle: None,
            seed: 0x5EED,
        }
    }
}

impl EngineOptions {
    /// The paper's "Low" threshold setting (aggressive pruning).
    pub fn low_threshold() -> Self {
        EngineOptions {
            dispersion_threshold: 0.12,
            ..Default::default()
        }
    }

    /// The paper's "High" threshold setting (conservative pruning).
    pub fn high_threshold() -> Self {
        EngineOptions {
            dispersion_threshold: 0.45,
            ..Default::default()
        }
    }

    /// Vanilla monolithic forwarding: every optimization off (the HF-like
    /// starting point of the Fig. 16 ablation, but single-process).
    pub fn all_off() -> Self {
        EngineOptions {
            pruning: false,
            streaming: false,
            chunking: false,
            embed_cache: false,
            hidden_offload: false,
            ..Default::default()
        }
    }

    /// Returns a copy with one named technique enabled — used by the
    /// incremental ablation. Valid names: `"pruning"`, `"chunking"`,
    /// `"streaming"`, `"embed_cache"`, `"hidden_offload"`.
    pub fn with_technique(mut self, name: &str) -> Self {
        match name {
            "pruning" => self.pruning = true,
            "chunking" => self.chunking = true,
            "streaming" => self.streaming = true,
            "embed_cache" => self.embed_cache = true,
            "hidden_offload" => self.hidden_offload = true,
            _ => {}
        }
        self
    }

    /// Validates option consistency.
    pub fn validate(&self) -> crate::Result<()> {
        if !(0.0..=10.0).contains(&self.dispersion_threshold) {
            return Err(crate::PrismError::InvalidRequest(format!(
                "dispersion threshold {} out of range",
                self.dispersion_threshold
            )));
        }
        if self.embed_cache && !(0.0..=1.0).contains(&self.embed_cache_fraction) {
            return Err(crate::PrismError::InvalidRequest(
                "embed cache fraction must be in [0,1]".into(),
            ));
        }
        if self.stream_depth == 0 {
            return Err(crate::PrismError::InvalidRequest(
                "stream depth must be >= 1".into(),
            ));
        }
        if self.max_clusters < 2 {
            return Err(crate::PrismError::InvalidRequest(
                "max_clusters must be >= 2".into(),
            ));
        }
        if let Some(c) = self.chunk_candidates {
            if c == 0 {
                return Err(crate::PrismError::InvalidRequest(
                    "chunk size must be >= 1".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_everything_on() {
        let o = EngineOptions::default();
        o.validate().unwrap();
        assert!(o.pruning && o.streaming && o.chunking && o.embed_cache);
        assert!(!o.hidden_offload, "hidden offload is opt-in");
        assert_eq!(o.stream_depth, 2, "paper uses dual buffers");
    }

    #[test]
    fn thresholds_ordered() {
        assert!(
            EngineOptions::low_threshold().dispersion_threshold
                < EngineOptions::high_threshold().dispersion_threshold
        );
    }

    #[test]
    fn ablation_composition() {
        let base = EngineOptions::all_off();
        assert!(!base.pruning && !base.streaming && !base.chunking && !base.embed_cache);
        let plus = base
            .clone()
            .with_technique("pruning")
            .with_technique("chunking");
        assert!(plus.pruning && plus.chunking && !plus.streaming);
        // Unknown technique is ignored.
        let same = base.clone().with_technique("nonsense");
        assert_eq!(same, base);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            EngineOptions {
                dispersion_threshold: -1.0,
                ..Default::default()
            },
            EngineOptions {
                embed_cache_fraction: 2.0,
                ..Default::default()
            },
            EngineOptions {
                stream_depth: 0,
                ..Default::default()
            },
            EngineOptions {
                max_clusters: 1,
                ..Default::default()
            },
            EngineOptions {
                chunk_candidates: Some(0),
                ..Default::default()
            },
        ];
        for o in bad {
            assert!(o.validate().is_err(), "{o:?} must be rejected");
        }
    }
}
