//! Three-way candidate routing: the decision core of progressive cluster
//! pruning (§4.1, Fig. 4).
//!
//! Given the active candidates' current scores, the number of top-K slots
//! still unfilled, and the dispersion threshold, [`route_candidates`]
//! decides which candidates are *selected* (accepted into the final top-K,
//! computation ceases), *dropped* (no chance of reaching the top-K), and
//! *deferred* (the boundary cluster — kept for more layers).
//!
//! The routing invariants, verified by unit and property tests:
//!
//! 1. selected ∪ dropped ∪ deferred is a partition of the active set,
//! 2. `selected.len() + deferred.len() >= k_remaining` (we can always
//!    still fill the top-K),
//! 3. `selected.len() < k_remaining` unless routing terminates,
//! 4. every selected candidate outscores every deferred candidate, and
//!    every deferred candidate outscores every dropped one (clusters over
//!    scalars are intervals).

use prism_cluster::{coefficient_of_variation, kmeans_auto};

/// Outcome of one routing decision over the active set.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// Active-set indices accepted into the final top-K.
    pub selected: Vec<usize>,
    /// Active-set indices pruned as hopeless.
    pub dropped: Vec<usize>,
    /// Active-set indices that continue to the next layer.
    pub deferred: Vec<usize>,
    /// Whether inference can stop: the deferred set exactly fills the
    /// remaining top-K slots.
    pub terminate: bool,
    /// Measured coefficient of variation (for traces).
    pub cv: f32,
    /// Whether the dispersion gate fired (if `false`, everything is
    /// deferred and no clustering ran).
    pub clustered: bool,
}

impl RouteDecision {
    fn defer_all(n: usize, cv: f32) -> Self {
        RouteDecision {
            selected: Vec::new(),
            dropped: Vec::new(),
            deferred: (0..n).collect(),
            terminate: false,
            cv,
            clustered: false,
        }
    }
}

/// Routes the active candidates given their current `scores`.
///
/// * `k_remaining` — top-K slots not yet filled by earlier selections.
/// * `threshold` — the dispersion (CV) gate.
/// * `prune_winners` — `true` for [`crate::PruneMode::TopKOnly`]: selected
///   clusters stop computing. `false` keeps winners in the deferred set so
///   their exact order is resolved by full inference.
/// * `max_clusters`, `seed` — K-Means parameters.
///
/// # Examples
///
/// ```
/// use prism_core::route_candidates;
/// // Two clear winners, three mid, three losers; K = 4.
/// let scores = [0.95, 0.93, 0.55, 0.52, 0.50, 0.10, 0.08, 0.05];
/// let d = route_candidates(&scores, 4, 0.1, true, 5, 7);
/// assert_eq!(d.selected, vec![0, 1]);     // accepted into the top-K
/// assert_eq!(d.dropped, vec![5, 6, 7]);   // hopeless
/// assert_eq!(d.deferred, vec![2, 3, 4]);  // boundary cluster continues
/// ```
pub fn route_candidates(
    scores: &[f32],
    k_remaining: usize,
    threshold: f32,
    prune_winners: bool,
    max_clusters: usize,
    seed: u64,
) -> RouteDecision {
    let n = scores.len();
    if n == 0 {
        return RouteDecision {
            selected: Vec::new(),
            dropped: Vec::new(),
            deferred: Vec::new(),
            terminate: true,
            cv: 0.0,
            clustered: false,
        };
    }
    if k_remaining == 0 {
        // Nothing left to fill; everything else is dropped.
        return RouteDecision {
            selected: Vec::new(),
            dropped: (0..n).collect(),
            deferred: Vec::new(),
            terminate: true,
            cv: 0.0,
            clustered: false,
        };
    }
    if k_remaining >= n {
        if prune_winners {
            // Every active candidate is needed: select all, stop.
            return RouteDecision {
                selected: (0..n).collect(),
                dropped: Vec::new(),
                deferred: Vec::new(),
                terminate: true,
                cv: 0.0,
                clustered: false,
            };
        }
        // Exact-order mode: membership is settled but the order is not;
        // keep computing.
        return RouteDecision::defer_all(n, 0.0);
    }

    let cv = coefficient_of_variation(scores);
    if cv <= threshold {
        return RouteDecision::defer_all(n, cv);
    }

    let clustering = kmeans_auto(scores, max_clusters, seed);
    if clustering.k() < 2 {
        return RouteDecision::defer_all(n, cv);
    }

    // Rank clusters by mean score, descending.
    let mut cluster_order: Vec<usize> = (0..clustering.k()).collect();
    let means: Vec<f32> = (0..clustering.k())
        .map(|c| clustering.cluster_mean(scores, c))
        .collect();
    cluster_order.sort_by(|&a, &b| means[b].total_cmp(&means[a]));

    // Find the boundary cluster: the one containing the k_remaining-th
    // ranked candidate.
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let kth = ranked[k_remaining - 1];
    let boundary = clustering.assignments[kth];

    let mut selected = Vec::new();
    let mut dropped = Vec::new();
    let mut deferred = Vec::new();
    let mut seen_boundary = false;
    for &c in &cluster_order {
        let members = clustering.members(c);
        if c == boundary {
            seen_boundary = true;
            deferred.extend(members);
        } else if !seen_boundary {
            // Higher-mean cluster than the boundary: winners.
            if prune_winners {
                selected.extend(members);
            } else {
                deferred.extend(members);
            }
        } else {
            dropped.extend(members);
        }
    }
    selected.sort_unstable();
    dropped.sort_unstable();
    deferred.sort_unstable();

    // Terminal condition (§4.5): deferred candidates exactly fill the
    // remaining slots — they are all winners, stop immediately. Only valid
    // when winners may be pruned; exact-order mode must keep refining
    // their ranking through the full depth.
    let slots_after_selection = k_remaining - selected.len();
    let terminate = prune_winners && deferred.len() == slots_after_selection;
    if terminate {
        selected.append(&mut deferred);
        selected.sort_unstable();
    }

    RouteDecision {
        selected,
        dropped,
        deferred,
        terminate,
        cv,
        clustered: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(d: &RouteDecision, n: usize) {
        let mut all: Vec<usize> = d
            .selected
            .iter()
            .chain(&d.dropped)
            .chain(&d.deferred)
            .copied()
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(all, expect, "routing must partition the active set");
    }

    fn assert_score_ordering(d: &RouteDecision, scores: &[f32]) {
        let min_sel = d
            .selected
            .iter()
            .map(|&i| scores[i])
            .fold(f32::INFINITY, f32::min);
        let max_def = d
            .deferred
            .iter()
            .map(|&i| scores[i])
            .fold(f32::NEG_INFINITY, f32::max);
        let min_def = d
            .deferred
            .iter()
            .map(|&i| scores[i])
            .fold(f32::INFINITY, f32::min);
        let max_drop = d
            .dropped
            .iter()
            .map(|&i| scores[i])
            .fold(f32::NEG_INFINITY, f32::max);
        if !d.selected.is_empty() && !d.deferred.is_empty() {
            assert!(min_sel >= max_def, "selected must outscore deferred");
        }
        if !d.deferred.is_empty() && !d.dropped.is_empty() {
            assert!(min_def >= max_drop, "deferred must outscore dropped");
        }
    }

    #[test]
    fn three_way_split_on_clear_clusters() {
        // Scores in three clear clusters: 2 high, 3 mid, 3 low; K = 4.
        // The 4th-ranked candidate sits in the mid cluster -> boundary.
        let scores = [0.95, 0.93, 0.55, 0.52, 0.50, 0.10, 0.08, 0.05];
        let d = route_candidates(&scores, 4, 0.1, true, 5, 7);
        assert!(d.clustered);
        assert_eq!(d.selected, vec![0, 1]);
        assert_eq!(d.deferred, vec![2, 3, 4]);
        assert_eq!(d.dropped, vec![5, 6, 7]);
        assert!(!d.terminate);
        assert_partition(&d, 8);
        assert_score_ordering(&d, &scores);
    }

    #[test]
    fn terminates_when_deferred_fills_slots() {
        // 2 high, 2 mid, 4 low; K = 4: boundary (mid) has exactly
        // 4 - 2 = 2 members -> terminate with all four winners.
        let scores = [0.9, 0.88, 0.55, 0.53, 0.1, 0.09, 0.08, 0.07];
        let d = route_candidates(&scores, 4, 0.1, true, 5, 3);
        assert!(d.terminate);
        assert_eq!(d.selected, vec![0, 1, 2, 3]);
        assert!(d.deferred.is_empty());
        assert_eq!(d.dropped, vec![4, 5, 6, 7]);
    }

    #[test]
    fn low_cv_defers_everything() {
        let scores = [0.50, 0.51, 0.49, 0.505, 0.495];
        let d = route_candidates(&scores, 2, 0.25, true, 5, 1);
        assert!(!d.clustered);
        assert_eq!(d.deferred.len(), 5);
        assert!(d.selected.is_empty() && d.dropped.is_empty());
        assert!(!d.terminate);
    }

    #[test]
    fn exact_order_mode_keeps_winners_running() {
        let scores = [0.95, 0.93, 0.55, 0.52, 0.50, 0.10, 0.08, 0.05];
        let d = route_candidates(&scores, 4, 0.1, false, 5, 7);
        assert!(d.selected.is_empty(), "winners defer in ExactOrder mode");
        assert_eq!(d.dropped, vec![5, 6, 7], "losers still pruned");
        assert_eq!(d.deferred, vec![0, 1, 2, 3, 4]);
        assert_partition(&d, 8);
    }

    #[test]
    fn k_remaining_geq_active_selects_all() {
        let scores = [0.3, 0.9, 0.5];
        let d = route_candidates(&scores, 3, 0.1, true, 5, 2);
        assert!(d.terminate);
        assert_eq!(d.selected, vec![0, 1, 2]);
        let d = route_candidates(&scores, 5, 0.1, true, 5, 2);
        assert!(d.terminate);
        assert_eq!(d.selected.len(), 3);
    }

    #[test]
    fn zero_k_drops_everything() {
        let scores = [0.3, 0.9];
        let d = route_candidates(&scores, 0, 0.1, true, 5, 2);
        assert!(d.terminate);
        assert_eq!(d.dropped.len(), 2);
    }

    #[test]
    fn empty_active_set_terminates() {
        let d = route_candidates(&[], 3, 0.1, true, 5, 2);
        assert!(d.terminate);
        assert!(d.selected.is_empty() && d.dropped.is_empty() && d.deferred.is_empty());
    }

    #[test]
    fn never_selects_more_than_k() {
        // Two big high clusters: selection must stay below k_remaining.
        let scores = [0.9, 0.89, 0.88, 0.87, 0.5, 0.49, 0.1, 0.09];
        for k in 1..=7 {
            let d = route_candidates(&scores, k, 0.05, true, 5, 11);
            assert!(
                d.selected.len() <= k,
                "k={k}: selected {} > k",
                d.selected.len()
            );
            assert!(
                d.selected.len() + d.deferred.len() >= k,
                "k={k}: cannot fill top-K anymore"
            );
            assert_partition(&d, 8);
            assert_score_ordering(&d, &scores);
        }
    }

    #[test]
    fn identical_scores_defer() {
        let scores = [0.5_f32; 10];
        let d = route_candidates(&scores, 3, 0.1, true, 5, 0);
        assert_eq!(d.deferred.len(), 10);
        assert!(!d.terminate);
    }
}
