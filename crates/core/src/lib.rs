//! PRISM: a training-free inference engine for cross-encoder rerankers on
//! edge devices, built on **monolithic forwarding**.
//!
//! Instead of pushing isolated batches through the full model, PRISM keeps
//! *all* candidates of a top-K selection in one batch that advances through
//! transformer layers together, which unlocks the paper's four techniques:
//!
//! * [`routing`] / [`PrismEngine`] — **progressive cluster pruning**
//!   (§4.1): a coefficient-of-variation gate detects when candidate scores
//!   have dispersed, 1-D K-Means finds score clusters, and whole clusters
//!   are routed — *selected* into the final top-K, *dropped*, or
//!   *deferred* for more layers. Inference terminates early once the
//!   deferred set exactly fills the remaining top-K slots.
//! * **overlapped layer streaming** (§4.2): at most two layers' weights
//!   are resident; the next layer loads from disk while the current one
//!   computes (`prism_storage::LayerStreamer`).
//! * **chunked execution** (§4.3): the monolithic batch is executed in
//!   chunks so only one chunk's transient tensors are live, with optional
//!   hidden-state offload to a spill file for very large candidate sets.
//! * **embedding table caching** (§4.4): embedding rows are served from a
//!   small LRU cache backed by disk.
//!
//! All techniques have independent on/off switches ([`EngineOptions`]) so
//! the Fig. 16 ablation is a configuration sweep, and the engine records a
//! full [`EngineTrace`] (per-layer active counts, routing events, stream
//! and cache statistics) that the device simulator replays at paper scale.

pub mod calibrate;
pub mod control;
pub mod engine;
pub mod options;
pub mod routing;
pub mod scatter;

pub use calibrate::ThresholdCalibrator;
pub use control::{CancelToken, ProgressFn, ProgressUpdate};
pub use engine::{
    rank_full_scores, ActiveRequest, EngineTrace, PrismEngine, RankedCandidate, RequestOptions,
    RequestSpec, Selection,
};
pub use options::{
    ComputePrecision, EngineOptions, PartialMode, Priority, PruneMode, SemCacheMode,
};
pub use routing::{route_candidates, RouteDecision};
pub use scatter::{merge_shard_scores, ScatterGate, ScatterStep};
// Re-exported so serving/API layers can thread the spill-precision knob
// without depending on `prism-storage` directly.
pub use prism_storage::{SpillPrecision, SpillStats};

/// Errors surfaced by the engine.
#[derive(Debug)]
pub enum PrismError {
    /// Model-level failure (shape/config).
    Model(prism_model::Error),
    /// Storage-level failure (container, streaming, cache).
    Storage(prism_storage::StorageError),
    /// Tensor kernel failure.
    Tensor(prism_tensor::TensorError),
    /// Invalid engine configuration or request.
    InvalidRequest(String),
    /// The request was cancelled mid-flight via its
    /// [`control::CancelToken`]; its spill file and hidden-state bytes
    /// were released at the layer boundary where cancellation was
    /// observed.
    Cancelled,
    /// The request's attached deadline passed before it finished; it was
    /// aborted at a layer boundary like a cancellation.
    DeadlineExceeded,
    /// A scatter-gather shard could not serve its part of the request
    /// (dead / unreachable shard). The merge never blocks on a failed
    /// shard: the coordinator surfaces this immediately and releases the
    /// surviving shards' resources.
    ShardFailure(String),
}

impl std::fmt::Display for PrismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrismError::Model(e) => write!(f, "model: {e}"),
            PrismError::Storage(e) => write!(f, "storage: {e}"),
            PrismError::Tensor(e) => write!(f, "tensor: {e}"),
            PrismError::InvalidRequest(s) => write!(f, "invalid request: {s}"),
            PrismError::Cancelled => write!(f, "request cancelled"),
            PrismError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            PrismError::ShardFailure(s) => write!(f, "shard failure: {s}"),
        }
    }
}

impl std::error::Error for PrismError {}

impl From<prism_model::Error> for PrismError {
    fn from(e: prism_model::Error) -> Self {
        PrismError::Model(e)
    }
}

impl From<prism_storage::StorageError> for PrismError {
    fn from(e: prism_storage::StorageError) -> Self {
        PrismError::Storage(e)
    }
}

impl From<prism_tensor::TensorError> for PrismError {
    fn from(e: prism_tensor::TensorError) -> Self {
        PrismError::Tensor(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, PrismError>;
