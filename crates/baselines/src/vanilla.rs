//! Vanilla resident-weight inference with micro-batching (`HF`).

use prism_core::Result;
use prism_metrics::{MemCategory, MemoryMeter};
use prism_model::layer::intermediate_bytes;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_storage::Container;

use crate::traits::{RankOutcome, Reranker};

/// HuggingFace-Transformers-style baseline: every weight resident in
/// memory, the candidate set split into micro-batches that each run the
/// full model depth.
pub struct HfVanilla {
    model: Model,
    micro_batch: usize,
    meter: MemoryMeter,
    name: String,
}

impl HfVanilla {
    /// Loads the model from a container and registers its full weight set
    /// with the meter.
    pub fn new(
        container: &Container,
        config: ModelConfig,
        micro_batch: usize,
        meter: MemoryMeter,
    ) -> Result<Self> {
        let model = Model::load_container(config, container)?;
        meter.set(
            MemCategory::LayerWeights,
            model
                .weights
                .layers
                .iter()
                .map(|l| l.size_bytes() as u64)
                .sum(),
        );
        meter.set(
            MemCategory::Embedding,
            model.weights.embedding.size_bytes() as u64,
        );
        meter.set(MemCategory::Head, model.weights.head.size_bytes() as u64);
        Ok(HfVanilla {
            model,
            micro_batch: micro_batch.max(1),
            meter,
            name: "HF".to_string(),
        })
    }

    /// Renames the system (used for the `HF Quant` variant).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The shared memory meter.
    pub fn meter(&self) -> &MemoryMeter {
        &self.meter
    }

    /// The underlying model.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

impl Reranker for HfVanilla {
    fn name(&self) -> &str {
        &self.name
    }

    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> Result<RankOutcome> {
        let n = batch.num_sequences();
        let mut scores = vec![0.0_f32; n];
        // One scratch workspace serves every micro-batch and layer.
        let max_tokens = batch.max_micro_batch_tokens(self.micro_batch);
        let mut scratch = prism_model::layer::ForwardScratch::new(&self.model.config, max_tokens);
        let mut start = 0;
        while start < n {
            let end = (start + self.micro_batch).min(n);
            let ids: Vec<usize> = (start..end).collect();
            let sub = batch.gather(&ids)?;
            let mut hidden = self.model.embed(&sub)?;
            let hidden_bytes = hidden.size_bytes() as u64;
            let inter =
                intermediate_bytes(&self.model.config, sub.total_tokens(), sub.max_seq_len());
            self.meter.alloc(MemCategory::HiddenStates, hidden_bytes);
            self.meter.alloc(MemCategory::Intermediate, inter);
            for l in 0..self.model.config.num_layers {
                self.model
                    .forward_layer_with(l, &mut hidden, sub.ranges(), &mut scratch)?;
            }
            let sub_scores = self.model.score(&hidden, sub.ranges())?;
            self.meter.free(MemCategory::Intermediate, inter);
            self.meter.free(MemCategory::HiddenStates, hidden_bytes);
            for (i, s) in ids.iter().zip(sub_scores) {
                scores[*i] = s;
            }
            start = end;
        }
        Ok(RankOutcome::from_scores(scores, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_model::ModelArch;
    use prism_workload::WorkloadGenerator;

    fn fixture(layers: usize) -> (Model, std::path::PathBuf) {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, layers);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "prism-vanilla-{}-{layers}.prsm",
            std::process::id()
        ));
        model.write_container(&path).unwrap();
        (model, path)
    }

    fn request(model: &Model, n: usize) -> SequenceBatch {
        let profile = prism_workload::dataset::dataset_by_name("wikipedia").unwrap();
        let gen = WorkloadGenerator::new(profile, model.config.vocab_size, model.config.max_seq, 3);
        SequenceBatch::new(&gen.request(0, n).sequences()).unwrap()
    }

    #[test]
    fn matches_reference_forward() {
        let (model, path) = fixture(4);
        let container = Container::open(&path).unwrap();
        let mut hf =
            HfVanilla::new(&container, model.config.clone(), 8, MemoryMeter::new()).unwrap();
        let batch = request(&model, 10);
        let out = hf.rerank(&batch, 3).unwrap();
        let direct = model.forward_full(&batch).unwrap();
        for (a, b) in out.scores.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(out.ranked.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn micro_batching_is_bit_exact() {
        let (model, path) = fixture(3);
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 9);
        let mut whole =
            HfVanilla::new(&container, model.config.clone(), 9, MemoryMeter::new()).unwrap();
        let mut split =
            HfVanilla::new(&container, model.config.clone(), 2, MemoryMeter::new()).unwrap();
        let a = whole.rerank(&batch, 9).unwrap();
        let b = split.rerank(&batch, 9).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.top_ids(), b.top_ids());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meter_reflects_resident_weights() {
        let (model, path) = fixture(4);
        let container = Container::open(&path).unwrap();
        let meter = MemoryMeter::new();
        let _hf = HfVanilla::new(&container, model.config.clone(), 4, meter.clone()).unwrap();
        let layer_total: u64 = model
            .weights
            .layers
            .iter()
            .map(|l| l.size_bytes() as u64)
            .sum();
        assert_eq!(meter.current(MemCategory::LayerWeights), layer_total);
        assert!(meter.current(MemCategory::Embedding) > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn smaller_micro_batch_lower_transient_peak() {
        let (model, path) = fixture(3);
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 12);
        let run = |mb: usize| -> u64 {
            let meter = MemoryMeter::new();
            let mut hf =
                HfVanilla::new(&container, model.config.clone(), mb, meter.clone()).unwrap();
            hf.rerank(&batch, 3).unwrap();
            meter.peak(MemCategory::Intermediate) + meter.peak(MemCategory::HiddenStates)
        };
        let big = run(12);
        let small = run(2);
        assert!(small < big, "small-mb peak {small} vs big-mb {big}");
        std::fs::remove_file(&path).unwrap();
    }
}
