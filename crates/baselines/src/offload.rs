//! HF + Accelerate-style synchronous disk offloading (`HF Offload`).
//!
//! Embedding table and classifier head stay resident; each transformer
//! layer is loaded from the container *synchronously, on the forward
//! path, once per micro-batch*. There is no prefetching and no overlap —
//! the execution pattern whose I/O stalls motivate §4.2's overlapped
//! layer streaming.

use prism_core::Result;
use prism_metrics::{MemCategory, MemoryMeter};
use prism_model::classifier::score_sequences;
use prism_model::layer::{forward_layer_with, intermediate_bytes, ForwardScratch};
use prism_model::model::{layer_section, SECTION_EMBEDDING, SECTION_HEAD};
use prism_model::{HeadWeights, LayerWeights, ModelConfig, SequenceBatch};
use prism_storage::{Container, Throttle};
use prism_tensor::Tensor;

/// Statistics of the synchronous load path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffloadStats {
    /// Layer loads performed (layers × micro-batches).
    pub layer_loads: u64,
    /// Bytes read from the container.
    pub bytes_loaded: u64,
    /// Microseconds spent blocked on loads.
    pub load_micros: u64,
}

/// The disk-offloading baseline.
pub struct HfOffload {
    config: ModelConfig,
    container: Container,
    embedding: Tensor,
    head: HeadWeights,
    micro_batch: usize,
    throttle: Throttle,
    meter: MemoryMeter,
    stats: OffloadStats,
    name: String,
}

impl HfOffload {
    /// Opens the baseline over a container; embedding and head are read
    /// eagerly (they stay resident, as HF Accelerate does).
    pub fn new(
        container: &Container,
        config: ModelConfig,
        micro_batch: usize,
        throttle: Throttle,
        meter: MemoryMeter,
    ) -> Result<Self> {
        let embedding = container.read_f32(SECTION_EMBEDDING)?;
        let mut blob = Vec::new();
        container.read_section_into(SECTION_HEAD, &mut blob)?;
        let head = HeadWeights::from_bytes(&config, &blob)?;
        meter.set(MemCategory::Embedding, embedding.size_bytes() as u64);
        meter.set(MemCategory::Head, head.size_bytes() as u64);
        Ok(HfOffload {
            config,
            container: container.reopen()?,
            embedding,
            head,
            micro_batch: micro_batch.max(1),
            throttle,
            meter,
            stats: OffloadStats::default(),
            name: "HF Offload".to_string(),
        })
    }

    /// Renames the system.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Load-path statistics.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }

    /// The shared memory meter.
    pub fn meter(&self) -> &MemoryMeter {
        &self.meter
    }

    fn embed(&self, batch: &SequenceBatch) -> Result<Tensor> {
        let d = self.config.hidden_dim;
        let mut hidden = Tensor::zeros(batch.total_tokens(), d);
        for &(start, end) in batch.ranges() {
            for (pos, t) in (start..end).enumerate() {
                let token = batch.tokens()[t] as usize;
                if token >= self.embedding.rows() {
                    return Err(prism_core::PrismError::InvalidRequest(format!(
                        "token {token} outside vocabulary"
                    )));
                }
                let row = hidden.row_mut(t)?;
                row.copy_from_slice(self.embedding.row(token)?);
                prism_model::model::add_position(row, pos, d);
            }
        }
        Ok(hidden)
    }

    fn load_layer(&mut self, l: usize) -> Result<LayerWeights> {
        let start = std::time::Instant::now();
        let mut blob = Vec::new();
        let meta = self
            .container
            .read_section_into(&layer_section(l), &mut blob)?;
        self.throttle.pace(start, meta.len);
        self.stats.layer_loads += 1;
        self.stats.bytes_loaded += meta.len;
        self.stats.load_micros += start.elapsed().as_micros() as u64;
        Ok(LayerWeights::from_bytes(&self.config, &blob)?)
    }
}

impl crate::Reranker for HfOffload {
    fn name(&self) -> &str {
        &self.name
    }

    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> Result<crate::RankOutcome> {
        let n = batch.num_sequences();
        let mut scores = vec![0.0_f32; n];
        // One scratch workspace serves every micro-batch and layer.
        let max_tokens = batch.max_micro_batch_tokens(self.micro_batch);
        let mut scratch = ForwardScratch::new(&self.config, max_tokens);
        let mut start = 0;
        while start < n {
            let end = (start + self.micro_batch).min(n);
            let ids: Vec<usize> = (start..end).collect();
            let sub = batch.gather(&ids)?;
            let mut hidden = self.embed(&sub)?;
            let hidden_bytes = hidden.size_bytes() as u64;
            let inter = intermediate_bytes(&self.config, sub.total_tokens(), sub.max_seq_len());
            self.meter.alloc(MemCategory::HiddenStates, hidden_bytes);
            self.meter.alloc(MemCategory::Intermediate, inter);
            for l in 0..self.config.num_layers {
                // Synchronous load -> compute -> release: one layer
                // resident at a time, re-loaded for every micro-batch.
                let weights = self.load_layer(l)?;
                let wbytes = weights.size_bytes() as u64;
                self.meter.alloc(MemCategory::LayerWeights, wbytes);
                forward_layer_with(
                    &self.config,
                    &weights,
                    l,
                    &mut hidden,
                    sub.ranges(),
                    &mut scratch,
                )?;
                self.meter.free(MemCategory::LayerWeights, wbytes);
            }
            let sub_scores = score_sequences(&self.config, &self.head, &hidden, sub.ranges())?;
            self.meter.free(MemCategory::Intermediate, inter);
            self.meter.free(MemCategory::HiddenStates, hidden_bytes);
            for (i, s) in ids.iter().zip(sub_scores) {
                scores[*i] = s;
            }
            start = end;
        }
        Ok(crate::RankOutcome::from_scores(scores, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HfVanilla, Reranker};
    use prism_model::{Model, ModelArch};
    use prism_workload::WorkloadGenerator;

    fn fixture(layers: usize, tag: &str) -> (Model, std::path::PathBuf) {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, layers);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("prism-offload-{}-{tag}.prsm", std::process::id()));
        model.write_container(&path).unwrap();
        (model, path)
    }

    fn request(model: &Model, n: usize) -> SequenceBatch {
        let profile = prism_workload::dataset::dataset_by_name("msmarco").unwrap();
        let gen = WorkloadGenerator::new(profile, model.config.vocab_size, model.config.max_seq, 5);
        SequenceBatch::new(&gen.request(0, n).sequences()).unwrap()
    }

    #[test]
    fn offload_is_bit_exact_with_vanilla() {
        let (model, path) = fixture(4, "exact");
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 8);
        let mut vanilla =
            HfVanilla::new(&container, model.config.clone(), 4, MemoryMeter::new()).unwrap();
        let mut offload = HfOffload::new(
            &container,
            model.config.clone(),
            4,
            Throttle::unlimited(),
            MemoryMeter::new(),
        )
        .unwrap();
        let a = vanilla.rerank(&batch, 8).unwrap();
        let b = offload.rerank(&batch, 8).unwrap();
        assert_eq!(a.scores, b.scores);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loads_layers_once_per_micro_batch() {
        let (model, path) = fixture(3, "loads");
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 8);
        let mut offload = HfOffload::new(
            &container,
            model.config.clone(),
            4, // 2 micro-batches
            Throttle::unlimited(),
            MemoryMeter::new(),
        )
        .unwrap();
        offload.rerank(&batch, 2).unwrap();
        // 3 layers x 2 micro-batches = 6 loads — the redundant I/O PRISM's
        // monolithic batch avoids.
        assert_eq!(offload.stats().layer_loads, 6);
        assert!(offload.stats().bytes_loaded > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn layer_weight_peak_is_one_layer() {
        let (model, path) = fixture(5, "peak");
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 4);
        let meter = MemoryMeter::new();
        let mut offload = HfOffload::new(
            &container,
            model.config.clone(),
            4,
            Throttle::unlimited(),
            meter.clone(),
        )
        .unwrap();
        offload.rerank(&batch, 2).unwrap();
        let one_layer = model.weights.layers[0].size_bytes() as u64;
        let peak = meter.peak(MemCategory::LayerWeights);
        assert!(
            peak <= one_layer + one_layer / 8,
            "peak {peak} should be ~one layer {one_layer}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn throttled_offload_records_load_time() {
        let (model, path) = fixture(3, "throttle");
        let container = Container::open(&path).unwrap();
        let batch = request(&model, 4);
        let mut offload = HfOffload::new(
            &container,
            model.config.clone(),
            4,
            Throttle::bandwidth(4 << 20), // 4 MiB/s
            MemoryMeter::new(),
        )
        .unwrap();
        offload.rerank(&batch, 2).unwrap();
        let stats = offload.stats();
        // Layer blobs are ~10 KiB each at test scale; 3 loads at 4 MiB/s
        // must take measurable time.
        assert!(
            stats.load_micros > 1_000,
            "load_micros {}",
            stats.load_micros
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quant_container_variant_works() {
        let (model, path) = fixture(3, "quant");
        let qmodel = model.quantized().unwrap();
        let mut qpath = std::env::temp_dir();
        qpath.push(format!("prism-offload-q-{}.prsm", std::process::id()));
        qmodel.write_container(&qpath).unwrap();
        let qcontainer = Container::open(&qpath).unwrap();
        let batch = request(&model, 6);
        let mut q = HfOffload::new(
            &qcontainer,
            qmodel.config.clone(),
            6,
            Throttle::unlimited(),
            MemoryMeter::new(),
        )
        .unwrap()
        .with_name("HF Quant");
        assert_eq!(q.name(), "HF Quant");
        let out = q.rerank(&batch, 3).unwrap();
        assert_eq!(out.ranked.len(), 3);
        // Quantized layer loads move fewer bytes than dense.
        let dense_layer = model.weights.layers[0].to_bytes().len() as u64;
        let quant_bytes_per_load = q.stats().bytes_loaded / q.stats().layer_loads;
        assert!(quant_bytes_per_load * 2 < dense_layer);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&qpath).unwrap();
    }
}
