//! The inference systems PRISM is evaluated against (§6.1), running the
//! same real mini models:
//!
//! * [`HfVanilla`] — vanilla HuggingFace-Transformers-style inference: all
//!   weights resident, the candidate set split into fixed micro-batches
//!   (footnote 1 of the paper), full-depth forward for every candidate.
//! * [`HfOffload`] — HF + Accelerate disk offloading: embedding and head
//!   stay resident, every transformer layer is synchronously loaded from
//!   the weight container right before it executes, once per micro-batch —
//!   no overlap, which is exactly the inefficiency §4.2 removes.
//! * Quant variants — the same runners over a container whose layer
//!   matrices are 4-bit quantized (`HF Quant`), and the PRISM engine over
//!   that container (`PRISM Quant`).
//!
//! All systems implement [`Reranker`], so microbenchmarks and the §6.3
//! applications swap them freely.

pub mod offload;
pub mod traits;
pub mod vanilla;

pub use offload::HfOffload;
pub use traits::{RankOutcome, Reranker};
pub use vanilla::HfVanilla;

pub use prism_core::{PrismError, Result};
