//! The common interface all compared systems implement.

use prism_core::{PrismEngine, Result};
use prism_model::SequenceBatch;

/// Result of one reranking call.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutcome {
    /// Top-K candidate indices with scores, best first.
    pub ranked: Vec<(usize, f32)>,
    /// Last known score per input candidate.
    pub scores: Vec<f32>,
}

impl RankOutcome {
    /// Candidate ids of the top-K in rank order.
    pub fn top_ids(&self) -> Vec<usize> {
        self.ranked.iter().map(|&(i, _)| i).collect()
    }

    /// Builds an outcome by fully ranking `scores` and keeping `k`.
    pub fn from_scores(scores: Vec<f32>, k: usize) -> RankOutcome {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let ranked = idx.into_iter().take(k).map(|i| (i, scores[i])).collect();
        RankOutcome { ranked, scores }
    }
}

/// A system that selects the top-K candidates of a packed batch.
pub trait Reranker {
    /// Human-readable system name (e.g. `"HF"`, `"PRISM"`).
    fn name(&self) -> &str;

    /// Ranks the batch and returns the top-`k`.
    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> Result<RankOutcome>;
}

impl Reranker for PrismEngine {
    fn name(&self) -> &str {
        "PRISM"
    }

    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> Result<RankOutcome> {
        let sel = self.select_top_k(batch, k)?;
        Ok(RankOutcome {
            ranked: sel.ranked.iter().map(|r| (r.id, r.score)).collect(),
            scores: sel.last_scores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_ranks_descending() {
        let o = RankOutcome::from_scores(vec![0.1, 0.9, 0.5], 2);
        assert_eq!(o.top_ids(), vec![1, 2]);
        assert_eq!(o.ranked[0], (1, 0.9));
        assert_eq!(o.scores.len(), 3);
    }

    #[test]
    fn k_larger_than_n_truncates() {
        let o = RankOutcome::from_scores(vec![0.3, 0.2], 10);
        assert_eq!(o.ranked.len(), 2);
    }
}
