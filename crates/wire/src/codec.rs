//! The PRISM wire format: length-prefixed binary frames.
//!
//! ```text
//!  [u32 len LE][u8 msg_type][payload ...]
//!   └── len = 1 + payload bytes, bounded by MAX_FRAME ──┘
//! ```
//!
//! Design rules, enforced here and locked in by the robustness
//! proptests (`tests/wire_codec_props.rs`):
//!
//! * **Typed failures, never panics.** Every malformed input — truncated
//!   frame, unknown message type, oversized length, corrupt payload —
//!   decodes to the matching [`WireError`] variant. No `unwrap` on wire
//!   bytes.
//! * **No over-allocation.** Every count read from the wire is validated
//!   against the bytes actually present *before* any buffer is sized
//!   from it, so a hostile 4-byte header cannot make the server reserve
//!   gigabytes.
//! * **Bit-exact scores.** `f32` scores travel as their IEEE-754 bit
//!   patterns, so a selection read off the wire compares bit-identical
//!   to the server-side computation — the property the loopback
//!   conformance suite pins.

use std::io::{Read, Write};

use prism_api::{Progress, SelectionOutcome, ServiceError};
use prism_core::{
    ComputePrecision, EngineTrace, PartialMode, Priority, PruneMode, RankedCandidate,
    RequestOptions, Selection, SemCacheMode, SpillPrecision,
};
use prism_model::SequenceBatch;

/// Protocol version carried in the `Hello` handshake.
///
/// Version history: 1 = initial protocol; 2 = `Submit` options grew the
/// trailing semantic-result-cache mode byte (`SemCacheMode`); 3 =
/// `Submit` options grew the degraded-mode byte (`PartialMode`) and
/// `Result` outcomes carry the selection's coverage fraction.
pub const WIRE_VERSION: u32 = 3;

/// Hard ceiling on one frame's byte length (type byte + payload). Large
/// enough for a maximal candidate batch, small enough that a hostile
/// length prefix cannot balloon server memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Everything that can go wrong reading or writing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The frame (or a field inside it) ended before its declared
    /// length.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`] (or is zero).
    Oversized {
        /// The offending declared length.
        len: u64,
    },
    /// The message-type byte is not part of the protocol.
    UnknownType(u8),
    /// The payload violates the format (bad UTF-8, bad enum tag,
    /// trailing bytes, inconsistent counts).
    Corrupt(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} outside (0, {MAX_FRAME}]")
            }
            WireError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// One protocol message (either direction).
#[derive(Debug, Clone)]
pub enum Message {
    /// Client → server: opens a session.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u32,
        /// Session (tenant) key submissions run under.
        session: String,
    },
    /// Client → server: submits one selection request.
    Submit {
        /// Client-assigned correlation id (unique per connection).
        request_id: u64,
        /// Per-request selection parameters.
        options: RequestOptions,
        /// The candidate batch.
        batch: SequenceBatch,
    },
    /// Client → server: requests cancellation of an in-flight submit.
    Cancel {
        /// The submit's correlation id.
        request_id: u64,
    },
    /// Client → server: liveness probe.
    Ping {
        /// Echo payload.
        nonce: u64,
    },
    /// Server → client: handshake acknowledgement.
    HelloAck {
        /// Server protocol version.
        version: u32,
    },
    /// Server → client: the submit was admitted.
    Accepted {
        /// The submit's correlation id.
        request_id: u64,
        /// Server-assigned submission ticket.
        ticket: u64,
    },
    /// Server → client: layer-granularity progress of an in-flight
    /// request.
    Progress {
        /// The submit's correlation id.
        request_id: u64,
        /// Aggregated progress snapshot.
        progress: Progress,
    },
    /// Server → client: the request finished with a selection.
    Result {
        /// The submit's correlation id.
        request_id: u64,
        /// The outcome (scores bit-exact).
        outcome: Box<SelectionOutcome>,
    },
    /// Server → client: the request failed with a typed service error.
    /// `request_id == 0` signals a connection-level failure.
    Error {
        /// The submit's correlation id (0 = connection-level).
        request_id: u64,
        /// The typed error.
        error: ServiceError,
    },
    /// Server → client: answer to [`Message::Ping`].
    Pong {
        /// Echoed payload.
        nonce: u64,
    },
}

const T_HELLO: u8 = 0x01;
const T_SUBMIT: u8 = 0x02;
const T_CANCEL: u8 = 0x03;
const T_PING: u8 = 0x04;
const T_HELLO_ACK: u8 = 0x81;
const T_ACCEPTED: u8 = 0x82;
const T_PROGRESS: u8 = 0x83;
const T_RESULT: u8 = 0x84;
const T_ERROR: u8 = 0x85;
const T_PONG: u8 = 0x86;

// ---------------------------------------------------------------- encode

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
    fn opt_f32(&mut self, v: Option<f32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f32_bits(x);
            }
            None => self.u8(0),
        }
    }

    fn options(&mut self, o: &RequestOptions) {
        self.u32(o.k as u32);
        self.opt_u64(o.tag);
        self.opt_f32(o.dispersion_threshold);
        match o.mode {
            None => self.u8(0),
            Some(PruneMode::TopKOnly) => self.u8(1),
            Some(PruneMode::ExactOrder) => self.u8(2),
        }
        match o.pruning {
            None => self.u8(0),
            Some(false) => self.u8(1),
            Some(true) => self.u8(2),
        }
        self.u8(match o.priority {
            Priority::Bulk => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        });
        self.opt_u64(o.deadline_us);
        self.u8(match o.spill_precision {
            SpillPrecision::Int8 => 0,
            SpillPrecision::F32 => 1,
        });
        self.u8(match o.compute_precision {
            ComputePrecision::F32 => 0,
            ComputePrecision::Int8 => 1,
        });
        self.u8(match o.semcache {
            SemCacheMode::Off => 0,
            SemCacheMode::VerifyAndFallback => 1,
            SemCacheMode::Aggressive => 2,
        });
        self.u8(match o.on_partial {
            PartialMode::Fail => 0,
            PartialMode::Partial => 1,
        });
    }

    fn batch(&mut self, b: &SequenceBatch) {
        self.u32(b.num_sequences() as u32);
        for i in 0..b.num_sequences() {
            let seq = b.sequence(i);
            self.u32(seq.len() as u32);
            for &t in seq {
                self.u32(t);
            }
        }
    }

    fn outcome(&mut self, o: &SelectionOutcome) {
        self.u64(o.ticket);
        self.u64(o.queued_us);
        self.u64(o.service_us);
        self.u32(o.batch_size as u32);
        self.bool(o.served_from_cache);
        let sel = &o.selection;
        self.u32(sel.ranked.len() as u32);
        for r in &sel.ranked {
            self.u64(r.id as u64);
            self.f32_bits(r.score);
            self.u32(r.decided_at_layer as u32);
        }
        self.u32(sel.last_scores.len() as u32);
        for &s in &sel.last_scores {
            self.f32_bits(s);
        }
        self.f32_bits(sel.coverage);
        // Trace summary: the routing events and score trace are
        // server-side diagnostics; the wire carries the conformance
        // surface (ranked + last_scores, both bit-exact) plus the cheap
        // execution counters.
        self.u32(sel.trace.active_per_layer.len() as u32);
        for &a in &sel.trace.active_per_layer {
            self.u32(a as u32);
        }
        self.u32(sel.trace.executed_layers as u32);
        self.u64(sel.trace.spill_bytes);
    }

    fn error(&mut self, e: &ServiceError) {
        match e {
            ServiceError::Backpressure {
                capacity,
                queue_depth,
                retry_after,
            } => {
                self.u8(1);
                self.u32(*capacity as u32);
                self.u32(*queue_depth as u32);
                self.u64(retry_after.as_micros() as u64);
            }
            ServiceError::DeadlineExceeded => self.u8(2),
            ServiceError::Cancelled => self.u8(3),
            ServiceError::ShuttingDown => self.u8(4),
            ServiceError::Disconnected => self.u8(5),
            ServiceError::QuotaExceeded { tenant, limit } => {
                self.u8(6);
                self.string(tenant);
                self.u32(*limit as u32);
            }
            ServiceError::ShardFailure(s) => {
                self.u8(7);
                self.string(s);
            }
            ServiceError::Engine(s) => {
                self.u8(8);
                self.string(s);
            }
            ServiceError::Config(s) => {
                self.u8(9);
                self.string(s);
            }
        }
    }
}

/// Encodes a message to its frame body: `[u8 msg_type][payload]` (the
/// length prefix is added by [`write_frame`]).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    match msg {
        Message::Hello { version, session } => {
            e.u8(T_HELLO);
            e.u32(*version);
            e.string(session);
        }
        Message::Submit {
            request_id,
            options,
            batch,
        } => {
            e.u8(T_SUBMIT);
            e.u64(*request_id);
            e.options(options);
            e.batch(batch);
        }
        Message::Cancel { request_id } => {
            e.u8(T_CANCEL);
            e.u64(*request_id);
        }
        Message::Ping { nonce } => {
            e.u8(T_PING);
            e.u64(*nonce);
        }
        Message::HelloAck { version } => {
            e.u8(T_HELLO_ACK);
            e.u32(*version);
        }
        Message::Accepted { request_id, ticket } => {
            e.u8(T_ACCEPTED);
            e.u64(*request_id);
            e.u64(*ticket);
        }
        Message::Progress {
            request_id,
            progress,
        } => {
            e.u8(T_PROGRESS);
            e.u64(*request_id);
            e.u32(progress.layers_gated as u32);
            e.u32(progress.layers_forwarded as u32);
            e.u32(progress.candidates_active as u32);
            e.u32(progress.candidates_accepted as u32);
            e.u32(progress.candidates_pruned as u32);
        }
        Message::Result {
            request_id,
            outcome,
        } => {
            e.u8(T_RESULT);
            e.u64(*request_id);
            e.outcome(outcome);
        }
        Message::Error { request_id, error } => {
            e.u8(T_ERROR);
            e.u64(*request_id);
            e.error(error);
        }
        Message::Pong { nonce } => {
            e.u8(T_PONG);
            e.u64(*nonce);
        }
    }
    e.buf
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn f32_bits(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::Corrupt(format!("bool tag {v}"))),
        }
    }
    /// A count whose elements each occupy at least `elem_bytes` on the
    /// wire: validated against the bytes actually present before any
    /// allocation is sized from it.
    fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(WireError::Corrupt(format!(
                "{what} count {n} exceeds frame ({} bytes left)",
                self.remaining()
            )));
        }
        Ok(n)
    }
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1, "string")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("string not UTF-8".into()))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(WireError::Corrupt(format!("option tag {v}"))),
        }
    }
    fn opt_f32(&mut self) -> Result<Option<f32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32_bits()?)),
            v => Err(WireError::Corrupt(format!("option tag {v}"))),
        }
    }

    fn options(&mut self) -> Result<RequestOptions, WireError> {
        let k = self.u32()? as usize;
        if k == 0 {
            return Err(WireError::Corrupt("k must be >= 1".into()));
        }
        let tag = self.opt_u64()?;
        let dispersion_threshold = self.opt_f32()?;
        let mode = match self.u8()? {
            0 => None,
            1 => Some(PruneMode::TopKOnly),
            2 => Some(PruneMode::ExactOrder),
            v => return Err(WireError::Corrupt(format!("mode tag {v}"))),
        };
        let pruning = match self.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            v => return Err(WireError::Corrupt(format!("pruning tag {v}"))),
        };
        let priority = match self.u8()? {
            0 => Priority::Bulk,
            1 => Priority::Normal,
            2 => Priority::High,
            v => return Err(WireError::Corrupt(format!("priority tag {v}"))),
        };
        let deadline_us = self.opt_u64()?;
        let spill_precision = match self.u8()? {
            0 => SpillPrecision::Int8,
            1 => SpillPrecision::F32,
            v => return Err(WireError::Corrupt(format!("spill tag {v}"))),
        };
        let compute_precision = match self.u8()? {
            0 => ComputePrecision::F32,
            1 => ComputePrecision::Int8,
            v => return Err(WireError::Corrupt(format!("compute tag {v}"))),
        };
        let semcache = match self.u8()? {
            0 => SemCacheMode::Off,
            1 => SemCacheMode::VerifyAndFallback,
            2 => SemCacheMode::Aggressive,
            v => return Err(WireError::Corrupt(format!("semcache tag {v}"))),
        };
        let on_partial = match self.u8()? {
            0 => PartialMode::Fail,
            1 => PartialMode::Partial,
            v => return Err(WireError::Corrupt(format!("on-partial tag {v}"))),
        };
        Ok(RequestOptions {
            k,
            tag,
            dispersion_threshold,
            mode,
            pruning,
            priority,
            deadline_us,
            spill_precision,
            compute_precision,
            semcache,
            on_partial,
        })
    }

    fn batch(&mut self) -> Result<SequenceBatch, WireError> {
        // Each sequence costs at least 4 bytes (its length prefix) plus
        // 4 per token — both counts bounded by the frame before any Vec
        // is reserved.
        let n = self.count(4, "sequence")?;
        let mut sequences = Vec::with_capacity(n);
        for _ in 0..n {
            let len = self.count(4, "token")?;
            let bytes = self.take(len * 4)?;
            let mut seq = Vec::with_capacity(len);
            for c in bytes.chunks_exact(4) {
                seq.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            }
            sequences.push(seq);
        }
        SequenceBatch::new(&sequences).map_err(|e| WireError::Corrupt(format!("batch: {e}")))
    }

    fn outcome(&mut self) -> Result<SelectionOutcome, WireError> {
        let ticket = self.u64()?;
        let queued_us = self.u64()?;
        let service_us = self.u64()?;
        let batch_size = self.u32()? as usize;
        let served_from_cache = self.bool()?;
        let n_ranked = self.count(16, "ranked")?;
        let mut ranked = Vec::with_capacity(n_ranked);
        for _ in 0..n_ranked {
            let id = self.u64()? as usize;
            let score = self.f32_bits()?;
            let decided_at_layer = self.u32()? as usize;
            ranked.push(RankedCandidate {
                id,
                score,
                decided_at_layer,
            });
        }
        let n_scores = self.count(4, "score")?;
        let mut last_scores = Vec::with_capacity(n_scores);
        for _ in 0..n_scores {
            last_scores.push(self.f32_bits()?);
        }
        let coverage = self.f32_bits()?;
        if !(0.0..=1.0).contains(&coverage) {
            return Err(WireError::Corrupt(format!("coverage {coverage}")));
        }
        let n_active = self.count(4, "active-per-layer")?;
        let mut active_per_layer = Vec::with_capacity(n_active);
        for _ in 0..n_active {
            active_per_layer.push(self.u32()? as usize);
        }
        let executed_layers = self.u32()? as usize;
        let spill_bytes = self.u64()?;
        let trace = EngineTrace {
            active_per_layer,
            executed_layers,
            spill_bytes,
            ..Default::default()
        };
        Ok(SelectionOutcome {
            selection: Selection {
                ranked,
                last_scores,
                coverage,
                trace,
            },
            ticket,
            queued_us,
            service_us,
            batch_size,
            served_from_cache,
        })
    }

    fn error(&mut self) -> Result<ServiceError, WireError> {
        Ok(match self.u8()? {
            1 => ServiceError::Backpressure {
                capacity: self.u32()? as usize,
                queue_depth: self.u32()? as usize,
                retry_after: std::time::Duration::from_micros(self.u64()?),
            },
            2 => ServiceError::DeadlineExceeded,
            3 => ServiceError::Cancelled,
            4 => ServiceError::ShuttingDown,
            5 => ServiceError::Disconnected,
            6 => ServiceError::QuotaExceeded {
                tenant: self.string()?,
                limit: self.u32()? as usize,
            },
            7 => ServiceError::ShardFailure(self.string()?),
            8 => ServiceError::Engine(self.string()?),
            9 => ServiceError::Config(self.string()?),
            v => return Err(WireError::Corrupt(format!("error tag {v}"))),
        })
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Corrupt(format!(
                "{} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

/// Decodes one frame body (`[u8 msg_type][payload]`) into a message.
/// Total function of the input bytes: malformed input returns the
/// matching [`WireError`], never panics, never over-allocates.
pub fn decode_message(body: &[u8]) -> Result<Message, WireError> {
    let mut d = Dec { buf: body };
    let msg_type = d.u8()?;
    let msg = match msg_type {
        T_HELLO => Message::Hello {
            version: d.u32()?,
            session: d.string()?,
        },
        T_SUBMIT => Message::Submit {
            request_id: d.u64()?,
            options: d.options()?,
            batch: d.batch()?,
        },
        T_CANCEL => Message::Cancel {
            request_id: d.u64()?,
        },
        T_PING => Message::Ping { nonce: d.u64()? },
        T_HELLO_ACK => Message::HelloAck { version: d.u32()? },
        T_ACCEPTED => Message::Accepted {
            request_id: d.u64()?,
            ticket: d.u64()?,
        },
        T_PROGRESS => Message::Progress {
            request_id: d.u64()?,
            progress: Progress {
                layers_gated: d.u32()? as usize,
                layers_forwarded: d.u32()? as usize,
                candidates_active: d.u32()? as usize,
                candidates_accepted: d.u32()? as usize,
                candidates_pruned: d.u32()? as usize,
            },
        },
        T_RESULT => Message::Result {
            request_id: d.u64()?,
            outcome: Box::new(d.outcome()?),
        },
        T_ERROR => Message::Error {
            request_id: d.u64()?,
            error: d.error()?,
        },
        T_PONG => Message::Pong { nonce: d.u64()? },
        t => return Err(WireError::UnknownType(t)),
    };
    d.finish()?;
    Ok(msg)
}

/// Writes one framed message: `[u32 len LE]` + body.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    let body = encode_message(msg);
    if body.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: body.len() as u64,
        });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one framed message. [`WireError::Closed`] means the peer hung
/// up cleanly at a frame boundary; EOF *inside* a frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Message, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Oversized { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut body) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            e.into()
        });
    }
    decode_message(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut &buf[..]).unwrap()
    }

    #[test]
    fn submit_round_trips_options_and_batch() {
        let batch = SequenceBatch::new(&[vec![1, 2, 3], vec![9]]).unwrap();
        let options = RequestOptions {
            k: 3,
            tag: Some(42),
            dispersion_threshold: Some(0.25),
            mode: Some(PruneMode::ExactOrder),
            pruning: Some(false),
            priority: Priority::High,
            deadline_us: Some(5_000),
            spill_precision: SpillPrecision::F32,
            compute_precision: ComputePrecision::Int8,
            semcache: SemCacheMode::VerifyAndFallback,
            on_partial: PartialMode::Partial,
        };
        let got = round_trip(&Message::Submit {
            request_id: 7,
            options: options.clone(),
            batch: batch.clone(),
        });
        match got {
            Message::Submit {
                request_id,
                options: o,
                batch: b,
            } => {
                assert_eq!(request_id, 7);
                assert_eq!(o, options);
                assert_eq!(b.num_sequences(), 2);
                assert_eq!(b.sequence(0), &[1, 2, 3]);
                assert_eq!(b.sequence(1), &[9]);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn result_scores_bit_exact() {
        let outcome = SelectionOutcome {
            selection: Selection {
                ranked: vec![RankedCandidate {
                    id: 3,
                    score: 0.1 + 0.2, // deliberately non-representable
                    decided_at_layer: 4,
                }],
                last_scores: vec![f32::MIN_POSITIVE, -0.0, 3.25],
                coverage: 0.75,
                trace: EngineTrace {
                    active_per_layer: vec![5, 3, 1],
                    executed_layers: 3,
                    spill_bytes: 77,
                    ..Default::default()
                },
            },
            ticket: 9,
            queued_us: 10,
            service_us: 20,
            batch_size: 4,
            served_from_cache: false,
        };
        let got = round_trip(&Message::Result {
            request_id: 1,
            outcome: Box::new(outcome.clone()),
        });
        match got {
            Message::Result { outcome: o, .. } => {
                assert_eq!(o.selection.ranked.len(), 1);
                assert_eq!(
                    o.selection.ranked[0].score.to_bits(),
                    outcome.selection.ranked[0].score.to_bits()
                );
                let got_bits: Vec<u32> = o
                    .selection
                    .last_scores
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                let want_bits: Vec<u32> = outcome
                    .selection
                    .last_scores
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                assert_eq!(got_bits, want_bits);
                assert_eq!(o.selection.coverage, 0.75);
                assert_eq!(o.selection.trace.active_per_layer, vec![5, 3, 1]);
                assert_eq!(o.selection.trace.spill_bytes, 77);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_oversized_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Ping { nonce: 5 }).unwrap();
        // Cut mid-payload: typed Truncated, not a panic.
        assert!(matches!(
            read_frame(&mut &buf[..buf.len() - 3]),
            Err(WireError::Truncated)
        ));
        // Cut mid-header.
        assert!(matches!(
            read_frame(&mut &buf[..2]),
            Err(WireError::Truncated)
        ));
        // Clean EOF at the boundary.
        assert!(matches!(read_frame(&mut &buf[..0]), Err(WireError::Closed)));
        // Hostile length prefix.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_typed() {
        assert!(matches!(
            decode_message(&[0x7f]),
            Err(WireError::UnknownType(0x7f))
        ));
        let mut body = encode_message(&Message::Cancel { request_id: 1 });
        body.push(0);
        assert!(matches!(decode_message(&body), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A Submit claiming u32::MAX sequences in a tiny frame must be
        // rejected by the count-vs-remaining check, not attempted.
        let mut e = Enc { buf: Vec::new() };
        e.options(&RequestOptions::top_k(1));
        let mut body = vec![T_SUBMIT];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&e.buf);
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // sequence count
        assert!(matches!(decode_message(&body), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn service_errors_round_trip() {
        for err in [
            ServiceError::Backpressure {
                capacity: 8,
                queue_depth: 8,
                retry_after: std::time::Duration::from_micros(1234),
            },
            ServiceError::DeadlineExceeded,
            ServiceError::Cancelled,
            ServiceError::ShuttingDown,
            ServiceError::Disconnected,
            ServiceError::QuotaExceeded {
                tenant: "tenant-a".into(),
                limit: 2,
            },
            ServiceError::ShardFailure("shard 1 dead".into()),
            ServiceError::Engine("boom".into()),
            ServiceError::Config("bad".into()),
        ] {
            let got = round_trip(&Message::Error {
                request_id: 3,
                error: err.clone(),
            });
            match got {
                Message::Error { error, .. } => {
                    assert_eq!(format!("{error:?}"), format!("{err:?}"))
                }
                other => panic!("wrong message: {other:?}"),
            }
        }
    }
}
