//! The out-of-process twin of `prism-serve`'s `RemoteService`: a
//! [`WireClient`] speaks the wire protocol over TCP and implements
//! [`SelectionService`], so facade callers swap between in-process and
//! networked serving without touching call sites — same non-blocking
//! [`SelectionHandle`]s, same typed errors, same layer-granularity
//! progress, bit-identical selections.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prism_api::{
    admission_deadline, Completion, RetryPolicy, SelectionHandle, SelectionOutcome,
    SelectionService, ServiceError,
};
use prism_core::{CancelToken, ProgressUpdate, RequestOptions};
use prism_model::SequenceBatch;

use crate::codec::{read_frame, write_frame, Message, WireError, WIRE_VERSION};

/// How often the cancel pump scans for locally-cancelled handles whose
/// Cancel frame has not been sent yet.
const CANCEL_SCAN_INTERVAL: Duration = Duration::from_micros(500);

struct ClientPending {
    completion: Completion,
    cancel: CancelToken,
    cancel_sent: bool,
}

struct ClientShared {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, ClientPending>>,
    closed: AtomicBool,
    /// Highest pong nonce observed (monotonic: nonces are issued from
    /// the request counter).
    pong: Mutex<u64>,
    pong_ready: Condvar,
}

impl ClientShared {
    fn send(&self, msg: &Message) -> Result<(), WireError> {
        let mut stream = self.writer.lock().expect("wire client writer lock");
        write_frame(&mut *stream, msg)
    }

    /// Fails every outstanding request and marks the connection dead.
    fn disconnect(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut map = self.pending.lock().expect("wire client pending lock");
        for (_, mut entry) in map.drain() {
            entry.completion.complete(Err(ServiceError::Disconnected));
        }
        // Wake any ping() waiter so it can observe the closed flag.
        self.pong_ready.notify_all();
    }
}

/// A connected wire-protocol client bound to one session.
pub struct WireClient {
    shared: Arc<ClientShared>,
    next_id: AtomicU64,
    reader_thread: Option<JoinHandle<()>>,
    cancel_thread: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Connects to a [`crate::WireServer`] at `addr` and performs the
    /// `Hello`/`HelloAck` handshake under `session` (the tenant key all
    /// submissions run under).
    pub fn connect(addr: &str, session: impl Into<String>) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        Self::finish_connect(stream, session.into())
    }

    /// [`WireClient::connect`] with an overall deadline on connection
    /// establishment *and* the handshake round-trip, surfacing typed
    /// facade errors: a budget overrun is
    /// [`ServiceError::DeadlineExceeded`], transport failures are
    /// [`ServiceError::Disconnected`], protocol violations are
    /// [`ServiceError::Config`]. Established connections read without a
    /// timeout (results can legitimately take long); pair with
    /// [`WireClient::ping`] for liveness bounds.
    pub fn connect_timeout(
        addr: &str,
        session: impl Into<String>,
        timeout: Duration,
    ) -> Result<Self, ServiceError> {
        use std::net::ToSocketAddrs;
        let deadline = Instant::now() + timeout;
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Config(format!("resolving {addr}: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServiceError::Config(format!("{addr} resolves to nothing")));
        }
        let mut stream = None;
        for a in &addrs {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServiceError::DeadlineExceeded);
            }
            match TcpStream::connect_timeout(a, remaining) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                    return Err(ServiceError::DeadlineExceeded);
                }
                Err(_) => {}
            }
        }
        let stream = stream.ok_or(ServiceError::Disconnected)?;
        // Bound the handshake round-trip by the remaining budget; the
        // read timeout is a socket option shared by every clone, so it
        // is cleared again inside `finish_connect` before the reader
        // thread takes over.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ServiceError::DeadlineExceeded);
        }
        stream.set_read_timeout(Some(remaining)).ok();
        match Self::finish_connect(stream, session.into()) {
            Ok(client) => Ok(client),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(ServiceError::DeadlineExceeded);
                }
                Err(match e {
                    WireError::Corrupt(why) => ServiceError::Config(why),
                    _ => ServiceError::Disconnected,
                })
            }
        }
    }

    fn finish_connect(stream: TcpStream, session: String) -> Result<Self, WireError> {
        stream.set_nodelay(true).ok();
        let mut handshake = stream.try_clone()?;
        write_frame(
            &mut handshake,
            &Message::Hello {
                version: WIRE_VERSION,
                session,
            },
        )?;
        match read_frame(&mut handshake)? {
            Message::HelloAck { version } if version == WIRE_VERSION => {}
            Message::HelloAck { version } => {
                return Err(WireError::Corrupt(format!(
                    "server speaks protocol version {version}, client speaks {WIRE_VERSION}"
                )));
            }
            Message::Error { error, .. } => {
                return Err(WireError::Corrupt(format!("handshake rejected: {error}")));
            }
            other => {
                return Err(WireError::Corrupt(format!(
                    "expected HelloAck, got {other:?}"
                )));
            }
        }
        // The handshake's read timeout (if any) must not apply to the
        // reader thread: a legitimate selection can take arbitrarily
        // long, and a spurious timeout would tear the connection down.
        stream.set_read_timeout(None).ok();

        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            pong: Mutex::new(0),
            pong_ready: Condvar::new(),
        });
        let reader_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prism-wire-client-rx".into())
                .spawn(move || reader_loop(&shared, handshake))
                .map_err(|e| WireError::Io(format!("spawning client reader: {e}")))?
        };
        let cancel_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prism-wire-client-cx".into())
                .spawn(move || cancel_loop(&shared))
                .map_err(|e| WireError::Io(format!("spawning cancel pump: {e}")))?
        };
        Ok(WireClient {
            shared,
            next_id: AtomicU64::new(0),
            reader_thread: Some(reader_thread),
            cancel_thread: Some(cancel_thread),
        })
    }

    /// Whether the connection is still up.
    pub fn is_connected(&self) -> bool {
        !self.shared.closed.load(Ordering::SeqCst)
    }

    /// Round-trips a `Ping`; returns the measured latency, or a typed
    /// error if the connection is down or the server does not answer
    /// within `timeout`.
    pub fn ping(&self, timeout: Duration) -> Result<Duration, ServiceError> {
        if !self.is_connected() {
            return Err(ServiceError::Disconnected);
        }
        let nonce = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let t0 = Instant::now();
        self.shared
            .send(&Message::Ping { nonce })
            .map_err(|_| ServiceError::Disconnected)?;
        let deadline = t0 + timeout;
        let mut pong = self.shared.pong.lock().expect("pong lock");
        loop {
            if *pong >= nonce {
                return Ok(t0.elapsed());
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(ServiceError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::DeadlineExceeded);
            }
            let (next, _) = self
                .shared
                .pong_ready
                .wait_timeout(pong, deadline - now)
                .expect("pong lock");
            pong = next;
        }
    }

    /// Blocking submit-and-wait under a [`RetryPolicy`]: transient
    /// failures (backpressure — honoring the server's `retry_after`
    /// hint as a floor — and shard failures) are retried with
    /// decorrelated-jitter backoff until the policy's attempt cap or
    /// sleep budget runs out; terminal errors surface immediately.
    /// Returns the outcome plus the number of retries consumed, so
    /// callers can fold the count into their telemetry.
    pub fn select_with_retry(
        &self,
        batch: &SequenceBatch,
        options: &RequestOptions,
        policy: &RetryPolicy,
    ) -> (Result<SelectionOutcome, ServiceError>, u32) {
        let mut schedule = policy.schedule();
        loop {
            let err = match self.submit(batch.clone(), options.clone()) {
                Ok(handle) => match handle.wait() {
                    Ok(outcome) => return (Ok(outcome), schedule.retries()),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            match schedule.next_delay(&err) {
                Some(delay) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                None => return (Err(err), schedule.retries()),
            }
        }
    }
}

impl SelectionService for WireClient {
    /// Submits over the wire. The returned handle's ticket is the
    /// *client-side* correlation id (the server's ticket arrives in the
    /// `Accepted` frame and is carried on the outcome); everything else
    /// behaves exactly like the in-process backends — cancel flows back
    /// as a `Cancel` frame, progress streams in, and the outcome is
    /// consumed once.
    fn submit(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionHandle, ServiceError> {
        if !self.is_connected() {
            return Err(ServiceError::Disconnected);
        }
        // Fail fast locally on an already-expired deadline — the same
        // admission rule every backend applies (the server re-checks).
        let deadline = admission_deadline(&options, Instant::now())?;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (handle, completion) = SelectionHandle::channel(request_id, deadline);
        self.shared.pending.lock().expect("pending lock").insert(
            request_id,
            ClientPending {
                cancel: handle.cancel_token(),
                completion,
                cancel_sent: false,
            },
        );
        let sent = self.shared.send(&Message::Submit {
            request_id,
            options,
            batch,
        });
        if sent.is_err() {
            // Roll the registration back; the completion drops and the
            // handle reports Disconnected.
            self.shared
                .pending
                .lock()
                .expect("pending lock")
                .remove(&request_id);
            return Err(ServiceError::Disconnected);
        }
        Ok(handle)
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        // Closing the socket unblocks the reader thread.
        if let Ok(stream) = self.shared.writer.lock() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.reader_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.cancel_thread.take() {
            let _ = t.join();
        }
    }
}

fn reader_loop(shared: &Arc<ClientShared>, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream) {
            Ok(Message::Accepted { .. }) => {
                // The server ticket is informational; the outcome carries
                // it. Nothing to update client-side.
            }
            Ok(Message::Progress {
                request_id,
                progress,
            }) => {
                let map = shared.pending.lock().expect("pending lock");
                if let Some(entry) = map.get(&request_id) {
                    // Feed the aggregated snapshot through the handle's
                    // fold: fields map 1:1 onto a ProgressUpdate.
                    (entry.completion.progress_fn())(ProgressUpdate {
                        layer: progress.layers_gated.saturating_sub(1),
                        layers_forwarded: progress.layers_forwarded,
                        active: progress.candidates_active,
                        accepted: progress.candidates_accepted,
                        pruned: progress.candidates_pruned,
                    });
                }
            }
            Ok(Message::Result {
                request_id,
                outcome,
            }) => {
                let entry = shared
                    .pending
                    .lock()
                    .expect("pending lock")
                    .remove(&request_id);
                if let Some(mut entry) = entry {
                    entry.completion.complete(Ok(*outcome));
                }
            }
            Ok(Message::Error { request_id, error }) => {
                if request_id == 0 {
                    // Connection-level failure: everything outstanding
                    // dies with it.
                    shared.disconnect();
                    return;
                }
                let entry = shared
                    .pending
                    .lock()
                    .expect("pending lock")
                    .remove(&request_id);
                if let Some(mut entry) = entry {
                    entry.completion.complete(Err(error));
                }
            }
            Ok(Message::Pong { nonce }) => {
                let mut pong = shared.pong.lock().expect("pong lock");
                *pong = (*pong).max(nonce);
                drop(pong);
                shared.pong_ready.notify_all();
            }
            Ok(_) => {
                // Client-bound connections never receive client->server
                // messages; treat as protocol violation.
                shared.disconnect();
                return;
            }
            Err(_) => {
                shared.disconnect();
                return;
            }
        }
    }
}

/// Forwards local `handle.cancel()` calls to the server as `Cancel`
/// frames (once per request).
fn cancel_loop(shared: &Arc<ClientShared>) {
    while !shared.closed.load(Ordering::SeqCst) {
        let mut to_send = Vec::new();
        {
            let mut map = shared.pending.lock().expect("pending lock");
            for (&id, entry) in map.iter_mut() {
                if entry.cancel.is_cancelled() && !entry.cancel_sent {
                    entry.cancel_sent = true;
                    to_send.push(id);
                }
            }
        }
        for id in to_send {
            if shared.send(&Message::Cancel { request_id: id }).is_err() {
                shared.disconnect();
                return;
            }
        }
        std::thread::sleep(CANCEL_SCAN_INTERVAL);
    }
}
