//! The loopback TCP front-end over a [`PrismServer`].
//!
//! One thread accepts connections; each connection gets a *reader*
//! thread (frame parsing, admission, cancellation) and a *pump* thread
//! (streams progress and outcomes back). Submissions flow through the
//! same bounded queue, scheduler and (optional) shard set as in-process
//! callers — the wire layer adds transport, not semantics, which is how
//! the loopback conformance suite can demand bit-identical selections
//! through the socket.
//!
//! Error discipline mirrors the serving layer: admission failures
//! (backpressure, quota, expired deadline) come back as typed
//! [`Message::Error`] frames carrying the structured [`ServiceError`];
//! a malformed frame is answered with a connection-level error frame
//! (request id 0) and the connection is closed, because framing cannot
//! be resynchronized after corrupt bytes.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use prism_api::{Progress, SelectionHandle, SelectionOutcome, ServiceError};
use prism_serve::PrismServer;

use crate::codec::{read_frame, write_frame, Message, WireError, WIRE_VERSION};

/// How long the pump sleeps between sweeps over in-flight requests.
/// Short enough for layer-granularity progress to stream live, long
/// enough to stay invisible next to a forward pass.
const PUMP_INTERVAL: Duration = Duration::from_micros(200);

/// A TCP listener serving the PRISM wire protocol over a
/// [`PrismServer`].
pub struct WireServer {
    server: Arc<PrismServer>,
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts accepting connections over `server`.
    pub fn start(server: Arc<PrismServer>, addr: &str) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let closed = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let server = Arc::clone(&server);
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name("prism-wire-accept".into())
                .spawn(move || accept_loop(&listener, &server, &closed))
                .map_err(|e| WireError::Io(format!("spawning acceptor: {e}")))?
        };
        Ok(WireServer {
            server,
            addr,
            closed,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving backend.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// Stops accepting new connections and joins the acceptor. Existing
    /// connections finish their in-flight work (the backend server is
    /// shut down separately by its owner).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, server: &Arc<PrismServer>, closed: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if closed.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(server);
        let spawn = std::thread::Builder::new()
            .name("prism-wire-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &server);
            });
        let _ = spawn;
    }
}

/// In-flight state of one submitted request on a connection.
struct InFlight {
    handle: SelectionHandle,
    last_progress: Progress,
}

type PendingMap = Arc<Mutex<HashMap<u64, InFlight>>>;

/// Shared, serialized write side of a connection.
#[derive(Clone)]
struct WireWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl WireWriter {
    fn send(&self, msg: &Message) -> Result<(), WireError> {
        let mut stream = self.stream.lock().expect("wire writer lock");
        write_frame(&mut *stream, msg)
    }
}

fn handle_connection(stream: TcpStream, server: &Arc<PrismServer>) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let writer = WireWriter {
        stream: Arc::new(Mutex::new(stream)),
    };

    // ---- Handshake: Hello before anything else ----
    let session = match read_frame(&mut reader)? {
        Message::Hello { version, session } => {
            if version != WIRE_VERSION {
                writer.send(&Message::Error {
                    request_id: 0,
                    error: ServiceError::Config(format!(
                        "protocol version {version} unsupported (server speaks {WIRE_VERSION})"
                    )),
                })?;
                return Ok(());
            }
            writer.send(&Message::HelloAck {
                version: WIRE_VERSION,
            })?;
            session
        }
        _ => {
            writer.send(&Message::Error {
                request_id: 0,
                error: ServiceError::Config("expected Hello".into()),
            })?;
            return Ok(());
        }
    };
    let service = server.service(session);

    let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
    let reading = Arc::new(AtomicBool::new(true));
    let pump = {
        let pending = Arc::clone(&pending);
        let reading = Arc::clone(&reading);
        let writer = writer.clone();
        std::thread::Builder::new()
            .name("prism-wire-pump".into())
            .spawn(move || pump_loop(&pending, &reading, &writer))
            .map_err(|e| WireError::Io(format!("spawning pump: {e}")))?
    };

    // ---- Frame loop ----
    let result = read_loop(&mut reader, &writer, &service, &pending);
    reading.store(false, Ordering::SeqCst);
    // The client is gone (or the connection is poisoned): nobody will
    // read further results, so cancel what is still in flight. The pump
    // drains the handles — cancellation is observed at the next layer
    // boundary and releases spill state — then exits.
    for entry in pending.lock().expect("pending lock").values() {
        entry.handle.cancel();
    }
    let _ = pump.join();
    result
}

fn read_loop(
    reader: &mut TcpStream,
    writer: &WireWriter,
    service: &prism_serve::RemoteService,
    pending: &PendingMap,
) -> Result<(), WireError> {
    use prism_api::SelectionService;
    loop {
        match read_frame(reader) {
            Ok(Message::Submit {
                request_id,
                options,
                batch,
            }) => match service.submit(batch, options) {
                Ok(handle) => {
                    writer.send(&Message::Accepted {
                        request_id,
                        ticket: handle.ticket(),
                    })?;
                    pending.lock().expect("pending lock").insert(
                        request_id,
                        InFlight {
                            handle,
                            last_progress: Progress::default(),
                        },
                    );
                }
                Err(error) => {
                    writer.send(&Message::Error { request_id, error })?;
                }
            },
            Ok(Message::Cancel { request_id }) => {
                if let Some(entry) = pending.lock().expect("pending lock").get(&request_id) {
                    entry.handle.cancel();
                }
            }
            Ok(Message::Ping { nonce }) => {
                writer.send(&Message::Pong { nonce })?;
            }
            Ok(other) => {
                // Server-bound connections never receive server->client
                // messages or a second Hello.
                writer.send(&Message::Error {
                    request_id: 0,
                    error: ServiceError::Config(format!("unexpected message: {other:?}")),
                })?;
                return Ok(());
            }
            Err(WireError::Closed) => return Ok(()),
            Err(e @ (WireError::Truncated | WireError::Io(_))) => return Err(e),
            Err(e) => {
                // Malformed frame: framing cannot resync — answer with a
                // typed connection-level error and drop the connection.
                let _ = writer.send(&Message::Error {
                    request_id: 0,
                    error: ServiceError::Config(format!("malformed frame: {e}")),
                });
                return Err(e);
            }
        }
    }
}

/// Streams progress and outcomes for every in-flight request until the
/// reader has stopped *and* nothing is in flight.
fn pump_loop(pending: &PendingMap, reading: &Arc<AtomicBool>, writer: &WireWriter) {
    loop {
        let mut finished: Vec<(u64, Result<SelectionOutcome, ServiceError>)> = Vec::new();
        let mut progressed: Vec<(u64, Progress)> = Vec::new();
        {
            let mut map = pending.lock().expect("pending lock");
            let ids: Vec<u64> = map.keys().copied().collect();
            for id in ids {
                let entry = map.get_mut(&id).expect("id just listed");
                if let Some(outcome) = entry.handle.poll() {
                    finished.push((id, outcome));
                    map.remove(&id);
                    continue;
                }
                let p = entry.handle.progress();
                if p != entry.last_progress {
                    entry.last_progress = p;
                    progressed.push((id, p));
                }
            }
        }
        // Write outside the map lock: a slow client must not block
        // submission admission.
        let mut write_failed = false;
        for (request_id, progress) in progressed {
            if writer
                .send(&Message::Progress {
                    request_id,
                    progress,
                })
                .is_err()
            {
                write_failed = true;
            }
        }
        for (request_id, outcome) in finished {
            let msg = match outcome {
                Ok(outcome) => Message::Result {
                    request_id,
                    outcome: Box::new(outcome),
                },
                Err(error) => Message::Error { request_id, error },
            };
            if writer.send(&msg).is_err() {
                write_failed = true;
            }
        }
        let drained = pending.lock().expect("pending lock").is_empty();
        if write_failed || (drained && !reading.load(Ordering::SeqCst)) {
            return;
        }
        std::thread::sleep(PUMP_INTERVAL);
    }
}
