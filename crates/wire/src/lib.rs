//! `prism-wire`: out-of-process serving over a length-prefixed binary
//! wire protocol.
//!
//! ```text
//!  WireClient (SelectionService)            WireServer
//!      │  [u32 len][u8 type][payload]           │
//!      ├── Hello / HelloAck ────────────────────┤ handshake: version + session
//!      ├── Submit ──────────────────────────────┤ → PrismServer queue/scheduler
//!      │◀─ Accepted / Progress* / Result|Error ─┤   (optionally sharded)
//!      ├── Cancel ──────────────────────────────┤ → CancelToken, next boundary
//!      └── Ping / Pong ─────────────────────────┘
//! ```
//!
//! The transport adds no semantics: submissions flow through the same
//! bounded queue, priority scheduler, quotas and (optional) scatter-
//! gather shard set as in-process callers, and selections read off the
//! wire are bit-identical — scores travel as IEEE-754 bit patterns.
//! Malformed frames (truncated, corrupted, oversized, unknown type)
//! decode to typed [`WireError`]s, never panics, and never size an
//! allocation from an unvalidated length ([`codec`] documents the
//! rules; `tests/wire_codec_props.rs` enforces them by property).
//!
//! Everything is `std::net` — no external dependencies.

pub mod client;
pub mod codec;
pub mod server;

pub use client::WireClient;
pub use codec::{
    decode_message, encode_message, read_frame, write_frame, Message, WireError, MAX_FRAME,
    WIRE_VERSION,
};
pub use server::WireServer;
