//! Loopback conformance for the wire protocol: selections read off a
//! real TCP socket must be bit-identical to direct engine calls (plain
//! and sharded backends), faults and quota rejections must arrive as
//! the same typed errors in-process callers see, cancellation and
//! progress must flow both ways, and malformed frames must be answered
//! with a typed connection-level error — never a hang, never a panic.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_api::{SelectionService, ServiceError};
use prism_core::{EngineOptions, PrismEngine, RequestOptions, Selection};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{PrismServer, ServeConfig, ShardFault};
use prism_storage::Container;
use prism_wire::{
    read_frame, write_frame, Message, WireClient, WireError, WireServer, WIRE_VERSION,
};
use prism_workload::{dataset_by_name, WorkloadGenerator};

const K: usize = 4;

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-wire-it-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine_with(
    config: &ModelConfig,
    path: &std::path::Path,
    options: EngineOptions,
) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        options,
        MemoryMeter::new(),
    )
    .unwrap()
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    engine_with(config, path, EngineOptions::default())
}

/// A shard engine: weights resident (the stepping API's requirement),
/// embed cache off so shards share no hidden state.
fn resident_engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    engine_with(
        config,
        path,
        EngineOptions {
            streaming: false,
            embed_cache: false,
            ..Default::default()
        },
    )
}

fn batches(config: &ModelConfig, n: usize, candidates: usize) -> Vec<SequenceBatch> {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    (0..n)
        .map(|i| SequenceBatch::new(&generator.request(i as u64, candidates).sequences()).unwrap())
        .collect()
}

fn exact_bits(sel: &Selection) -> (Vec<(usize, u32, usize)>, Vec<u32>) {
    (
        sel.ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
            .collect(),
        sel.last_scores.iter().map(|s| s.to_bits()).collect(),
    )
}

/// Binds an ephemeral loopback port over `server` and connects one
/// client under `session`.
fn wire_pair(server: PrismServer, session: &str) -> (WireServer, WireClient) {
    let wire = WireServer::start(Arc::new(server), "127.0.0.1:0").unwrap();
    let client = WireClient::connect(&wire.local_addr().to_string(), session).unwrap();
    (wire, client)
}

/// Selections submitted over a real socket are bit-identical to direct
/// engine calls — the transport adds no semantics.
#[test]
fn wire_selections_match_direct_engine_bit_for_bit() {
    let (config, path) = fixture("parity");
    let requests = batches(&config, 6, 10);

    let reference: Vec<Selection> = {
        let eng = engine(&config, &path);
        requests
            .iter()
            .enumerate()
            .map(|(i, b)| {
                eng.select_with(b, RequestOptions::tagged(K, i as u64 + 1))
                    .unwrap()
            })
            .collect()
    };

    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let (wire, client) = wire_pair(server, "tenant");

    let handles: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(i, b)| {
            client
                .submit(b.clone(), RequestOptions::tagged(K, i as u64 + 1))
                .unwrap()
        })
        .collect();
    for (i, (handle, reference)) in handles.into_iter().zip(&reference).enumerate() {
        let outcome = handle.wait().unwrap();
        assert_eq!(
            exact_bits(&outcome.selection),
            exact_bits(reference),
            "request {i} diverged over the wire"
        );
        assert!(!outcome.served_from_cache);
    }

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The full stack — socket, frame codec, serving queue, scatter-gather
/// over 3 shards — still produces bit-identical selections.
#[test]
fn wire_over_sharded_server_matches_single_engine() {
    let (config, path) = fixture("sharded");
    let requests = batches(&config, 4, 10);

    let reference: Vec<Selection> = {
        let eng = resident_engine(&config, &path);
        requests
            .iter()
            .enumerate()
            .map(|(i, b)| {
                eng.select_with(b, RequestOptions::tagged(K, i as u64 + 1))
                    .unwrap()
            })
            .collect()
    };

    let server = PrismServer::start_sharded(
        (0..3).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let (wire, client) = wire_pair(server, "tenant");

    for (i, (batch, reference)) in requests.iter().zip(&reference).enumerate() {
        let outcome = client
            .submit(batch.clone(), RequestOptions::tagged(K, i as u64 + 1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            exact_bits(&outcome.selection),
            exact_bits(reference),
            "request {i} diverged through the sharded wire path"
        );
    }

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// A dead shard surfaces as a typed `ShardFailure` on the client's
/// handle — the merge never hangs waiting for it.
#[test]
fn dead_shard_surfaces_typed_shard_failure_over_the_wire() {
    let (config, path) = fixture("dead-shard");
    let batch = batches(&config, 1, 12).pop().unwrap();

    let server = PrismServer::start_sharded(
        (0..2).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    // The forward map must actually route work to the shard we kill.
    let parts = server.shards().unwrap().partition(&batch);
    assert!(
        parts.iter().all(|p| !p.is_empty()),
        "fixture batch must span both shards (got {parts:?})"
    );
    server.shards().unwrap().inject_fault(1, ShardFault::Dead);

    let (wire, client) = wire_pair(server, "tenant");
    let err = client
        .submit(batch, RequestOptions::tagged(K, 1))
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::ShardFailure(_)),
        "expected ShardFailure, got {err:?}"
    );

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// `handle.cancel()` on the client travels as a `Cancel` frame and is
/// observed at the next layer boundary of the scatter loop.
#[test]
fn cancel_over_the_wire_returns_cancelled() {
    let (config, path) = fixture("cancel");
    let batch = batches(&config, 1, 10).pop().unwrap();

    let server = PrismServer::start_sharded(
        (0..2).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    // Slow the scatter down so the Cancel frame wins the race to a
    // layer boundary.
    server
        .shards()
        .unwrap()
        .inject_fault(0, ShardFault::Slow(Duration::from_millis(25)));

    let (wire, client) = wire_pair(server, "tenant");
    let handle = client.submit(batch, RequestOptions::tagged(K, 1)).unwrap();
    handle.cancel();
    let err = handle.wait().unwrap_err();
    assert!(
        matches!(err, ServiceError::Cancelled),
        "expected Cancelled, got {err:?}"
    );

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Per-tenant quota rejections keep their structure across the wire:
/// the second in-flight submission of a `tenant_max_inflight = 1`
/// session fails with the tenant and limit intact.
#[test]
fn quota_rejection_travels_typed() {
    let (config, path) = fixture("quota");
    let mut reqs = batches(&config, 2, 10);
    let second = reqs.pop().unwrap();
    let first = reqs.pop().unwrap();

    let server = PrismServer::start_sharded(
        (0..2).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            session_cache_capacity: 0,
            tenant_max_inflight: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // Hold the first request in flight long enough for the second
    // submission to arrive while the quota slot is taken.
    server
        .shards()
        .unwrap()
        .inject_fault(0, ShardFault::Slow(Duration::from_millis(30)));

    let (wire, client) = wire_pair(server, "noisy");
    let held = client.submit(first, RequestOptions::tagged(K, 1)).unwrap();
    let err = client
        .submit(second, RequestOptions::tagged(K, 2))
        .unwrap()
        .wait()
        .unwrap_err();
    match err {
        ServiceError::QuotaExceeded { tenant, limit } => {
            assert_eq!(tenant, "noisy");
            assert_eq!(limit, 1);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // The held request still completes; its token is released.
    held.wait().unwrap();
    assert_eq!(wire.server().stats().snapshot().quota_rejected, 1);

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Layer-granularity progress streams over the socket while the
/// request is in flight, not only at completion.
#[test]
fn progress_streams_over_the_wire() {
    let (config, path) = fixture("progress");
    let batch = batches(&config, 1, 10).pop().unwrap();

    let server = PrismServer::start_sharded(
        (0..2).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    server
        .shards()
        .unwrap()
        .inject_fault(0, ShardFault::Slow(Duration::from_millis(20)));

    let (wire, client) = wire_pair(server, "tenant");
    let handle = client.submit(batch, RequestOptions::tagged(K, 1)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_midflight = false;
    loop {
        if handle.poll().is_some() {
            break;
        }
        let p = handle.progress();
        if p.layers_gated >= 1 {
            saw_midflight = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no progress frame observed within 30s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(saw_midflight, "request finished before any progress frame");
    let outcome = handle.wait().unwrap();
    assert_eq!(outcome.selection.ranked.len(), K);

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Raw-socket probes: ping round-trips, a garbage frame is answered
/// with a typed connection-level error (request id 0) before the server
/// closes the connection, and an oversized length prefix is rejected
/// without allocating.
#[test]
fn ping_and_malformed_frames_get_typed_answers() {
    let (config, path) = fixture("malformed");
    let server = PrismServer::start(engine(&config, &path), ServeConfig::default()).unwrap();
    let wire = WireServer::start(Arc::new(server), "127.0.0.1:0").unwrap();
    let addr = wire.local_addr().to_string();

    // Client-object ping.
    let client = WireClient::connect(&addr, "tenant").unwrap();
    let rtt = client.ping(Duration::from_secs(10)).unwrap();
    assert!(rtt < Duration::from_secs(10));
    drop(client);

    // Unknown message type after a valid handshake.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        write_frame(
            &mut raw,
            &Message::Hello {
                version: WIRE_VERSION,
                session: "raw".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_frame(&mut raw).unwrap(),
            Message::HelloAck { .. }
        ));
        // [len = 1][type = 0x7f]: a type the codec has never heard of.
        raw.write_all(&[1, 0, 0, 0, 0x7f]).unwrap();
        match read_frame(&mut raw).unwrap() {
            Message::Error { request_id, error } => {
                assert_eq!(request_id, 0, "malformed frames are connection-level");
                assert!(matches!(error, ServiceError::Config(_)));
            }
            other => panic!("expected connection-level Error, got {other:?}"),
        }
        // The server then closes: framing cannot resync.
        assert!(matches!(read_frame(&mut raw), Err(WireError::Closed)));
    }

    // Oversized length prefix straight after the handshake.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        write_frame(
            &mut raw,
            &Message::Hello {
                version: WIRE_VERSION,
                session: "raw2".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_frame(&mut raw).unwrap(),
            Message::HelloAck { .. }
        ));
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        match read_frame(&mut raw).unwrap() {
            Message::Error { request_id, .. } => assert_eq!(request_id, 0),
            other => panic!("expected connection-level Error, got {other:?}"),
        }
        assert!(matches!(read_frame(&mut raw), Err(WireError::Closed)));
    }

    // A version the server does not speak is refused in the handshake.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        write_frame(
            &mut raw,
            &Message::Hello {
                version: WIRE_VERSION + 1,
                session: "future".into(),
            },
        )
        .unwrap();
        match read_frame(&mut raw).unwrap() {
            Message::Error { request_id, error } => {
                assert_eq!(request_id, 0);
                assert!(matches!(error, ServiceError::Config(_)));
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Nightly soak: hundreds of requests from concurrent clients through
/// one loopback wire server over a sharded backend, with pings and
/// cancels interleaved. Every completed selection must stay
/// bit-identical to the direct single engine and every connection must
/// survive the whole run.
#[test]
#[ignore = "loopback soak: run explicitly (nightly CI, release)"]
fn wire_loopback_soak_stays_bit_identical() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 100;
    const DISTINCT: usize = 16;
    let (config, path) = fixture("soak");
    let batch_set = batches(&config, DISTINCT, 10);
    let reference: Vec<_> = {
        let eng = engine(&config, &path);
        batch_set
            .iter()
            .enumerate()
            .map(|(i, b)| {
                exact_bits(
                    &eng.select_with(b, RequestOptions::tagged(K, i as u64 + 1))
                        .unwrap(),
                )
            })
            .collect()
    };

    let engines = vec![
        resident_engine(&config, &path),
        resident_engine(&config, &path),
    ];
    let server = PrismServer::start_sharded(
        engines,
        ServeConfig {
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let wire = WireServer::start(Arc::new(server), "127.0.0.1:0").unwrap();
    let addr = wire.local_addr().to_string();

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let batch_set = &batch_set;
            let reference = &reference;
            s.spawn(move || {
                let client = WireClient::connect(addr, format!("soak-{c}")).unwrap();
                for r in 0..PER_CLIENT {
                    let i = (c + r * CLIENTS) % DISTINCT;
                    if r % 23 == 0 {
                        client.ping(Duration::from_secs(10)).unwrap();
                    }
                    let handle = client
                        .submit(
                            batch_set[i].clone(),
                            RequestOptions::tagged(K, i as u64 + 1),
                        )
                        .unwrap();
                    if r % 17 == 5 {
                        // A cancel race: either the request was already
                        // served (then it must match the reference) or
                        // it comes back typed-cancelled.
                        handle.cancel();
                        match handle.wait() {
                            Ok(outcome) => {
                                assert_eq!(exact_bits(&outcome.selection), reference[i]);
                            }
                            Err(ServiceError::Cancelled) => {}
                            Err(e) => panic!("soak cancel came back {e:?}"),
                        }
                    } else {
                        let outcome = handle.wait().unwrap();
                        assert_eq!(exact_bits(&outcome.selection), reference[i]);
                    }
                }
            });
        }
    });

    wire.shutdown();
    std::fs::remove_file(&path).ok();
}

/// `connect_timeout` bounds connection establishment *and* the
/// handshake: a peer that accepts TCP but never answers `Hello` yields
/// a typed `DeadlineExceeded` within the budget, while a live server
/// connects normally under the same API.
#[test]
fn connect_timeout_surfaces_typed_deadline() {
    // Never-accepting listener: the TCP handshake lands in the backlog,
    // the protocol handshake never completes.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let t0 = Instant::now();
    let err = WireClient::connect_timeout(&addr, "tenant", Duration::from_millis(100))
        .err()
        .expect("handshake must not complete");
    assert!(
        matches!(err, ServiceError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout did not bound the handshake: {:?}",
        t0.elapsed()
    );
    drop(listener);

    let (config, path) = fixture("connect-timeout");
    let server = PrismServer::start(engine(&config, &path), ServeConfig::default()).unwrap();
    let wire = WireServer::start(Arc::new(server), "127.0.0.1:0").unwrap();
    let client = WireClient::connect_timeout(
        &wire.local_addr().to_string(),
        "tenant",
        Duration::from_secs(10),
    )
    .unwrap();
    assert!(client.is_connected());
    // The handshake's read timeout must not linger on the reader: a
    // full round-trip still works after a quiet moment.
    let batch = batches(&config, 1, 8).pop().unwrap();
    client
        .submit(batch, RequestOptions::tagged(K, 1))
        .unwrap()
        .wait()
        .unwrap();

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// `select_with_retry` absorbs queue backpressure: with the queue
/// saturated by slow in-flight work, the retrying client sleeps out the
/// server's `retry_after` hints and lands the request — bit-identically
/// to the uncontended result — instead of surfacing `Backpressure`.
#[test]
fn select_with_retry_absorbs_backpressure() {
    let (config, path) = fixture("retry-bp");
    let server = PrismServer::start_sharded(
        (0..2).map(|_| resident_engine(&config, &path)).collect(),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let batch = batches(&config, 1, 10).pop().unwrap();
    // Every layer boundary of both shards stalls, keeping the single
    // worker busy long enough for the queue to back up behind it
    // (whichever shard the batch routes to).
    for shard in 0..2 {
        server
            .shards()
            .unwrap()
            .inject_fault(shard, ShardFault::Slow(Duration::from_millis(10)));
    }

    let (wire, client) = wire_pair(server, "tenant");
    let reference = client
        .submit(batch.clone(), RequestOptions::tagged(K, 1))
        .unwrap()
        .wait()
        .unwrap();

    // Saturate: one request in flight, one queued. The stagger lets the
    // worker pop the first before the second arrives, so the queue slot
    // stays occupied for the whole (slow) execution.
    let mut held = Vec::new();
    for i in 0..2 {
        held.push(
            client
                .submit(batch.clone(), RequestOptions::tagged(K, 100 + i))
                .unwrap(),
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let policy = prism_api::RetryPolicy::default()
        .with_max_attempts(32)
        .with_budget(Duration::from_secs(30));
    let (outcome, retries) =
        client.select_with_retry(&batch, &RequestOptions::tagged(K, 1), &policy);
    let outcome = outcome.expect("retrying client must land the request");
    assert!(
        retries > 0,
        "queue was saturated; at least one backpressure retry expected"
    );
    assert_eq!(
        exact_bits(&outcome.selection),
        exact_bits(&reference.selection),
        "retried result diverged"
    );
    for h in held {
        h.wait().unwrap();
    }

    drop(client);
    wire.shutdown();
    std::fs::remove_file(&path).unwrap();
}
