//! Frame-codec robustness properties: every message round-trips to
//! byte-identical encodings, and no mutation of the byte stream —
//! truncation, corruption, arbitrary garbage — can make the decoder
//! panic or produce anything but a typed [`WireError`].

use prism_api::{Progress, SelectionOutcome, ServiceError};
use prism_core::{
    ComputePrecision, EngineTrace, PartialMode, Priority, PruneMode, RankedCandidate,
    RequestOptions, Selection, SemCacheMode, SpillPrecision,
};
use prism_model::SequenceBatch;
use prism_wire::{decode_message, encode_message, read_frame, write_frame, Message, WireError};
use proptest::prelude::*;

/// Deterministically builds one message of every wire type from sampled
/// primitives. `kind` picks the variant; the other inputs fill it.
fn build_message(
    kind: usize,
    id: u64,
    small: u32,
    bits: &[u32],
    seqs: &[Vec<u32>],
    text: &'static str,
) -> Message {
    let options = RequestOptions {
        k: (small as usize % 8) + 1,
        tag: (small.is_multiple_of(2)).then_some(id),
        dispersion_threshold: (small.is_multiple_of(3))
            .then(|| f32::from_bits(bits.first().copied().unwrap_or(0x3e80_0000))),
        mode: match small % 3 {
            0 => None,
            1 => Some(PruneMode::TopKOnly),
            _ => Some(PruneMode::ExactOrder),
        },
        pruning: match small % 3 {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        priority: match small % 3 {
            0 => Priority::Bulk,
            1 => Priority::Normal,
            _ => Priority::High,
        },
        deadline_us: (small.is_multiple_of(5)).then_some(id % 1_000_000),
        spill_precision: if small.is_multiple_of(2) {
            SpillPrecision::Int8
        } else {
            SpillPrecision::F32
        },
        compute_precision: if small.is_multiple_of(4) {
            ComputePrecision::Int8
        } else {
            ComputePrecision::F32
        },
        semcache: match small % 3 {
            0 => SemCacheMode::Off,
            1 => SemCacheMode::VerifyAndFallback,
            _ => SemCacheMode::Aggressive,
        },
        on_partial: if small.is_multiple_of(2) {
            PartialMode::Fail
        } else {
            PartialMode::Partial
        },
    };
    let error = match small % 9 {
        0 => ServiceError::Backpressure {
            capacity: small as usize,
            queue_depth: small as usize + 1,
            retry_after: std::time::Duration::from_micros(id % 100_000),
        },
        1 => ServiceError::DeadlineExceeded,
        2 => ServiceError::Cancelled,
        3 => ServiceError::ShuttingDown,
        4 => ServiceError::Disconnected,
        5 => ServiceError::QuotaExceeded {
            tenant: text.to_string(),
            limit: small as usize,
        },
        6 => ServiceError::ShardFailure(text.to_string()),
        7 => ServiceError::Engine(text.to_string()),
        _ => ServiceError::Config(text.to_string()),
    };
    match kind {
        0 => Message::Hello {
            version: small,
            session: text.to_string(),
        },
        1 => Message::Submit {
            request_id: id,
            options,
            batch: SequenceBatch::new(seqs).expect("sampled sequences are non-empty"),
        },
        2 => Message::Cancel { request_id: id },
        3 => Message::Ping { nonce: id },
        4 => Message::HelloAck { version: small },
        5 => Message::Accepted {
            request_id: id,
            ticket: id ^ 0x5EED,
        },
        6 => Message::Progress {
            request_id: id,
            progress: Progress {
                layers_gated: small as usize % 32,
                layers_forwarded: small as usize % 32 + 1,
                candidates_active: bits.len(),
                candidates_accepted: small as usize % 8,
                candidates_pruned: small as usize % 16,
            },
        },
        7 => Message::Result {
            request_id: id,
            outcome: Box::new(SelectionOutcome {
                selection: Selection {
                    ranked: bits
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| RankedCandidate {
                            id: i,
                            score: f32::from_bits(b),
                            decided_at_layer: i % 7,
                        })
                        .collect(),
                    last_scores: bits.iter().map(|&b| f32::from_bits(b)).collect(),
                    // Coverage must decode: keep it a valid fraction.
                    coverage: (small % 101) as f32 / 100.0,
                    trace: EngineTrace {
                        active_per_layer: bits.iter().map(|&b| b as usize % 64).collect(),
                        executed_layers: small as usize % 12,
                        spill_bytes: id % (1 << 32),
                        ..Default::default()
                    },
                },
                ticket: id,
                queued_us: id % 10_000,
                service_us: id % 100_000,
                batch_size: small as usize % 8 + 1,
                served_from_cache: small % 2 == 1,
            }),
        },
        8 => Message::Error {
            request_id: id,
            error,
        },
        _ => Message::Pong { nonce: id },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode → encode is byte-identical for every message
    /// type, through both the body codec and the frame layer. Byte
    /// equality is stronger than structural equality: it pins score bit
    /// patterns (NaNs included) and rules out any lossy field.
    #[test]
    fn every_message_round_trips_to_identical_bytes(
        kind in 0_usize..10,
        id in 0_u64..u64::MAX,
        small in 0_u32..1000,
        bits in prop::collection::vec(0_u32..=u32::MAX, 0..8),
        seqs in prop::collection::vec(prop::collection::vec(0_u32..50_000, 1..10), 1..5),
        text in prop::sample::select(vec!["", "s", "tenant-α", "a longer session name with spaces"]),
    ) {
        let msg = build_message(kind, id, small, &bits, &seqs, text);
        let body = encode_message(&msg);
        let decoded = decode_message(&body);
        prop_assert!(decoded.is_ok(), "decode failed on {msg:?}: {decoded:?}");
        prop_assert_eq!(encode_message(&decoded.unwrap()), body.clone());

        let mut frame = Vec::new();
        write_frame(&mut frame, &msg).unwrap();
        let read = read_frame(&mut &frame[..]);
        prop_assert!(read.is_ok(), "frame read failed on {msg:?}: {read:?}");
        prop_assert_eq!(encode_message(&read.unwrap()), body);
    }

    /// Cutting a valid frame anywhere before its end yields a typed
    /// Truncated (or Closed at the zero boundary) — never Ok, never a
    /// panic, never a decode of partial bytes.
    #[test]
    fn any_truncation_of_a_valid_frame_is_typed(
        kind in 0_usize..10,
        id in 0_u64..u64::MAX,
        small in 0_u32..1000,
        bits in prop::collection::vec(0_u32..=u32::MAX, 0..8),
        seqs in prop::collection::vec(prop::collection::vec(0_u32..50_000, 1..10), 1..5),
        cut_frac in 0.0_f64..1.0,
    ) {
        let msg = build_message(kind, id, small, &bits, &seqs, "t");
        let mut frame = Vec::new();
        write_frame(&mut frame, &msg).unwrap();
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < frame.len());
        match read_frame(&mut &frame[..cut]) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut at {cut}/{} gave {other:?}", frame.len()),
        }
    }

    /// Flipping any byte of a valid frame never panics: the result is
    /// either a structurally valid message or a typed error, and
    /// whatever decodes re-encodes without panicking.
    #[test]
    fn single_byte_corruption_never_panics(
        kind in 0_usize..10,
        id in 0_u64..u64::MAX,
        small in 0_u32..1000,
        bits in prop::collection::vec(0_u32..=u32::MAX, 0..8),
        seqs in prop::collection::vec(prop::collection::vec(0_u32..50_000, 1..10), 1..5),
        pos_frac in 0.0_f64..1.0,
        mask in 1_u8..=255,
    ) {
        let msg = build_message(kind, id, small, &bits, &seqs, "t");
        let mut frame = Vec::new();
        write_frame(&mut frame, &msg).unwrap();
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= mask;
        if let Ok(decoded) = read_frame(&mut &frame[..]) {
            let _ = encode_message(&decoded);
        }
    }

    /// Arbitrary garbage fed to both codec layers terminates quickly
    /// with a typed result — the count-vs-remaining rule means a hostile
    /// prefix can never size an allocation the bytes don't back.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0_u8..=255, 0..256),
    ) {
        let _ = decode_message(&bytes);
        let _ = read_frame(&mut &bytes[..]);
    }
}
