//! Nightly chaos soak: four concurrent wire clients hammer a replicated
//! (R=2) sharded server over loopback TCP while a chaos thread kills
//! and stalls one shard at a time. Replication must cover every fault:
//! each request completes bit-identical to the fault-free reference
//! (absorbing backpressure through the typed retry policy), and when
//! the dust settles no shard has leaked spill files or metered bytes
//! and every tenant's quota slots are back.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prism_core::{EngineOptions, PrismEngine, RequestOptions, Selection, SpillPrecision};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{audit_shard_hygiene, PrismServer, ServeConfig, ShardFault};
use prism_storage::Container;
use prism_wire::{WireClient, WireServer};
use prism_workload::{dataset_by_name, WorkloadGenerator};

const K: usize = 4;
const SHARDS: usize = 3;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 64;
const DISTINCT: usize = 8;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bits(sel: &Selection) -> Vec<(usize, u32)> {
    sel.ranked
        .iter()
        .map(|r| (r.id, r.score.to_bits()))
        .collect()
}

/// Soak requests opt into the bit-exact f32 spill round trip so parity
/// holds whether or not a coalesced batch grows large enough to spill.
fn soak_options(tag: u64) -> RequestOptions {
    RequestOptions::tagged(K, tag).with_spill_precision(SpillPrecision::F32)
}

#[test]
#[ignore = "chaos soak: run explicitly (nightly CI, release)"]
fn chaos_soak_over_loopback_stays_bit_identical_and_leaks_nothing() {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-chaos-soak-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();

    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    let batch_set: Vec<SequenceBatch> = (0..DISTINCT)
        .map(|i| SequenceBatch::new(&generator.request(i as u64, 10).sequences()).unwrap())
        .collect();

    // Fault-free reference from a plain unsharded engine.
    let reference: Vec<Vec<(usize, u32)>> = {
        let eng = PrismEngine::new(
            Container::open(&path).unwrap(),
            config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )
        .unwrap();
        batch_set
            .iter()
            .enumerate()
            .map(|(i, b)| bits(&eng.select_with(b, soak_options(i as u64 + 1)).unwrap()))
            .collect()
    };

    // Spill-capable shard engines with private spill dirs so the final
    // hygiene audit can attribute leaks per shard.
    let mut spill_dirs = Vec::new();
    let engines: Vec<PrismEngine> = (0..SHARDS)
        .map(|i| {
            let mut dir = std::env::temp_dir();
            dir.push(format!("prism-chaos-soak-s{i}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            spill_dirs.push(dir.clone());
            PrismEngine::new(
                Container::open(&path).unwrap(),
                config.clone(),
                EngineOptions {
                    streaming: false,
                    embed_cache: false,
                    hidden_offload: true,
                    chunk_candidates: Some(2),
                    ..Default::default()
                },
                MemoryMeter::new(),
            )
            .unwrap()
            .with_spill_dir(dir)
        })
        .collect();
    let server = PrismServer::start_sharded(
        engines,
        ServeConfig {
            session_cache_capacity: 0,
            replicas: 2,
            hedge: Some(Duration::from_millis(2)),
            ..Default::default()
        },
    )
    .unwrap();
    let wire = WireServer::start(Arc::new(server), "127.0.0.1:0").unwrap();
    let addr = wire.local_addr().to_string();

    // Chaos: one shard at a time goes dead or slow for a few
    // milliseconds, then heals — the single-fault envelope R=2 covers.
    let stop = Arc::new(AtomicBool::new(false));
    let chaos = {
        let stop = Arc::clone(&stop);
        let shards = Arc::clone(wire.server());
        std::thread::spawn(move || {
            let mut rng = 0x50A4_u64 ^ 0x5047_1234_ABCD_0001;
            while !stop.load(Ordering::Relaxed) {
                let set = shards.shards().expect("sharded server");
                let victim = (splitmix64(&mut rng) % SHARDS as u64) as usize;
                let fault = if splitmix64(&mut rng) % 3 < 2 {
                    ShardFault::Dead
                } else {
                    ShardFault::Slow(Duration::from_millis(1 + splitmix64(&mut rng) % 4))
                };
                set.inject_fault(victim, fault);
                std::thread::sleep(Duration::from_millis(3 + splitmix64(&mut rng) % 6));
                set.inject_fault(victim, ShardFault::Healthy);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let retry = prism_api::RetryPolicy::default()
        .with_max_attempts(64)
        .with_budget(Duration::from_secs(60));
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let batch_set = &batch_set;
            let reference = &reference;
            let retry = retry.with_seed(0x50A4 ^ c as u64);
            s.spawn(move || {
                let client = WireClient::connect(addr, format!("chaos-{c}")).unwrap();
                for r in 0..PER_CLIENT {
                    let i = (c + r * CLIENTS) % DISTINCT;
                    let (outcome, _retries) = client.select_with_retry(
                        &batch_set[i],
                        &soak_options(i as u64 + 1),
                        &retry,
                    );
                    let outcome = outcome
                        .unwrap_or_else(|e| panic!("client {c} request {r}: chaos surfaced {e:?}"));
                    assert_eq!(
                        bits(&outcome.selection),
                        reference[i],
                        "client {c} request {r} diverged under chaos"
                    );
                }
            });
        }
    });

    stop.store(true, Ordering::Relaxed);
    chaos.join().unwrap();

    let server = Arc::clone(wire.server());
    let set = server.shards().expect("sharded server");
    for i in 0..SHARDS {
        set.inject_fault(i, ShardFault::Healthy);
    }
    audit_shard_hygiene(set).unwrap();

    // Quota slots freed: every tenant can immediately submit again.
    for c in 0..CLIENTS {
        let client = WireClient::connect(&addr, format!("chaos-{c}")).unwrap();
        let (outcome, _) = client.select_with_retry(&batch_set[0], &soak_options(1), &retry);
        assert_eq!(bits(&outcome.unwrap().selection), reference[0]);
    }

    let snap = server.stats().snapshot();
    assert_eq!(snap.queue_depth, 0, "requests left queued after the soak");
    assert!(
        snap.failovers + snap.hedges_fired > 0,
        "chaos never actually faulted a request"
    );

    wire.shutdown();
    for dir in &spill_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    std::fs::remove_file(&path).ok();
}
