//! Index invariants of the semantic cache, property-style:
//!
//! * a cached candidate is its own nearest match — probing with an
//!   entry's exact tokens always hits, and probing with its pooled
//!   vector similarity-hits at cosine ≈ 1 whenever the entry is live;
//! * probes are deterministic — the same cache state answers the same
//!   probe identically, and two caches built by the same call sequence
//!   agree on everything;
//! * eviction never lets the byte meter exceed the budget, and the
//!   meter always equals the sum over live entries (audit passes after
//!   arbitrary interleavings of insert / probe / poison).

use prism_semcache::{Probe, SemCacheConfig, SemanticCache};
use proptest::prelude::*;

const DIM: usize = 8;

fn config(capacity: u64, threshold: f32) -> SemCacheConfig {
    SemCacheConfig {
        dim: DIM,
        capacity_bytes: capacity,
        lsh_bits: 4,
        similarity_threshold: threshold,
        verify_fraction: 0.0,
        seed: 0xA5A5,
    }
}

/// Deterministic non-degenerate pooled vector for candidate `i`.
fn pooled(i: u32) -> Vec<f32> {
    (0..DIM)
        .map(|d| ((i as f32 + 1.0) * 0.61 + d as f32 * 1.13).sin() + 0.01)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every live entry is findable by its own key and by its own
    /// vector: the exact tier hits on identical tokens, and the
    /// similarity tier matches the entry's own pooled vector with
    /// cosine within quantization error of 1.
    #[test]
    fn candidate_is_its_own_nearest_match(
        ids in prop::collection::vec(0_u32..64, 1..24),
    ) {
        let mut cache = SemanticCache::new(config(1 << 20, 0.95));
        for &i in &ids {
            cache.insert(&[i, i + 1], 0, &pooled(i), i as f32);
        }
        for &i in &ids {
            let exact = cache.probe(&[i, i + 1], 0, None, false);
            prop_assert!(
                matches!(exact, Probe::ExactHit { score, .. } if score == i as f32),
                "exact probe of {i} gave {exact:?}"
            );
            // Probe under fresh tokens so only the similarity tier can
            // answer; the entry's own vector must clear the threshold.
            match cache.probe(&[i + 1000], 0, Some(&pooled(i)), true) {
                Probe::SimilarHit { similarity, .. } => {
                    prop_assert!(similarity > 0.99, "self-similarity {similarity}")
                }
                other => prop_assert!(false, "similar probe of {i} gave {other:?}"),
            }
        }
    }

    /// Two caches fed the same call sequence answer every probe
    /// identically (score bits included), and repeating a probe against
    /// one cache repeats its answer — LRU touches don't change results.
    #[test]
    fn probes_are_deterministic(
        ops in prop::collection::vec((0_u32..32, 0_u8..2), 1..40),
    ) {
        let mut a = SemanticCache::new(config(4 << 10, 0.9));
        let mut b = SemanticCache::new(config(4 << 10, 0.9));
        for &(i, kind) in &ops {
            if kind == 0 {
                let admitted_a = a.insert(&[i], 0, &pooled(i), i as f32 * 0.5);
                let admitted_b = b.insert(&[i], 0, &pooled(i), i as f32 * 0.5);
                prop_assert_eq!(admitted_a, admitted_b);
            } else {
                let pa = a.probe(&[i], 0, Some(&pooled(i)), true);
                let pb = b.probe(&[i], 0, Some(&pooled(i)), true);
                prop_assert_eq!(&pa, &pb);
                let again_a = a.probe(&[i], 0, Some(&pooled(i)), true);
                let again_b = b.probe(&[i], 0, Some(&pooled(i)), true);
                prop_assert_eq!(&pa, &again_a, "repeat probe changed answer");
                prop_assert_eq!(&again_a, &again_b);
            }
        }
        prop_assert_eq!(a.bytes(), b.bytes());
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Under arbitrary interleavings of insert, probe and poison, the
    /// byte meter never exceeds the budget and always reconciles with
    /// the live entries (audit passes — no leaked or phantom bytes).
    #[test]
    fn eviction_never_exceeds_budget_and_meter_reconciles(
        capacity in 200_u64..2000,
        ops in prop::collection::vec((0_u32..48, 0_u8..8), 1..80),
    ) {
        let mut cache = SemanticCache::new(config(capacity, 0.9));
        for &(i, kind) in &ops {
            match kind {
                0..=4 => {
                    cache.insert(&[i, i], 0, &pooled(i), 1.0);
                }
                5..=6 => {
                    cache.probe(&[i, i], 0, Some(&pooled(i)), true);
                }
                _ => {
                    let sig = cache.signature(&pooled(i));
                    cache.poison(sig);
                }
            }
            prop_assert!(
                cache.bytes() <= capacity,
                "meter {} over budget {capacity}",
                cache.bytes()
            );
            let audited = cache.audit();
            prop_assert!(audited.is_ok(), "audit failed: {audited:?}");
            prop_assert_eq!(audited.unwrap(), cache.bytes());
        }
        cache.clear();
        prop_assert_eq!(cache.audit().unwrap(), 0);
    }

    /// Fast bucket rejection is sound: a probe answered `Miss` really
    /// has no live entry above the similarity threshold — compare
    /// against a brute-force scan over everything ever admitted.
    #[test]
    fn rejection_never_hides_a_match(
        ids in prop::collection::vec(0_u32..40, 8..32),
        probe_id in 0_u32..40,
    ) {
        let mut cache = SemanticCache::new(config(1 << 20, 0.97));
        let mut admitted: Vec<u32> = Vec::new();
        for &i in &ids {
            if cache.insert(&[i], 0, &pooled(i), i as f32) {
                admitted.push(i);
            }
        }
        let q = pooled(probe_id);
        let hit = cache.probe(&[9999], 0, Some(&q), true);
        if matches!(hit, Probe::Miss) {
            // No admitted entry in the probe's own bucket may clear the
            // threshold on its stored (quantized) vector. Cross-bucket
            // misses are expected LSH behavior and not checked here.
            let sig = cache.signature(&q);
            for &i in &admitted {
                if cache.signature(&pooled(i)) != sig {
                    continue;
                }
                // Stored vectors are quantized; re-probing the entry's
                // exact tokens confirms it is still live before judging.
                let live = cache.probe(&[i], 0, None, false).is_hit();
                if live {
                    let sim = prism_semcache::cosine(&q, &pooled(i));
                    prop_assert!(
                        sim < 0.97 + 0.01,
                        "miss despite live same-bucket entry {i} at cosine {sim}"
                    );
                }
            }
        }
    }
}
