//! Random-hyperplane locality-sensitive hashing over pooled embedding
//! vectors, plus the small vector math the cache needs.
//!
//! A signature is the sign pattern of a vector's dot products against
//! `bits` fixed random directions: vectors at cosine angle θ disagree on
//! each bit with probability θ/π, so near-duplicates land in the same
//! bucket with high probability while the bucket count stays O(2^bits).
//! Directions are drawn once from a seeded generator, making signatures
//! a pure function of `(seed, bits, dim, vector)`.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// A fixed set of random hyperplane directions.
#[derive(Debug, Clone)]
pub struct Hyperplanes {
    /// Row-major `[bits, dim]` direction components.
    planes: Vec<f32>,
    bits: u32,
    dim: usize,
}

impl Hyperplanes {
    /// Draws `bits` directions of dimensionality `dim` from `seed`.
    /// Components are uniform in `[-1, 1)`; only their signs' dot
    /// products matter, so no normalization is needed.
    ///
    /// # Panics
    /// If `bits` is not in `1..=64` or `dim` is zero.
    pub fn new(bits: u32, dim: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&bits), "lsh bits {bits} not in 1..=64");
        assert!(dim > 0, "lsh dim must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4C53_4820_7365_6D63);
        let planes = (0..bits as usize * dim)
            .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
            .collect();
        Hyperplanes { planes, bits, dim }
    }

    /// Number of signature bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Dimensionality the planes were drawn for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The sign-pattern signature of `v` (bit *i* set iff
    /// `dot(v, plane_i) >= 0`).
    ///
    /// # Panics
    /// If `v.len() != dim`.
    pub fn signature(&self, v: &[f32]) -> u64 {
        assert_eq!(v.len(), self.dim, "signature of wrong-dim vector");
        let mut sig = 0u64;
        for bit in 0..self.bits as usize {
            let row = &self.planes[bit * self.dim..(bit + 1) * self.dim];
            let dot: f32 = row.iter().zip(v).map(|(p, x)| p * x).sum();
            if dot >= 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }
}

/// Cosine similarity of two equal-length vectors; zero-norm inputs
/// yield 0.0 (never NaN) so degenerate pooled vectors can't match
/// anything.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine of mismatched lengths");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Mean-pools `rows` (a flat `[n, dim]` row-major matrix, e.g. one
/// candidate's slice of an embedding batch) into a single `dim`-vector.
/// Empty input pools to the zero vector.
///
/// # Panics
/// If `rows.len()` is not a multiple of `dim`.
pub fn mean_pool(rows: &[f32], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "mean_pool dim must be >= 1");
    assert!(
        rows.len().is_multiple_of(dim),
        "mean_pool input length {} not a multiple of dim {dim}",
        rows.len()
    );
    let n = rows.len() / dim;
    let mut out = vec![0.0f32; dim];
    for row in rows.chunks_exact(dim) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    if n > 0 {
        let inv = 1.0 / n as f32;
        for o in &mut out {
            *o *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_deterministic_and_seed_keyed() {
        let v: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let h1 = Hyperplanes::new(16, 16, 7);
        let h2 = Hyperplanes::new(16, 16, 7);
        assert_eq!(h1.signature(&v), h2.signature(&v));
        let h3 = Hyperplanes::new(16, 16, 8);
        // Different seed -> different planes; the signature *may* collide
        // but the plane tables must differ.
        assert_ne!(h1.planes, h3.planes);
    }

    #[test]
    fn identical_vectors_share_a_bucket_and_opposites_do_not() {
        let h = Hyperplanes::new(32, 8, 42);
        let v = [1.0, -0.5, 0.25, 2.0, -1.0, 0.0, 0.5, 3.0];
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        assert_eq!(h.signature(&v), h.signature(&v));
        // Every strict sign flips for the exact negation (dot==0 edge
        // cases aside, which this vector avoids with overwhelming
        // probability), so the signatures are complements.
        assert_ne!(h.signature(&v), h.signature(&neg));
    }

    #[test]
    fn near_duplicates_usually_collide() {
        let h = Hyperplanes::new(8, 16, 1);
        let base: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut collided = 0;
        for j in 0..50 {
            let jittered: Vec<f32> = base
                .iter()
                .enumerate()
                .map(|(i, &x)| x + 1e-5 * ((i + j) as f32).sin())
                .collect();
            if h.signature(&jittered) == h.signature(&base) {
                collided += 1;
            }
        }
        // Sign flips need a plane dot within ~1e-5 of zero; most jitters
        // collide, but one marginal plane can flip a stretch of them.
        assert!(collided >= 30, "only {collided}/50 tiny jitters collided");
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0, "zero norm is 0");
    }

    #[test]
    fn mean_pool_averages_rows() {
        let rows = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(mean_pool(&rows, 2), vec![3.0, 4.0]);
        assert_eq!(mean_pool(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mean_pool_rejects_ragged_input() {
        mean_pool(&[1.0, 2.0, 3.0], 2);
    }
}
