//! Semantic result cache: cross-request reuse for near-duplicate
//! candidates and shared query prefixes.
//!
//! The serving layer's per-session memo cache (`prism-serve`'s
//! `SessionCache`) only ever replays a *whole selection* back to the
//! session that computed it. This crate sits one level deeper, between
//! that cache and the engine, and reuses *per-candidate* work across
//! requests, sessions and tenants:
//!
//! * an **exact tier** keyed by an FNV-1a [`fingerprint`] of the
//!   candidate's full token sequence plus its precision profile — a
//!   full-depth candidate score is a pure function of those inputs (the
//!   batch-independence contract the conformance suites pin), so
//!   replaying it is bit-identical to recomputing;
//! * a **similarity tier** over mean-pooled embedding-layer vectors:
//!   random-hyperplane LSH buckets give an O(1) probe, per-bucket
//!   d-dimensional K-Means centroids ([`prism_cluster::kmeans()`]) give
//!   fast rejection and scan ordering, and a cosine threshold decides
//!   whether a near-duplicate's cached score may stand in for a fresh
//!   computation (approximate by design — only the `Aggressive` mode of
//!   the serving knob enables this tier);
//! * a **bounded store** holding each cached activation row in the same
//!   versioned row-quantized int8 slot format the spill file uses
//!   ([`prism_tensor::RowQuantBlock`], ~4x smaller than f32), with LRU +
//!   byte-budget eviction metered like spill bytes.
//!
//! Verification (the `VerifyAndFallback` serving mode) re-scores a
//! deterministically [sampled](should_verify) fraction of hits against
//! the exact path; a mismatch [poisons](SemanticCache::poison) the
//! entry's LSH bucket — its entries are dropped and the bucket never
//! serves similarity hits again.
//!
//! Everything here is deterministic: probes, insertions, evictions and
//! centroid refreshes depend only on the configured seed and the call
//! sequence, never on wall-clock time or map iteration order.

pub mod cache;
pub mod lsh;
pub mod store;

pub use cache::{Probe, SemCacheStats, SemanticCache};
pub use lsh::{cosine, mean_pool, Hyperplanes};
pub use store::{entry_bytes, Entry, ENTRY_OVERHEAD_BYTES};

/// Configuration of a [`SemanticCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct SemCacheConfig {
    /// Embedding dimensionality of pooled candidate vectors (the model's
    /// hidden size).
    pub dim: usize,
    /// Byte budget for the store (entry payloads + fixed per-entry
    /// overhead). Insertions evict least-recently-used entries until the
    /// new entry fits; a single entry larger than the budget is refused.
    pub capacity_bytes: u64,
    /// Number of random-hyperplane sign bits in an LSH signature
    /// (1..=64). More bits = smaller buckets = fewer similarity
    /// comparisons but also fewer near-duplicate collisions.
    pub lsh_bits: u32,
    /// Minimum cosine similarity for the similarity tier to replay a
    /// cached score (in `[-1, 1]`; typical values are close to 1).
    pub similarity_threshold: f32,
    /// Fraction of cache hits the serving layer re-scores against the
    /// exact path under `VerifyAndFallback` (in `[0, 1]`). Stored here so
    /// one config travels through the stack; sampling itself is
    /// [`should_verify`].
    pub verify_fraction: f64,
    /// Seed for the hyperplane directions and per-bucket K-Means
    /// summaries. Two caches with equal seeds and equal call sequences
    /// are bit-identical.
    pub seed: u64,
}

impl Default for SemCacheConfig {
    fn default() -> Self {
        SemCacheConfig {
            dim: 64,
            capacity_bytes: 4 << 20,
            lsh_bits: 16,
            similarity_threshold: 0.95,
            verify_fraction: 0.25,
            seed: 0x5EED_CACE,
        }
    }
}

impl SemCacheConfig {
    /// Validates field ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("semcache dim must be >= 1".into());
        }
        if !(1..=64).contains(&self.lsh_bits) {
            return Err(format!("semcache lsh_bits {} not in 1..=64", self.lsh_bits));
        }
        if !(-1.0..=1.0).contains(&self.similarity_threshold) {
            return Err(format!(
                "semcache similarity threshold {} not in [-1, 1]",
                self.similarity_threshold
            ));
        }
        if !(0.0..=1.0).contains(&self.verify_fraction) {
            return Err(format!(
                "semcache verify fraction {} not in [0, 1]",
                self.verify_fraction
            ));
        }
        Ok(())
    }
}

/// FNV-1a fingerprint of a candidate's token sequence and precision
/// profile — the exact-tier cache key. The profile byte packs the knobs
/// that change score bits (spill precision, compute precision) so e.g.
/// an int8-computed score can never replay into an f32 request.
pub fn fingerprint(tokens: &[u32], profile: u8) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    (h ^ profile as u64).wrapping_mul(PRIME)
}

/// Deterministic verification sampling: whether a hit with this
/// fingerprint is re-scored against the exact path under
/// `VerifyAndFallback`. A SplitMix64 finalizer decorrelates the decision
/// from the bucket assignment so verification coverage is uniform across
/// buckets; the same fingerprint always samples the same way, which
/// keeps served results reproducible across identical runs.
pub fn should_verify(fingerprint: u64, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    if fraction >= 1.0 {
        return true;
    }
    let mut z = fingerprint.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [0, 1) with 53-bit precision, like `StdRng::gen::<f64>`.
    ((z >> 11) as f64) / ((1u64 << 53) as f64) < fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_tokens_and_profiles() {
        let a = fingerprint(&[1, 2, 3], 0);
        assert_eq!(a, fingerprint(&[1, 2, 3], 0), "deterministic");
        assert_ne!(a, fingerprint(&[1, 2, 4], 0), "token content keyed");
        assert_ne!(a, fingerprint(&[1, 2, 3], 1), "profile keyed");
        // Concatenation boundary matters: [1,2]+[3] != [1]+[2,3] is
        // trivially true here (same flat stream), but length-extension
        // across distinct streams must differ.
        assert_ne!(fingerprint(&[1], 0), fingerprint(&[1, 0], 0));
    }

    #[test]
    fn verify_sampling_is_deterministic_and_roughly_calibrated() {
        let fraction = 0.25;
        let hits: usize = (0..10_000)
            .filter(|&i| should_verify(fingerprint(&[i], 0), fraction))
            .count();
        // 10k SplitMix64 draws at p=0.25: expect 2500 +- a few hundred.
        assert!((2000..3000).contains(&hits), "got {hits}");
        for i in 0..100 {
            let f = fingerprint(&[i, i + 1], 3);
            assert_eq!(should_verify(f, fraction), should_verify(f, fraction));
        }
        assert!(!should_verify(7, 0.0));
        assert!(should_verify(7, 1.0));
    }

    #[test]
    fn config_validation_catches_bad_ranges() {
        SemCacheConfig::default().validate().unwrap();
        let bad = [
            SemCacheConfig {
                dim: 0,
                ..Default::default()
            },
            SemCacheConfig {
                lsh_bits: 0,
                ..Default::default()
            },
            SemCacheConfig {
                lsh_bits: 65,
                ..Default::default()
            },
            SemCacheConfig {
                similarity_threshold: 1.5,
                ..Default::default()
            },
            SemCacheConfig {
                verify_fraction: -0.1,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} must be rejected");
        }
    }
}
