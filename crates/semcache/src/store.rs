//! The cache's entry representation and byte accounting.
//!
//! Each entry holds one candidate's full-depth result: its exact token
//! sequence (collision defense for the fingerprint map), its final
//! score, and its mean-pooled embedding vector stored as a 1-row
//! [`RowQuantBlock`] — the same versioned row-quantized int8 slot format
//! the hidden-state spill file uses, which costs ~4x less memory than
//! keeping the f32 vector. Byte accounting mirrors how spill bytes are
//! metered: payload bytes plus a fixed per-entry overhead, so the
//! serving layer's gauges and leak audits see cache residency the same
//! way they see spill residency.

use prism_tensor::{RowQuantBlock, Tensor};

/// Fixed accounting overhead per entry (fingerprint, signature, score,
/// LRU tick, Vec headers). Deliberately a round constant rather than a
/// `size_of` expression so byte budgets are stable across platforms and
/// the golden perf numbers don't drift with struct layout.
pub const ENTRY_OVERHEAD_BYTES: u64 = 96;

/// One cached candidate result.
#[derive(Debug, Clone)]
pub struct Entry {
    /// [`crate::fingerprint`] of `tokens` + the precision profile.
    pub fingerprint: u64,
    /// The candidate's exact token sequence (compared on exact-tier hits
    /// to defeat fingerprint collisions).
    pub tokens: Vec<u32>,
    /// Packed precision profile byte (spill + compute precision).
    pub profile: u8,
    /// The candidate's full-depth score under that profile.
    pub score: f32,
    /// Mean-pooled embedding vector, row-quantized to int8.
    pub vector: RowQuantBlock,
    /// LSH bucket signature the entry lives in.
    pub signature: u64,
    /// Last-touch tick for LRU ordering (monotonic, unique).
    pub tick: u64,
}

impl Entry {
    /// Quantizes `pooled` and builds an entry. `tick` must be unique per
    /// cache (the cache hands out a monotonic counter).
    pub fn new(
        fingerprint: u64,
        tokens: Vec<u32>,
        profile: u8,
        score: f32,
        pooled: &[f32],
        signature: u64,
        tick: u64,
    ) -> Self {
        let t = Tensor::from_vec(1, pooled.len(), pooled.to_vec())
            .expect("pooled vector is non-empty and rectangular");
        let vector = RowQuantBlock::encode(&t).expect("1-row encode cannot fail");
        Entry {
            fingerprint,
            tokens,
            profile,
            score,
            vector,
            signature,
            tick,
        }
    }

    /// Decodes the stored vector back to f32 (lossy by the int8
    /// quantization error bound, identically lossy on every decode).
    pub fn decode_vector(&self) -> Vec<f32> {
        let mut out = Tensor::zeros(1, self.vector.cols());
        self.vector
            .decode_into(&mut out)
            .expect("decode into matching shape cannot fail");
        out.data().to_vec()
    }

    /// Metered size of this entry: token bytes + quantized vector bytes
    /// + [`ENTRY_OVERHEAD_BYTES`].
    pub fn bytes(&self) -> u64 {
        entry_bytes(self.tokens.len(), &self.vector)
    }
}

/// Metered size of an entry with `token_len` tokens and the given
/// quantized vector — the unit the cache's byte budget and the serving
/// layer's `semcache_bytes` gauge count in.
pub fn entry_bytes(token_len: usize, vector: &RowQuantBlock) -> u64 {
    ENTRY_OVERHEAD_BYTES + (token_len as u64) * 4 + vector.size_bytes() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips_vector_within_quant_error() {
        let pooled: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        let e = Entry::new(1, vec![5, 6, 7], 0, 0.5, &pooled, 9, 1);
        let back = e.decode_vector();
        assert_eq!(back.len(), 32);
        let span = 2.0; // sin spans [-1, 1]
        for (a, b) in pooled.iter().zip(&back) {
            assert!((a - b).abs() <= span / 255.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn byte_accounting_matches_parts() {
        let pooled = vec![0.25f32; 16];
        let e = Entry::new(2, vec![1, 2], 1, 1.0, &pooled, 0, 2);
        // 1x16 rowq block: 16 code bytes + 4 (min) + 4 (scale).
        assert_eq!(e.vector.size_bytes(), 16 + 8);
        assert_eq!(e.bytes(), ENTRY_OVERHEAD_BYTES + 2 * 4 + 24);
        assert_eq!(e.bytes(), entry_bytes(e.tokens.len(), &e.vector));
    }

    #[test]
    fn decode_is_deterministic() {
        let pooled: Vec<f32> = (0..8).map(|i| i as f32 * 0.125 - 0.4).collect();
        let e = Entry::new(3, vec![9], 0, -0.25, &pooled, 4, 3);
        let a: Vec<u32> = e.decode_vector().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = e.decode_vector().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
    }
}
