//! The semantic cache proper: exact-tier fingerprint map, similarity
//! tier over LSH buckets with K-Means summaries, and the LRU +
//! byte-budget bounded store.
//!
//! # Determinism
//!
//! Every observable behavior — probe results, eviction order, summary
//! refresh points — is a pure function of the configuration seed and
//! the call sequence. Hash maps are used only for point lookups, never
//! for iteration-order-dependent decisions; LRU eviction walks a
//! `BTreeMap` keyed by monotonic ticks.
//!
//! # Sound bucket rejection
//!
//! Each bucket periodically summarizes its members with a small
//! d-dimensional K-Means ([`prism_cluster::kmeans()`]), recording for
//! every centroid the maximum *angle* to any assigned member. A probe
//! can then skip the whole bucket when even the most favorable member
//! could not clear the similarity threshold: by the angular triangle
//! inequality, `angle(probe, member) >= angle(probe, centroid) -
//! max_member_angle(centroid)`, so if that lower bound exceeds
//! `acos(threshold)` for every centroid, no member can match. The
//! summary only covers members present at refresh time, so rejection is
//! disabled (`stale`) whenever membership changed since — rejection
//! therefore never hides a member a full scan would have matched, which
//! `semcache_props.rs` pins property-style.

use std::collections::{BTreeMap, HashMap, HashSet};

use prism_cluster::kmeans;

use crate::lsh::{cosine, Hyperplanes};
use crate::store::Entry;
use crate::{fingerprint, SemCacheConfig};

/// Buckets smaller than this are always scanned directly — a K-Means
/// summary of a handful of vectors costs more than it saves.
const MIN_SUMMARY_MEMBERS: usize = 8;
/// A bucket's summary is rebuilt after this many inserts since the last
/// refresh (evictions only mark it stale).
const REFRESH_EVERY_INSERTS: usize = 4;
/// Centroids per bucket summary (clamped to the member count).
const SUMMARY_CENTROIDS: usize = 4;

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// A token-identical candidate under the same precision profile;
    /// its replayed score is bit-identical to recomputation.
    ExactHit {
        /// The cached full-depth score.
        score: f32,
        /// Exact-tier key of the matched entry (verification sampling).
        fingerprint: u64,
        /// LSH bucket of the matched entry (poison target).
        signature: u64,
    },
    /// A near-duplicate whose pooled-embedding cosine cleared the
    /// threshold; replay is approximate by design.
    SimilarHit {
        /// The cached full-depth score of the *matched* candidate.
        score: f32,
        /// Cosine similarity between probe and matched vectors.
        similarity: f32,
        /// Exact-tier key of the matched entry (verification sampling).
        fingerprint: u64,
        /// LSH bucket of the matched entry (poison target).
        signature: u64,
    },
    /// Nothing reusable.
    Miss,
}

impl Probe {
    /// The replayable score, if any.
    pub fn score(&self) -> Option<f32> {
        match self {
            Probe::ExactHit { score, .. } | Probe::SimilarHit { score, .. } => Some(*score),
            Probe::Miss => None,
        }
    }

    /// Whether the probe found anything.
    pub fn is_hit(&self) -> bool {
        !matches!(self, Probe::Miss)
    }
}

/// Monotonic counters describing cache behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemCacheStats {
    /// Probes answered by the exact tier.
    pub exact_hits: u64,
    /// Probes answered by the similarity tier.
    pub similar_hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Insert attempts refused (poisoned bucket, oversized entry, or
    /// already present).
    pub rejected_inserts: u64,
    /// LSH buckets disabled by verification mismatches.
    pub poisoned_buckets: u64,
}

/// Per-centroid data of a bucket summary.
struct CentroidBound {
    /// Flat centroid vector (`dim` components).
    centroid: Vec<f32>,
    /// Maximum angle (radians) from the centroid to any member assigned
    /// to it at refresh time.
    max_angle: f32,
}

/// A bucket's K-Means summary for sound fast rejection.
struct Summary {
    bounds: Vec<CentroidBound>,
}

/// One LSH bucket: member slots in insertion order plus the summary.
#[derive(Default)]
struct Bucket {
    /// Slot ids in insertion order (scan order — deterministic).
    members: Vec<usize>,
    summary: Option<Summary>,
    /// Membership changed since the summary was built; rejection is
    /// disabled until the next refresh.
    stale: bool,
    inserts_since_refresh: usize,
}

/// The similarity-keyed cross-request activation cache. See the crate
/// docs for the tier structure and [`Probe`] for outcomes.
pub struct SemanticCache {
    config: SemCacheConfig,
    planes: Hyperplanes,
    /// Slab of entries; `None` slots are on the free list.
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// fingerprint -> slot (exact tier).
    exact: HashMap<u64, usize>,
    /// LRU order: tick -> slot. Ticks are unique and monotonic.
    lru: BTreeMap<u64, usize>,
    /// signature -> bucket (similarity tier).
    buckets: HashMap<u64, Bucket>,
    poisoned: HashSet<u64>,
    bytes: u64,
    next_tick: u64,
    stats: SemCacheStats,
}

impl SemanticCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    /// If the configuration fails [`SemCacheConfig::validate`].
    pub fn new(config: SemCacheConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid semcache config: {e}");
        }
        let planes = Hyperplanes::new(config.lsh_bits, config.dim, config.seed);
        SemanticCache {
            config,
            planes,
            slots: Vec::new(),
            free: Vec::new(),
            exact: HashMap::new(),
            lru: BTreeMap::new(),
            buckets: HashMap::new(),
            poisoned: HashSet::new(),
            bytes: 0,
            next_tick: 0,
            stats: SemCacheStats::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &SemCacheConfig {
        &self.config
    }

    /// Currently metered bytes (payload + per-entry overhead).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SemCacheStats {
        self.stats
    }

    /// The LSH signature `pooled` would bucket under (exposed so the
    /// serving layer can log/poison without re-deriving planes).
    pub fn signature(&self, pooled: &[f32]) -> u64 {
        self.planes.signature(pooled)
    }

    /// Looks up a candidate. The exact tier (token-identical under the
    /// same precision `profile`) is always consulted; the similarity
    /// tier additionally runs when `allow_similar` is set **and** a
    /// pooled embedding vector is supplied. Hits refresh LRU recency.
    pub fn probe(
        &mut self,
        tokens: &[u32],
        profile: u8,
        pooled: Option<&[f32]>,
        allow_similar: bool,
    ) -> Probe {
        let fp = fingerprint(tokens, profile);
        if let Some(&slot) = self.exact.get(&fp) {
            let entry = self.slots[slot]
                .as_ref()
                .expect("exact map points at live slot");
            if entry.tokens == tokens && entry.profile == profile {
                let (score, signature) = (entry.score, entry.signature);
                self.touch(slot);
                self.stats.exact_hits += 1;
                return Probe::ExactHit {
                    score,
                    fingerprint: fp,
                    signature,
                };
            }
            // Fingerprint collision: fall through to the similarity tier
            // rather than replaying a different candidate's score.
        }
        if allow_similar {
            if let Some(pooled) = pooled {
                if let Some(hit) = self.probe_similar(pooled) {
                    self.stats.similar_hits += 1;
                    return hit;
                }
            }
        }
        self.stats.misses += 1;
        Probe::Miss
    }

    /// Similarity-tier lookup: bucket by signature, reject via summary
    /// bounds when possible, otherwise scan members in insertion order
    /// for the best cosine above the threshold (ties keep the earliest
    /// member — deterministic).
    fn probe_similar(&mut self, pooled: &[f32]) -> Option<Probe> {
        let sig = self.planes.signature(pooled);
        if self.poisoned.contains(&sig) {
            return None;
        }
        let bucket = self.buckets.get(&sig)?;
        let threshold = self.config.similarity_threshold;
        if let (Some(summary), false) = (&bucket.summary, bucket.stale) {
            let limit = threshold.clamp(-1.0, 1.0).acos();
            let rejected = summary.bounds.iter().all(|b| {
                let angle = cosine(pooled, &b.centroid).clamp(-1.0, 1.0).acos();
                angle - b.max_angle > limit
            });
            if rejected {
                return None;
            }
        }
        let mut best: Option<(f32, usize)> = None;
        for &slot in &bucket.members {
            let entry = self.slots[slot].as_ref().expect("bucket member is live");
            let sim = cosine(pooled, &entry.decode_vector());
            if sim >= threshold && best.is_none_or(|(b, _)| sim > b) {
                best = Some((sim, slot));
            }
        }
        let (similarity, slot) = best?;
        let entry = self.slots[slot].as_ref().expect("matched member is live");
        let probe = Probe::SimilarHit {
            score: entry.score,
            similarity,
            fingerprint: entry.fingerprint,
            signature: entry.signature,
        };
        self.touch(slot);
        Some(probe)
    }

    /// Stores a candidate's full-depth result. Returns whether the entry
    /// was admitted: refused when its LSH bucket is poisoned, when the
    /// entry alone exceeds the byte budget, or when a token-identical
    /// entry is already cached (that entry's recency is refreshed
    /// instead). Admission may evict least-recently-used entries until
    /// the budget holds.
    pub fn insert(&mut self, tokens: &[u32], profile: u8, pooled: &[f32], score: f32) -> bool {
        assert_eq!(pooled.len(), self.config.dim, "pooled vector has wrong dim");
        let fp = fingerprint(tokens, profile);
        if let Some(&slot) = self.exact.get(&fp) {
            let entry = self.slots[slot]
                .as_ref()
                .expect("exact map points at live slot");
            if entry.tokens == tokens && entry.profile == profile {
                self.touch(slot);
                self.stats.rejected_inserts += 1;
                return false;
            }
            // Collision with a different candidate: keep the incumbent
            // (exact tier can hold one entry per fingerprint; the new
            // candidate stays un-cached rather than evicting a provably
            // correct entry for an ambiguous key).
            self.stats.rejected_inserts += 1;
            return false;
        }
        let sig = self.planes.signature(pooled);
        if self.poisoned.contains(&sig) {
            self.stats.rejected_inserts += 1;
            return false;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = Entry::new(fp, tokens.to_vec(), profile, score, pooled, sig, tick);
        let need = entry.bytes();
        if need > self.config.capacity_bytes {
            self.stats.rejected_inserts += 1;
            return false;
        }
        while self.bytes + need > self.config.capacity_bytes {
            let (&oldest, &slot) = self.lru.iter().next().expect("over budget implies entries");
            debug_assert!(oldest < tick);
            self.remove_slot(slot);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(entry);
                s
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        self.exact.insert(fp, slot);
        self.lru.insert(tick, slot);
        self.bytes += need;
        let bucket = self.buckets.entry(sig).or_default();
        bucket.members.push(slot);
        bucket.stale = true;
        bucket.inserts_since_refresh += 1;
        self.maybe_refresh(sig);
        self.stats.insertions += 1;
        true
    }

    /// Disables an LSH bucket after a verification mismatch: its entries
    /// are dropped (bytes released) and neither tier will serve or admit
    /// anything bucketed there again.
    pub fn poison(&mut self, signature: u64) {
        if !self.poisoned.insert(signature) {
            return;
        }
        self.stats.poisoned_buckets = self.poisoned.len() as u64;
        if let Some(bucket) = self.buckets.get(&signature) {
            // remove_slot edits the bucket's member list; snapshot first.
            let members = bucket.members.clone();
            for slot in members {
                self.remove_slot(slot);
            }
        }
        self.buckets.remove(&signature);
    }

    /// Drops every entry and poisoned-bucket marker; counters persist.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.exact.clear();
        self.lru.clear();
        self.buckets.clear();
        self.poisoned.clear();
        self.bytes = 0;
    }

    /// Recomputes the byte meter and cross-checks every index against
    /// the slab, returning the recomputed byte count. Any inconsistency
    /// — a leaked or phantom byte, a dangling slot reference, an LRU
    /// entry without a slot — is an error. Leak audits (cancel / shard
    /// kill) call this after draining.
    pub fn audit(&self) -> Result<u64, String> {
        let mut recomputed = 0u64;
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(e) = slot {
                recomputed += e.bytes();
                live += 1;
                if self.exact.get(&e.fingerprint) != Some(&i) {
                    return Err(format!("slot {i} missing from exact map"));
                }
                let bucket = self
                    .buckets
                    .get(&e.signature)
                    .ok_or_else(|| format!("slot {i} bucket {:x} missing", e.signature))?;
                if !bucket.members.contains(&i) {
                    return Err(format!("slot {i} not a member of its bucket"));
                }
                if self.lru.get(&e.tick) != Some(&i) {
                    return Err(format!("slot {i} missing from LRU order"));
                }
            }
        }
        if recomputed != self.bytes {
            return Err(format!(
                "byte meter drift: metered {} vs recomputed {recomputed}",
                self.bytes
            ));
        }
        if live != self.exact.len() || live != self.lru.len() {
            return Err(format!(
                "index cardinality drift: {live} live vs {} exact / {} lru",
                self.exact.len(),
                self.lru.len()
            ));
        }
        let member_total: usize = self.buckets.values().map(|b| b.members.len()).sum();
        if member_total != live {
            return Err(format!(
                "bucket membership drift: {member_total} members vs {live} live"
            ));
        }
        Ok(recomputed)
    }

    /// Moves a slot to most-recently-used.
    fn touch(&mut self, slot: usize) {
        let entry = self.slots[slot].as_mut().expect("touch of live slot");
        let old = entry.tick;
        entry.tick = self.next_tick;
        self.next_tick += 1;
        self.lru.remove(&old);
        let tick = self.slots[slot].as_ref().unwrap().tick;
        self.lru.insert(tick, slot);
    }

    /// Removes one slot from every index and releases its bytes.
    fn remove_slot(&mut self, slot: usize) {
        let entry = self.slots[slot].take().expect("remove of live slot");
        self.bytes -= entry.bytes();
        self.exact.remove(&entry.fingerprint);
        self.lru.remove(&entry.tick);
        let mut now_empty = false;
        if let Some(bucket) = self.buckets.get_mut(&entry.signature) {
            bucket.members.retain(|&s| s != slot);
            bucket.stale = true;
            now_empty = bucket.members.is_empty();
        }
        if now_empty {
            self.buckets.remove(&entry.signature);
        }
        self.free.push(slot);
    }

    /// Rebuilds a bucket's K-Means summary when it has grown enough
    /// since the last refresh. The summary covers the bucket's *current*
    /// members, so rejection becomes sound (`stale = false`) until the
    /// next membership change.
    fn maybe_refresh(&mut self, signature: u64) {
        let dim = self.config.dim;
        let seed = self.config.seed ^ signature;
        let Some(bucket) = self.buckets.get(&signature) else {
            return;
        };
        if bucket.members.len() < MIN_SUMMARY_MEMBERS
            || bucket.inserts_since_refresh < REFRESH_EVERY_INSERTS
        {
            return;
        }
        let members = bucket.members.clone();
        let mut points = Vec::with_capacity(members.len() * dim);
        for &slot in &members {
            let entry = self.slots[slot].as_ref().expect("bucket member is live");
            points.extend_from_slice(&entry.decode_vector());
        }
        let k = SUMMARY_CENTROIDS.min(members.len());
        let clustering = kmeans(&points, dim, k, seed);
        let mut bounds: Vec<CentroidBound> = (0..clustering.k())
            .map(|c| CentroidBound {
                centroid: clustering.centroid(c).to_vec(),
                max_angle: 0.0,
            })
            .collect();
        for (m, &c) in clustering.assignments.iter().enumerate() {
            let point = &points[m * dim..(m + 1) * dim];
            let angle = cosine(point, &bounds[c].centroid).clamp(-1.0, 1.0).acos();
            if angle > bounds[c].max_angle {
                bounds[c].max_angle = angle;
            }
        }
        let bucket = self
            .buckets
            .get_mut(&signature)
            .expect("bucket still present");
        bucket.summary = Some(Summary { bounds });
        bucket.stale = false;
        bucket.inserts_since_refresh = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SemCacheConfig {
        SemCacheConfig {
            dim: 8,
            capacity_bytes: 16 << 10,
            lsh_bits: 8,
            similarity_threshold: 0.9,
            verify_fraction: 0.0,
            seed: 7,
        }
    }

    fn vec_for(i: u64) -> Vec<f32> {
        (0..8)
            .map(|d| ((i as f32 + 1.0) * (d as f32 + 1.0) * 0.37).sin())
            .collect()
    }

    #[test]
    fn exact_tier_round_trips_scores_bit_identically() {
        let mut c = SemanticCache::new(small_config());
        let pooled = vec_for(1);
        assert!(c.insert(&[1, 2, 3], 0, &pooled, 0.1 + 0.2));
        match c.probe(&[1, 2, 3], 0, None, false) {
            Probe::ExactHit { score, .. } => {
                assert_eq!(score.to_bits(), (0.1f32 + 0.2).to_bits());
            }
            other => panic!("expected exact hit, got {other:?}"),
        }
        // Different profile byte must miss.
        assert_eq!(c.probe(&[1, 2, 3], 1, None, false), Probe::Miss);
        // Different tokens must miss.
        assert_eq!(c.probe(&[1, 2, 4], 0, None, false), Probe::Miss);
        assert_eq!(c.stats().exact_hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn similarity_tier_matches_near_duplicates_only_when_allowed() {
        let mut c = SemanticCache::new(small_config());
        let pooled = vec_for(2);
        assert!(c.insert(&[10, 11], 0, &pooled, 0.75));
        let jittered: Vec<f32> = pooled.iter().map(|x| x * 1.0001).collect();
        // Scaled copy: cosine 1.0, same signature. Denied without the flag.
        assert_eq!(c.probe(&[99], 0, Some(&jittered), false), Probe::Miss);
        match c.probe(&[99], 0, Some(&jittered), true) {
            Probe::SimilarHit {
                score, similarity, ..
            } => {
                assert_eq!(score, 0.75);
                assert!(similarity > 0.99);
            }
            other => panic!("expected similar hit, got {other:?}"),
        }
    }

    #[test]
    fn eviction_respects_byte_budget_and_lru_order() {
        let mut config = small_config();
        // Room for roughly three entries (8-dim rowq ≈ 16B + tokens + 96B).
        config.capacity_bytes = 400;
        let mut c = SemanticCache::new(config);
        for i in 0..6u64 {
            assert!(c.insert(&[i as u32], 0, &vec_for(i), i as f32));
            assert!(c.bytes() <= 400, "budget exceeded at {i}: {}", c.bytes());
        }
        assert!(c.stats().evictions > 0);
        // The most recent insert always survives.
        assert!(c.probe(&[5], 0, None, false).is_hit());
        // The oldest un-touched entry is gone.
        assert!(!c.probe(&[0], 0, None, false).is_hit());
        c.audit().unwrap();
    }

    #[test]
    fn probe_touches_lru_recency() {
        let mut config = small_config();
        config.capacity_bytes = 400;
        let mut c = SemanticCache::new(config);
        for i in 0..3u64 {
            assert!(c.insert(&[i as u32], 0, &vec_for(i), 0.0));
        }
        // Touch entry 0 so entry 1 becomes the eviction victim.
        assert!(c.probe(&[0], 0, None, false).is_hit());
        for i in 10..14u64 {
            c.insert(&[i as u32], 0, &vec_for(i), 0.0);
        }
        assert!(!c.probe(&[1], 0, None, false).is_hit(), "1 was LRU");
        c.audit().unwrap();
    }

    #[test]
    fn poisoning_drops_the_bucket_and_refuses_reuse() {
        let mut c = SemanticCache::new(small_config());
        let pooled = vec_for(3);
        assert!(c.insert(&[7], 0, &pooled, 0.5));
        let sig = c.signature(&pooled);
        let before = c.bytes();
        assert!(before > 0);
        c.poison(sig);
        assert_eq!(c.bytes(), 0, "poisoned entries release their bytes");
        assert_eq!(c.probe(&[7], 0, Some(&pooled), true), Probe::Miss);
        assert!(
            !c.insert(&[7], 0, &pooled, 0.5),
            "poisoned bucket admits nothing"
        );
        assert_eq!(c.stats().poisoned_buckets, 1);
        c.audit().unwrap();
    }

    #[test]
    fn duplicate_insert_is_refused_and_refreshes_recency() {
        let mut c = SemanticCache::new(small_config());
        let pooled = vec_for(4);
        assert!(c.insert(&[1], 0, &pooled, 0.5));
        let bytes = c.bytes();
        assert!(!c.insert(&[1], 0, &pooled, 0.5));
        assert_eq!(c.bytes(), bytes, "duplicate admits no bytes");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_is_refused_outright() {
        let mut config = small_config();
        config.capacity_bytes = 50; // below a single entry's overhead
        let mut c = SemanticCache::new(config);
        assert!(!c.insert(&[1], 0, &vec_for(1), 0.5));
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn summary_rejection_never_hides_members() {
        // Grow one bucket past the summary threshold, then probe with
        // every member's own vector: each must still hit.
        let mut config = small_config();
        config.lsh_bits = 1; // few buckets -> summaries actually build
        config.similarity_threshold = 0.95;
        let mut c = SemanticCache::new(config);
        let vectors: Vec<Vec<f32>> = (0..24).map(vec_for).collect();
        for (i, v) in vectors.iter().enumerate() {
            c.insert(&[i as u32], 0, v, i as f32);
        }
        for (i, v) in vectors.iter().enumerate() {
            if !c.probe(&[i as u32 + 1000], 0, Some(v), true).is_hit() {
                // Only acceptable if the entry was evicted — capacity is
                // ample here, so it must hit.
                panic!("member {i} hidden by rejection");
            }
        }
        c.audit().unwrap();
    }

    #[test]
    fn clear_releases_everything() {
        let mut c = SemanticCache::new(small_config());
        for i in 0..5u64 {
            c.insert(&[i as u32], 0, &vec_for(i), 0.0);
        }
        c.clear();
        assert_eq!(c.bytes(), 0);
        assert!(c.is_empty());
        assert_eq!(c.audit().unwrap(), 0);
    }
}
