//! The application pipelines driven through the serving front-end: a
//! [`prism_serve::ServeSession`] is a drop-in [`Reranker`], so RAG and
//! agent-memory run unchanged over the multi-tenant server — and their
//! results match the same pipeline holding a dedicated engine.

use prism_apps::corpus::CorpusSpec;
use prism_apps::{AgentMemory, AgentScenario, Corpus, RagPipeline};
use prism_core::{EngineOptions, PrismEngine};
use prism_device::DeviceSpec;
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig};
use prism_serve::{PrismServer, ServeConfig};
use prism_storage::Container;

fn fixture(tag: &str) -> (Model, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config, 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!(
        "prism-apps-serve-{tag}-{}.prsm",
        std::process::id()
    ));
    model.write_container(&path).unwrap();
    (model, path)
}

fn server(model: &Model, path: &std::path::Path) -> PrismServer {
    let engine = PrismEngine::new(
        Container::open(path).unwrap(),
        model.config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap();
    PrismServer::start(
        engine,
        ServeConfig {
            workers: 2,
            max_batch_requests: 4,
            ..Default::default()
        },
    )
    .unwrap()
}

fn corpus(model: &Model) -> Corpus {
    Corpus::generate(CorpusSpec {
        vocab_size: model.config.vocab_size,
        doc_len: 24,
        docs_per_query: 24,
        queries: 4,
        gold_per_query: 4,
        seed: 3,
    })
}

#[test]
fn rag_pipeline_over_serving_session() {
    let (model, path) = fixture("rag");
    let srv = server(&model, &path);

    let mut rag = RagPipeline::new(
        corpus(&model),
        model.weights.embedding.clone(),
        srv.session("rag-tenant"),
        model.config.max_seq,
        ModelConfig::qwen3_8b(),
        DeviceSpec::a800(),
    )
    .unwrap();

    let mut total_precision = 0.0;
    for q in 0..4 {
        let ans = rag.answer(q, 4).unwrap();
        assert_eq!(ans.top_docs.len(), 4);
        total_precision += ans.gold_precision;
    }
    let avg = total_precision / 4.0;
    assert!(avg >= 0.5, "served RAG gold precision {avg} too low");
    assert!(
        srv.stats().snapshot().completed >= 4,
        "queries must flow through the server"
    );
    srv.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn served_rag_matches_dedicated_engine() {
    let (model, path) = fixture("rag-parity");

    fn run<R: prism_baselines::Reranker>(rag: &mut RagPipeline<R>) -> Vec<Vec<usize>> {
        (0..4).map(|q| rag.answer(q, 4).unwrap().top_docs).collect()
    }
    let answers = |use_server: bool| -> Vec<Vec<usize>> {
        if use_server {
            let srv = server(&model, &path);
            let mut rag = RagPipeline::new(
                corpus(&model),
                model.weights.embedding.clone(),
                srv.session("parity"),
                model.config.max_seq,
                ModelConfig::qwen3_8b(),
                DeviceSpec::a800(),
            )
            .unwrap();
            let out = run(&mut rag);
            srv.shutdown();
            out
        } else {
            let engine = PrismEngine::new(
                Container::open(&path).unwrap(),
                model.config.clone(),
                EngineOptions::default(),
                MemoryMeter::new(),
            )
            .unwrap();
            let mut rag = RagPipeline::new(
                corpus(&model),
                model.weights.embedding.clone(),
                engine,
                model.config.max_seq,
                ModelConfig::qwen3_8b(),
                DeviceSpec::a800(),
            )
            .unwrap();
            run(&mut rag)
        }
    };

    // Both paths execute the identical per-request computation: the
    // dedicated engine's request counter assigns tags 1..=4 and the
    // server's submission tickets assign the same 1..=4, so the document
    // rankings must agree exactly.
    let served = answers(true);
    let dedicated = answers(false);
    for (q, (s, d)) in served.iter().zip(&dedicated).enumerate() {
        assert_eq!(s, d, "query {q}: served and dedicated rankings differ");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn agent_memory_over_serving_session() {
    let (model, path) = fixture("agent");
    let srv = server(&model, &path);

    let mut agent = AgentMemory::new(
        AgentScenario::Video,
        Some(srv.session("agent-tenant")),
        model.config.vocab_size,
        model.config.max_seq,
        DeviceSpec::a800(),
        1,
    );
    let mut hits = 0;
    let mut steps = 0;
    for t in 0..12_u64 {
        let r = agent.run_task(t).unwrap();
        hits += r.cache_hits;
        steps += r.steps;
        assert!(
            r.rerank_us > 0,
            "reranking must be measured through serving"
        );
    }
    assert!(
        hits * 3 >= steps,
        "too few trajectory-cache hits: {hits}/{steps}"
    );
    assert!(srv.stats().snapshot().completed >= steps as u64);
    srv.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The RAG pipeline over the unified facade: `ServiceReranker` on a
/// `LocalService` and on the server's `RemoteService` must both produce
/// exactly the rankings of a pipeline holding a dedicated engine.
#[test]
fn rag_over_the_facade_matches_dedicated_engine() {
    use prism_api::LocalService;
    use prism_apps::ServiceReranker;

    let (model, path) = fixture("facade");

    fn run<R: prism_baselines::Reranker>(rag: &mut RagPipeline<R>) -> Vec<Vec<usize>> {
        (0..4).map(|q| rag.answer(q, 4).unwrap().top_docs).collect()
    }
    let engine = |path: &std::path::Path| {
        PrismEngine::new(
            Container::open(path).unwrap(),
            model.config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )
        .unwrap()
    };
    fn pipeline<R: prism_baselines::Reranker>(model: &Model, reranker: R) -> RagPipeline<R> {
        RagPipeline::new(
            corpus(model),
            model.weights.embedding.clone(),
            reranker,
            model.config.max_seq,
            ModelConfig::qwen3_8b(),
            DeviceSpec::a800(),
        )
        .unwrap()
    }

    let dedicated = run(&mut pipeline(&model, engine(&path)));

    let local = ServiceReranker::new(LocalService::new(engine(&path)));
    assert_eq!(
        run(&mut pipeline(&model, local)),
        dedicated,
        "LocalService diverged"
    );

    let srv = server(&model, &path);
    let remote = ServiceReranker::new(srv.service("facade-tenant"));
    assert_eq!(
        run(&mut pipeline(&model, remote)),
        dedicated,
        "RemoteService diverged"
    );
    srv.shutdown();

    std::fs::remove_file(&path).unwrap();
}
