//! The paper's three real-world on-device applications (§6.3), built on the
//! PRISM engine and the baseline rerankers:
//!
//! * [`rag`] — a personal-assistant RAG pipeline: hybrid retrieval (BM25
//!   keyword search + bi-encoder vector search over a synthetic personal
//!   corpus), cross-encoder reranking of the merged candidates, and an LLM
//!   generation stage costed by the device model.
//! * [`agent_memory`] — a GUI-agent action cache: past trajectories are
//!   selected by the reranker; a hit replays cached actions instead of
//!   invoking the expensive VLM.
//! * [`long_context`] — LLM long-context selection: a reranker picks the
//!   most relevant context segments to fit the generation model's window.
//!
//! The retrieval substrates ([`retrieval::Bm25Index`],
//! [`retrieval::VectorIndex`]) are real implementations; only the
//! downstream LLM/VLM stages are costed analytically (`prism-device`), as
//! they run on server GPUs in the paper's setup.

pub mod agent_memory;
pub mod corpus;
pub mod long_context;
pub mod rag;
pub mod retrieval;
pub mod service;

pub use agent_memory::{AgentMemory, AgentScenario, AgentTaskResult};
pub use corpus::{Corpus, CorpusDoc, CorpusQuery};
pub use long_context::{LcsOutcome, LcsStrategy, LongContextSelector};
pub use rag::{RagAnswer, RagPipeline, RagStageLatency};
pub use retrieval::{Bm25Index, VectorIndex};
pub use service::ServiceReranker;

pub use prism_core::{PrismError, Result};
