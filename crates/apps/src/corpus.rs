//! Synthetic personal corpus shared by the §6.3 applications.
//!
//! Documents are standalone token sequences (no query prefix). Each query
//! owns a small set of rare *query terms*; a document's relevance to the
//! query controls both how many of those terms it contains (the lexical
//! channel BM25 keys on) and its on-topic token fraction (the semantic
//! channel the bi-encoder and cross-encoder key on). Gold labels follow
//! the planted relevance.

use prism_model::semantics::{anti_topic_token_range, background_token_range, topic_token_range};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One corpus document.
#[derive(Debug, Clone)]
pub struct CorpusDoc {
    /// Token sequence.
    pub tokens: Vec<u32>,
    /// Planted relevance to the owning query, in `[0, 1]`.
    pub relevance: f32,
    /// Whether this document is gold for the owning query.
    pub gold: bool,
}

/// A query with its slice of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusQuery {
    /// Query token sequence (rare terms + topic markers).
    pub tokens: Vec<u32>,
    /// Ids (into [`Corpus::docs`]) of this query's candidate documents.
    pub doc_ids: Vec<usize>,
    /// Ids of the gold documents.
    pub gold_ids: Vec<usize>,
}

/// A generated corpus with queries.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All documents.
    pub docs: Vec<CorpusDoc>,
    /// All queries.
    pub queries: Vec<CorpusQuery>,
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// Vocabulary size of the serving model.
    pub vocab_size: usize,
    /// Maximum document length in tokens.
    pub doc_len: usize,
    /// Documents per query (candidate pool).
    pub docs_per_query: usize,
    /// Number of queries.
    pub queries: usize,
    /// Gold documents per query.
    pub gold_per_query: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Corpus {
    /// Generates a corpus.
    pub fn generate(spec: CorpusSpec) -> Corpus {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let (t0, t1) = topic_token_range(spec.vocab_size);
        let (a0, a1) = anti_topic_token_range(spec.vocab_size);
        let (b0, b1) = background_token_range(spec.vocab_size);
        let mut docs = Vec::new();
        let mut queries = Vec::new();
        for _q in 0..spec.queries {
            // Rare query terms from the upper background band (low Zipf
            // mass -> high IDF).
            let qterm_base = b0 + (b1 - b0) * 3 / 4;
            let query_terms: Vec<u32> = (0..4)
                .map(|_| qterm_base + rng.gen_range(0..(b1 - qterm_base)))
                .collect();
            let mut tokens = query_terms.clone();
            tokens.push(t0 + rng.gen_range(0..t1 - t0)); // One topic marker.

            let mut doc_ids = Vec::with_capacity(spec.docs_per_query);
            let mut gold_ids = Vec::new();
            for d in 0..spec.docs_per_query {
                let gold = d < spec.gold_per_query;
                let relevance = if gold {
                    0.75 + rng.gen::<f32>() * 0.2
                } else if d < spec.docs_per_query / 2 {
                    0.35 + rng.gen::<f32>() * 0.2
                } else {
                    0.05 + rng.gen::<f32>() * 0.2
                };
                let mut dt = Vec::with_capacity(spec.doc_len);
                for _ in 0..spec.doc_len {
                    let u: f32 = rng.gen();
                    let p_qterm = 0.05 + 0.25 * relevance;
                    let p_topic = 0.10 + 0.45 * relevance;
                    let p_anti = 0.10 + 0.45 * (1.0 - relevance);
                    let tok = if u < p_qterm {
                        query_terms[rng.gen_range(0..query_terms.len())]
                    } else if u < p_qterm + p_topic {
                        t0 + rng.gen_range(0..t1 - t0)
                    } else if u < p_qterm + p_topic + p_anti {
                        a0 + rng.gen_range(0..a1 - a0)
                    } else {
                        b0 + rng.gen_range(0..b1 - b0)
                    };
                    dt.push(tok);
                }
                let id = docs.len();
                docs.push(CorpusDoc {
                    tokens: dt,
                    relevance,
                    gold,
                });
                doc_ids.push(id);
                if gold {
                    gold_ids.push(id);
                }
            }
            queries.push(CorpusQuery {
                tokens,
                doc_ids,
                gold_ids,
            });
        }
        Corpus { docs, queries }
    }

    /// Builds the cross-encoder input for (query, doc), truncated to
    /// `max_seq`.
    pub fn pair_input(&self, query: &CorpusQuery, doc_id: usize, max_seq: usize) -> Vec<u32> {
        let mut tokens = query.tokens.clone();
        tokens.extend_from_slice(&self.docs[doc_id].tokens);
        tokens.truncate(max_seq);
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CorpusSpec {
        CorpusSpec {
            vocab_size: 2048,
            doc_len: 40,
            docs_per_query: 20,
            queries: 3,
            gold_per_query: 4,
            seed: 11,
        }
    }

    #[test]
    fn corpus_shape() {
        let c = Corpus::generate(spec());
        assert_eq!(c.queries.len(), 3);
        assert_eq!(c.docs.len(), 60);
        for q in &c.queries {
            assert_eq!(q.doc_ids.len(), 20);
            assert_eq!(q.gold_ids.len(), 4);
            for &g in &q.gold_ids {
                assert!(c.docs[g].gold);
                assert!(c.docs[g].relevance >= 0.7);
            }
        }
    }

    #[test]
    fn gold_docs_share_query_terms() {
        let c = Corpus::generate(spec());
        let q = &c.queries[0];
        let qterms: std::collections::HashSet<u32> = q.tokens[..4].iter().copied().collect();
        let overlap =
            |doc: &CorpusDoc| -> usize { doc.tokens.iter().filter(|t| qterms.contains(t)).count() };
        let gold_avg: f64 = q
            .gold_ids
            .iter()
            .map(|&g| overlap(&c.docs[g]) as f64)
            .sum::<f64>()
            / q.gold_ids.len() as f64;
        let tail: Vec<usize> = q.doc_ids[q.doc_ids.len() - 4..].to_vec();
        let low_avg: f64 = tail
            .iter()
            .map(|&g| overlap(&c.docs[g]) as f64)
            .sum::<f64>()
            / 4.0;
        assert!(
            gold_avg > low_avg,
            "gold docs must contain more query terms ({gold_avg} vs {low_avg})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(spec());
        let b = Corpus::generate(spec());
        assert_eq!(a.docs.len(), b.docs.len());
        assert_eq!(a.docs[0].tokens, b.docs[0].tokens);
        assert_eq!(a.queries[1].tokens, b.queries[1].tokens);
    }

    #[test]
    fn pair_input_truncates() {
        let c = Corpus::generate(spec());
        let q = &c.queries[0];
        let pair = c.pair_input(q, q.doc_ids[0], 16);
        assert_eq!(pair.len(), 16);
        assert!(pair.starts_with(&q.tokens[..4]));
    }
}
