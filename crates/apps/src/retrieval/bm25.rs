//! A compact BM25 inverted index (the pipeline's keyword-retrieval stage).

use std::collections::HashMap;

/// Inverted index with BM25 ranking (k1 = 1.2, b = 0.75).
#[derive(Debug, Default)]
pub struct Bm25Index {
    /// term -> postings of (doc, term frequency).
    postings: HashMap<u32, Vec<(usize, u32)>>,
    doc_lens: Vec<usize>,
    total_len: usize,
}

const K1: f64 = 1.2;
const B: f64 = 0.75;

impl Bm25Index {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Adds a document; returns its id (insertion order).
    pub fn add_doc(&mut self, tokens: &[u32]) -> usize {
        let id = self.doc_lens.len();
        let mut tf: HashMap<u32, u32> = HashMap::new();
        for &t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (t, f) in tf {
            self.postings.entry(t).or_default().push((id, f));
        }
        self.doc_lens.push(tokens.len());
        self.total_len += tokens.len();
        id
    }

    /// BM25 scores for a query; returns up to `top_n` `(doc, score)` pairs
    /// in descending score order (only docs matching ≥1 term).
    pub fn search(&self, query: &[u32], top_n: usize) -> Vec<(usize, f64)> {
        if self.doc_lens.is_empty() {
            return Vec::new();
        }
        let n = self.doc_lens.len() as f64;
        let avgdl = self.total_len as f64 / n;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        // Deduplicate query terms (standard BM25 treats the query as a set;
        // repeated terms would double-count).
        let mut terms: Vec<u32> = query.to_vec();
        terms.sort_unstable();
        terms.dedup();
        for t in terms {
            let Some(posting) = self.postings.get(&t) else {
                continue;
            };
            let df = posting.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in posting {
                let dl = self.doc_lens[doc] as f64;
                let tf = tf as f64;
                let score = idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avgdl));
                *scores.entry(doc).or_insert(0.0) += score;
            }
        }
        let mut out: Vec<(usize, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(top_n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> Bm25Index {
        let mut idx = Bm25Index::new();
        idx.add_doc(&[1, 2, 3, 4]); // doc 0
        idx.add_doc(&[1, 1, 1, 5]); // doc 1: heavy on term 1
        idx.add_doc(&[6, 7, 8, 9]); // doc 2: disjoint
        idx.add_doc(&[2, 3]); // doc 3: short
        idx
    }

    #[test]
    fn retrieves_matching_docs_only() {
        let idx = small_index();
        let hits = idx.search(&[6], 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn rare_terms_score_higher_than_common() {
        let mut idx = Bm25Index::new();
        // term 1 in every doc, term 9 in one.
        for i in 0..10 {
            if i == 0 {
                idx.add_doc(&[1, 9]);
            } else {
                idx.add_doc(&[1, 2]);
            }
        }
        let hits = idx.search(&[9, 1], 10);
        assert_eq!(hits[0].0, 0, "doc with the rare term must rank first");
        assert!(hits[0].1 > hits[1].1 * 1.5);
    }

    #[test]
    fn term_frequency_saturates() {
        let idx = small_index();
        let hits = idx.search(&[1], 10);
        // Doc 1 has tf=3 of term 1 vs doc 0's tf=1: higher but not 3x.
        let d1 = hits.iter().find(|h| h.0 == 1).unwrap().1;
        let d0 = hits.iter().find(|h| h.0 == 0).unwrap().1;
        assert!(d1 > d0);
        assert!(d1 < d0 * 3.0);
    }

    #[test]
    fn query_terms_are_deduplicated() {
        let idx = small_index();
        let once = idx.search(&[2], 10);
        let thrice = idx.search(&[2, 2, 2], 10);
        assert_eq!(once, thrice);
    }

    #[test]
    fn top_n_truncates() {
        let idx = small_index();
        let hits = idx.search(&[2, 3], 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_index_and_no_match() {
        let idx = Bm25Index::new();
        assert!(idx.search(&[1], 5).is_empty());
        let idx = small_index();
        assert!(idx.search(&[999], 5).is_empty());
        assert_eq!(idx.num_docs(), 4);
    }
}
