//! Dense retrieval: bi-encoder embeddings over a flat / IVF index.
//!
//! The bi-encoder mean-pools the model's token embedding table — the
//! classic two-tower shortcut whose precision ceiling motivates
//! cross-encoder reranking (§2.1). The index offers exact (flat) search
//! and an IVF mode (k-means coarse quantizer, probed lists) standing in
//! for the paper's DiskANN-backed Milvus.

use prism_tensor::Tensor;

use crate::Result;

/// Mean-pooled bi-encoder document/query embedding.
pub fn embed_mean(table: &Tensor, tokens: &[u32]) -> Result<Vec<f32>> {
    let d = table.cols();
    let mut out = vec![0.0_f32; d];
    if tokens.is_empty() {
        return Ok(out);
    }
    for &t in tokens {
        let row = table.row(t as usize)?;
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    let inv = 1.0 / tokens.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    Ok(out)
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// A dense vector index with flat and IVF search modes.
pub struct VectorIndex {
    dim: usize,
    vectors: Vec<Vec<f32>>,
    /// IVF state: coarse centroids and per-list member ids.
    ivf: Option<Ivf>,
}

struct Ivf {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
}

impl VectorIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        VectorIndex {
            dim,
            vectors: Vec::new(),
            ivf: None,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Adds a vector; returns its id. Invalidates any trained IVF.
    pub fn add(&mut self, v: Vec<f32>) -> Result<usize> {
        if v.len() != self.dim {
            return Err(crate::PrismError::InvalidRequest(format!(
                "vector dim {} != index dim {}",
                v.len(),
                self.dim
            )));
        }
        self.ivf = None;
        self.vectors.push(v);
        Ok(self.vectors.len() - 1)
    }

    /// Trains an IVF coarse quantizer with `nlist` lists (simple k-means on
    /// the stored vectors; deterministic for a seed).
    pub fn train_ivf(&mut self, nlist: usize, iterations: usize, seed: u64) {
        let n = self.vectors.len();
        if n == 0 || nlist == 0 {
            return;
        }
        let nlist = nlist.min(n);
        // Seed centroids deterministically by striding the data.
        let mut centroids: Vec<Vec<f32>> = (0..nlist)
            .map(|i| self.vectors[(i * n / nlist + seed as usize) % n].clone())
            .collect();
        let mut assignment = vec![0_usize; n];
        for _ in 0..iterations.max(1) {
            for (i, v) in self.vectors.iter().enumerate() {
                let mut best = 0;
                let mut best_sim = f32::NEG_INFINITY;
                for (c, cen) in centroids.iter().enumerate() {
                    let s = cosine(v, cen);
                    if s > best_sim {
                        best_sim = s;
                        best = c;
                    }
                }
                assignment[i] = best;
            }
            let mut sums = vec![vec![0.0_f32; self.dim]; nlist];
            let mut counts = vec![0_usize; nlist];
            for (i, v) in self.vectors.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, &x) in sums[assignment[i]].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (i, &a) in assignment.iter().enumerate() {
            lists[a].push(i);
        }
        self.ivf = Some(Ivf { centroids, lists });
    }

    /// Exact top-`n` search by cosine similarity.
    pub fn search_flat(&self, query: &[f32], top_n: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(query, v)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(top_n);
        scored
    }

    /// IVF top-`n` search probing `nprobe` coarse lists; falls back to flat
    /// search when no IVF is trained.
    pub fn search_ivf(&self, query: &[f32], top_n: usize, nprobe: usize) -> Vec<(usize, f32)> {
        let Some(ivf) = &self.ivf else {
            return self.search_flat(query, top_n);
        };
        let mut by_centroid: Vec<(usize, f32)> = ivf
            .centroids
            .iter()
            .enumerate()
            .map(|(c, cen)| (c, cosine(query, cen)))
            .collect();
        by_centroid.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut scored: Vec<(usize, f32)> = Vec::new();
        for &(c, _) in by_centroid.iter().take(nprobe.max(1)) {
            for &i in &ivf.lists[c] {
                scored.push((i, cosine(query, &self.vectors[i])));
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(top_n);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.05_f32; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn flat_search_finds_nearest() {
        let mut idx = VectorIndex::new(4);
        for hot in 0..4 {
            idx.add(unit(4, hot)).unwrap();
        }
        let hits = idx.search_flat(&unit(4, 2), 2);
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut idx = VectorIndex::new(3);
        assert!(idx.add(vec![1.0; 4]).is_err());
        assert!(idx.is_empty());
    }

    #[test]
    fn ivf_recall_close_to_flat() {
        let mut idx = VectorIndex::new(8);
        // Three well-separated clusters of 20 vectors each.
        for c in 0..3 {
            for j in 0..20 {
                let mut v = vec![0.0_f32; 8];
                v[c * 2] = 1.0;
                v[c * 2 + 1] = 0.2 + 0.01 * j as f32;
                idx.add(v).unwrap();
            }
        }
        idx.train_ivf(3, 5, 1);
        let mut q = vec![0.0_f32; 8];
        q[2] = 1.0; // Cluster 1's direction.
        let flat = idx.search_flat(&q, 5);
        let ivf = idx.search_ivf(&q, 5, 1);
        let flat_ids: Vec<usize> = flat.iter().map(|h| h.0).collect();
        let overlap = ivf.iter().filter(|h| flat_ids.contains(&h.0)).count();
        assert!(overlap >= 4, "IVF recall {overlap}/5 too low");
    }

    #[test]
    fn ivf_untrained_falls_back() {
        let mut idx = VectorIndex::new(2);
        idx.add(vec![1.0, 0.0]).unwrap();
        idx.add(vec![0.0, 1.0]).unwrap();
        let hits = idx.search_ivf(&[1.0, 0.1], 1, 2);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn adding_invalidates_ivf() {
        let mut idx = VectorIndex::new(2);
        idx.add(vec![1.0, 0.0]).unwrap();
        idx.train_ivf(1, 2, 0);
        idx.add(vec![0.0, 1.0]).unwrap();
        // Falls back to flat (IVF dropped), still finds the new vector.
        let hits = idx.search_ivf(&[0.0, 1.0], 1, 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn embed_mean_averages_rows() {
        let table = Tensor::from_fn(4, 2, |r, _| r as f32);
        let e = embed_mean(&table, &[0, 2]).unwrap();
        assert_eq!(e, vec![1.0, 1.0]);
        let empty = embed_mean(&table, &[]).unwrap();
        assert_eq!(empty, vec![0.0, 0.0]);
        assert!(embed_mean(&table, &[9]).is_err());
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
