//! First-stage retrieval substrates: lexical (BM25) and dense (bi-encoder
//! vector index).

pub mod bm25;
pub mod vector;

pub use bm25::Bm25Index;
pub use vector::VectorIndex;
