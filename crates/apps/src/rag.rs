//! The RAG personal-assistant pipeline (§6.3, Fig. 11).
//!
//! Offline: the corpus is indexed into a BM25 inverted index and a
//! bi-encoder vector index. Online: hybrid search retrieves top-10
//! keyword and top-10 dense candidates, the cross-encoder reranker
//! consolidates them into the final top-K, and an LLM generation stage
//! (Qwen3-32B on an A800 server in the paper's setup) is costed by the
//! device model.

use std::collections::BTreeSet;
use std::time::Instant;

use prism_baselines::Reranker;
use prism_device::{cost, DeviceSpec};
use prism_model::{ModelConfig, SequenceBatch};
use prism_tensor::Tensor;

use crate::retrieval::vector::embed_mean;
use crate::retrieval::{Bm25Index, VectorIndex};
use crate::{Corpus, Result};

/// Per-stage latency of one RAG query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RagStageLatency {
    /// Sparse (keyword) retrieval, microseconds (measured).
    pub sparse_us: u64,
    /// Dense (vector) retrieval, microseconds (measured).
    pub dense_us: u64,
    /// Reranking, microseconds (measured).
    pub rerank_us: u64,
    /// First-token generation latency, seconds (device-model cost).
    pub first_token_s: f64,
}

impl RagStageLatency {
    /// End-to-end seconds with measured stages plus the costed generation.
    pub fn total_s(&self) -> f64 {
        (self.sparse_us + self.dense_us + self.rerank_us) as f64 / 1e6 + self.first_token_s
    }
}

/// Result of one RAG query.
#[derive(Debug, Clone)]
pub struct RagAnswer {
    /// Final top-K document ids, best first.
    pub top_docs: Vec<usize>,
    /// Precision of the top-K against the corpus' gold documents.
    ///
    /// The synthetic corpus models a single-domain personal corpus: the
    /// planted relevance is absolute topicness, so every gold document is
    /// a correct answer regardless of which query seeded it (DESIGN.md §2).
    pub gold_precision: f64,
    /// Stage latencies.
    pub stages: RagStageLatency,
}

/// The assembled pipeline around a pluggable reranker.
pub struct RagPipeline<R: Reranker> {
    corpus: Corpus,
    bm25: Bm25Index,
    vectors: VectorIndex,
    embedding_table: Tensor,
    reranker: R,
    max_seq: usize,
    gen_model: ModelConfig,
    gen_device: DeviceSpec,
    retrieve_n: usize,
}

impl<R: Reranker> RagPipeline<R> {
    /// Indexes `corpus` and wires the reranker plus the generation stage's
    /// cost model.
    pub fn new(
        corpus: Corpus,
        embedding_table: Tensor,
        reranker: R,
        max_seq: usize,
        gen_model: ModelConfig,
        gen_device: DeviceSpec,
    ) -> Result<Self> {
        let mut bm25 = Bm25Index::new();
        let mut vectors = VectorIndex::new(embedding_table.cols());
        for doc in &corpus.docs {
            bm25.add_doc(&doc.tokens);
            vectors.add(embed_mean(&embedding_table, &doc.tokens)?)?;
        }
        // IVF standing in for the DiskANN-backed Milvus store.
        vectors.train_ivf((corpus.docs.len() / 16).max(1), 4, 7);
        Ok(RagPipeline {
            corpus,
            bm25,
            vectors,
            embedding_table,
            reranker,
            max_seq,
            gen_model,
            gen_device,
            retrieve_n: 10,
        })
    }

    /// Number of candidates each retrieval channel contributes.
    pub fn set_retrieve_n(&mut self, n: usize) {
        self.retrieve_n = n.max(1);
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Answers query `query_idx`, selecting the top-`k` documents.
    pub fn answer(&mut self, query_idx: usize, k: usize) -> Result<RagAnswer> {
        let query = self.corpus.queries.get(query_idx).cloned().ok_or_else(|| {
            crate::PrismError::InvalidRequest(format!("query {query_idx} out of range"))
        })?;

        // --- Hybrid retrieval ---
        let t = Instant::now();
        let sparse = self.bm25.search(&query.tokens, self.retrieve_n);
        let sparse_us = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let qvec = embed_mean(&self.embedding_table, &query.tokens)?;
        let dense = self.vectors.search_ivf(&qvec, self.retrieve_n, 4);
        let dense_us = t.elapsed().as_micros() as u64;

        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        candidates.extend(sparse.iter().map(|&(d, _)| d));
        candidates.extend(dense.iter().map(|&(d, _)| d));
        let candidates: Vec<usize> = candidates.into_iter().collect();
        if candidates.is_empty() {
            return Err(crate::PrismError::InvalidRequest(
                "retrieval returned no candidates".into(),
            ));
        }

        // --- Cross-encoder reranking ---
        let t = Instant::now();
        let pair_inputs: Vec<Vec<u32>> = candidates
            .iter()
            .map(|&d| self.corpus.pair_input(&query, d, self.max_seq))
            .collect();
        let batch = SequenceBatch::new(&pair_inputs)?;
        let outcome = self.reranker.rerank(&batch, k.min(candidates.len()))?;
        let rerank_us = t.elapsed().as_micros() as u64;
        let top_docs: Vec<usize> = outcome.top_ids().iter().map(|&i| candidates[i]).collect();

        // --- Generation stage (costed) ---
        // Prompt = query + selected documents, scaled from mini-token
        // counts to the paper's ~512-token chunks.
        let mini_tokens: usize = top_docs
            .iter()
            .map(|&d| self.corpus.docs[d].tokens.len())
            .sum::<usize>()
            + query.tokens.len();
        let scale = 512 / self.max_seq.max(1);
        let prompt_tokens = (mini_tokens * scale.max(1)) as u64;
        let first_token_s =
            cost::first_token_time_s(&self.gen_model, &self.gen_device, prompt_tokens);

        let global_gold: Vec<usize> = self
            .corpus
            .docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.gold.then_some(i))
            .collect();
        let gold_precision = prism_metrics::precision_at_k(&top_docs, &global_gold, k);

        Ok(RagAnswer {
            top_docs,
            gold_precision,
            stages: RagStageLatency {
                sparse_us,
                dense_us,
                rerank_us,
                first_token_s,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use prism_baselines::HfVanilla;
    use prism_core::{EngineOptions, PrismEngine};
    use prism_metrics::MemoryMeter;
    use prism_model::{Model, ModelArch};
    use prism_storage::Container;

    fn fixture() -> (Model, std::path::PathBuf, Corpus) {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("prism-rag-{}.prsm", std::process::id()));
        model.write_container(&path).unwrap();
        let corpus = Corpus::generate(CorpusSpec {
            vocab_size: model.config.vocab_size,
            doc_len: 24,
            docs_per_query: 24,
            queries: 4,
            gold_per_query: 4,
            seed: 3,
        });
        (model, path, corpus)
    }

    fn hf_pipeline(
        model: &Model,
        path: &std::path::Path,
        corpus: Corpus,
    ) -> RagPipeline<HfVanilla> {
        let container = Container::open(path).unwrap();
        let hf = HfVanilla::new(&container, model.config.clone(), 8, MemoryMeter::new()).unwrap();
        RagPipeline::new(
            corpus,
            model.weights.embedding.clone(),
            hf,
            model.config.max_seq,
            ModelConfig::qwen3_8b(), // stands in for the 32B generation model
            DeviceSpec::a800(),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_answers_with_gold_docs() {
        let (model, path, corpus) = fixture();
        let mut rag = hf_pipeline(&model, &path, corpus);
        let mut total_precision = 0.0;
        for q in 0..4 {
            let ans = rag.answer(q, 4).unwrap();
            assert_eq!(ans.top_docs.len(), 4);
            total_precision += ans.gold_precision;
            assert!(ans.stages.first_token_s > 0.0);
            assert!(ans.stages.total_s() > ans.stages.first_token_s);
        }
        let avg = total_precision / 4.0;
        assert!(avg >= 0.5, "RAG gold precision {avg} too low");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prism_reranker_matches_hf_quality() {
        let (model, path, corpus) = fixture();
        let mut hf = hf_pipeline(&model, &path, corpus.clone());
        let container = Container::open(&path).unwrap();
        let engine = PrismEngine::new(
            container,
            model.config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )
        .unwrap();
        let mut prism = RagPipeline::new(
            corpus,
            model.weights.embedding.clone(),
            engine,
            model.config.max_seq,
            ModelConfig::qwen3_8b(),
            DeviceSpec::a800(),
        )
        .unwrap();

        let mut hf_p = 0.0;
        let mut prism_p = 0.0;
        for q in 0..4 {
            hf_p += hf.answer(q, 4).unwrap().gold_precision;
            prism_p += prism.answer(q, 4).unwrap().gold_precision;
        }
        assert!(
            prism_p >= hf_p - 0.5,
            "PRISM RAG precision {prism_p} vs HF {hf_p} (sum over 4 queries)"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_query_rejected() {
        let (model, path, corpus) = fixture();
        let mut rag = hf_pipeline(&model, &path, corpus);
        assert!(rag.answer(99, 4).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
