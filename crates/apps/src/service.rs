//! Running the applications over the unified `prism-api` facade.
//!
//! [`ServiceReranker`] adapts any [`SelectionService`] — the direct
//! [`LocalService`](prism_api::LocalService) or the server's
//! `RemoteService` — to the [`Reranker`] interface every application
//! pipeline (RAG, agent memory, long-context selection) consumes, so an
//! app written against the facade swaps backends without touching its
//! own code. Results are bit-identical across backends for the same
//! batch and options, the facade's core conformance property.

use prism_api::{SelectionService, ServiceError};
use prism_baselines::{RankOutcome, Reranker};
use prism_core::{PrismError, RequestOptions};
use prism_model::SequenceBatch;

/// [`Reranker`] over any facade backend.
pub struct ServiceReranker<S: SelectionService> {
    service: S,
    /// Options template applied to every rerank (the `k` field is
    /// replaced per call); carries priority / deadline / routing
    /// overrides into the backend's scheduler.
    template: RequestOptions,
}

impl<S: SelectionService> ServiceReranker<S> {
    /// Wraps a service with default request options.
    pub fn new(service: S) -> Self {
        ServiceReranker {
            service,
            template: RequestOptions::top_k(1),
        }
    }

    /// Replaces the options template (its `k` is overridden per call).
    pub fn with_options(mut self, template: RequestOptions) -> Self {
        self.template = template;
        self
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl<S: SelectionService> Reranker for ServiceReranker<S> {
    fn name(&self) -> &str {
        "PRISM-SERVICE"
    }

    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> prism_core::Result<RankOutcome> {
        let options = RequestOptions {
            k,
            ..self.template.clone()
        };
        let outcome = self
            .service
            .select(batch.clone(), options)
            .map_err(|e| match e {
                ServiceError::Cancelled => PrismError::Cancelled,
                ServiceError::DeadlineExceeded => PrismError::DeadlineExceeded,
                other => PrismError::InvalidRequest(format!("service: {other}")),
            })?;
        Ok(RankOutcome {
            ranked: outcome
                .selection
                .ranked
                .iter()
                .map(|r| (r.id, r.score))
                .collect(),
            scores: outcome.selection.last_scores,
        })
    }
}
