//! LLM long-context selection (§6.3, Figs. 14–15).
//!
//! An ultra-long context is split into segments; a reranker selects the
//! top-K segments that fit the generation model's window. Compared
//! strategies: reranked selection (PRISM or HF) versus no reranking
//! (truncate to the window), which both wastes prefill compute on
//! irrelevant segments and distracts the model.

use prism_baselines::Reranker;
use prism_device::{cost, DeviceSpec};
use prism_model::semantics::{anti_topic_token_range, background_token_range, topic_token_range};
use prism_model::{ModelConfig, SequenceBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Result;

/// Generates a token sequence whose planted relevance is `relevance` —
/// the shared building block for context segments and trajectory pairs.
pub fn relevance_sequence(relevance: f32, len: usize, vocab_size: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (t0, t1) = topic_token_range(vocab_size);
    let (a0, a1) = anti_topic_token_range(vocab_size);
    let (b0, b1) = background_token_range(vocab_size);
    (0..len.max(2))
        .map(|_| {
            let u: f32 = rng.gen();
            let p_topic = 0.15 + 0.6 * relevance;
            let p_anti = 0.15 + 0.6 * (1.0 - relevance);
            if u < p_topic * 0.6 {
                t0 + rng.gen_range(0..t1 - t0)
            } else if u < (p_topic + p_anti) * 0.6 {
                a0 + rng.gen_range(0..a1 - a0)
            } else {
                b0 + rng.gen_range(0..b1 - b0)
            }
        })
        .collect()
}

/// How context segments are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcsStrategy {
    /// Rerank segments and keep the top-K (PRISM or HF provides the
    /// reranker).
    Reranked,
    /// No reranker: keep the first segments until the window is full.
    TruncateHead,
}

/// Outcome of one long-context question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcsOutcome {
    /// Precision of the selected segments against the gold segments.
    pub segment_precision: f64,
    /// Measured reranking time, microseconds (zero for truncation).
    pub rerank_us: u64,
    /// Costed generation time (prefill of selected context + decode),
    /// seconds.
    pub generation_s: f64,
    /// Tokens fed to the generator (paper scale).
    pub context_tokens: u64,
}

impl LcsOutcome {
    /// End-to-end seconds.
    pub fn total_s(&self) -> f64 {
        self.rerank_us as f64 / 1e6 + self.generation_s
    }
}

/// A long-context selection task generator plus executor.
pub struct LongContextSelector<R: Reranker> {
    reranker: Option<R>,
    vocab_size: usize,
    segment_len: usize,
    segments: usize,
    gold_segments: usize,
    window_segments: usize,
    gen_model: ModelConfig,
    gen_device: DeviceSpec,
    /// Paper-scale tokens per segment (for generation costing).
    paper_segment_tokens: u64,
}

impl<R: Reranker> LongContextSelector<R> {
    /// Creates a selector. `reranker = None` uses head truncation.
    // The experiment sweeps every one of these knobs; a config struct
    // would only move the argument list one level out.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        reranker: Option<R>,
        vocab_size: usize,
        segment_len: usize,
        segments: usize,
        gold_segments: usize,
        window_segments: usize,
        gen_model: ModelConfig,
        gen_device: DeviceSpec,
    ) -> Self {
        LongContextSelector {
            reranker,
            vocab_size,
            segment_len,
            segments,
            gold_segments,
            window_segments,
            gen_model,
            gen_device,
            paper_segment_tokens: 512,
        }
    }

    /// The strategy this selector embodies.
    pub fn strategy(&self) -> LcsStrategy {
        if self.reranker.is_some() {
            LcsStrategy::Reranked
        } else {
            LcsStrategy::TruncateHead
        }
    }

    /// Runs one question: build segments, select, cost the generation.
    pub fn run(&mut self, question_idx: u64) -> Result<LcsOutcome> {
        let mut rng = StdRng::seed_from_u64(question_idx.wrapping_mul(0x9E37_79B9) | 1);
        // Gold segments scattered through the context.
        let mut gold_slots: Vec<usize> = Vec::new();
        while gold_slots.len() < self.gold_segments {
            let s = rng.gen_range(0..self.segments);
            if !gold_slots.contains(&s) {
                gold_slots.push(s);
            }
        }
        let mut inputs = Vec::with_capacity(self.segments);
        for s in 0..self.segments {
            let relevance = if gold_slots.contains(&s) {
                0.8 + rng.gen::<f32>() * 0.15
            } else {
                0.05 + rng.gen::<f32>() * 0.35
            };
            inputs.push(relevance_sequence(
                relevance,
                self.segment_len,
                self.vocab_size,
                question_idx.wrapping_mul(31).wrapping_add(s as u64),
            ));
        }

        let (selected, rerank_us) = match self.reranker.as_mut() {
            Some(reranker) => {
                let batch = SequenceBatch::new(&inputs)?;
                let t = std::time::Instant::now();
                let outcome = reranker.rerank(&batch, self.window_segments)?;
                (outcome.top_ids(), t.elapsed().as_micros() as u64)
            }
            None => ((0..self.window_segments.min(self.segments)).collect(), 0),
        };

        let segment_precision =
            prism_metrics::precision_at_k(&selected, &gold_slots, self.window_segments);

        // Generation: prefill the selected context, decode an answer. The
        // truncation baseline feeds the whole window regardless of value.
        let context_tokens = selected.len() as u64 * self.paper_segment_tokens;
        let generation_s = cost::prefill_time_s(&self.gen_model, &self.gen_device, context_tokens)
            + cost::decode_time_s(&self.gen_model, &self.gen_device, 64);

        Ok(LcsOutcome {
            segment_precision,
            rerank_us,
            generation_s,
            context_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_baselines::HfVanilla;
    use prism_metrics::MemoryMeter;
    use prism_model::{Model, ModelArch};
    use prism_storage::Container;

    fn fixture() -> (Model, std::path::PathBuf) {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("prism-lcs-{}.prsm", std::process::id()));
        model.write_container(&path).unwrap();
        (model, path)
    }

    fn selector(
        model: &Model,
        path: &std::path::Path,
        rerank: bool,
    ) -> LongContextSelector<HfVanilla> {
        let reranker = rerank.then(|| {
            let container = Container::open(path).unwrap();
            HfVanilla::new(&container, model.config.clone(), 32, MemoryMeter::new()).unwrap()
        });
        LongContextSelector::new(
            reranker,
            model.config.vocab_size,
            16,
            24,
            4,
            6,
            ModelConfig::qwen3_4b(),
            prism_device::DeviceSpec::rtx5070_laptop(),
        )
    }

    #[test]
    fn reranked_selection_beats_truncation() {
        let (model, path) = fixture();
        let mut reranked = selector(&model, &path, true);
        let mut truncate = selector(&model, &path, false);
        assert_eq!(reranked.strategy(), LcsStrategy::Reranked);
        assert_eq!(truncate.strategy(), LcsStrategy::TruncateHead);
        let mut p_rerank = 0.0;
        let mut p_trunc = 0.0;
        let n = 8;
        for q in 0..n {
            p_rerank += reranked.run(q).unwrap().segment_precision;
            p_trunc += truncate.run(q).unwrap().segment_precision;
        }
        p_rerank /= n as f64;
        p_trunc /= n as f64;
        assert!(
            p_rerank > p_trunc + 0.2,
            "rerank precision {p_rerank} must clearly beat truncation {p_trunc}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generation_cost_scales_with_selected_context() {
        let (model, path) = fixture();
        let mut small = selector(&model, &path, false);
        small.window_segments = 2;
        let mut big = selector(&model, &path, false);
        big.window_segments = 12;
        let a = small.run(0).unwrap();
        let b = big.run(0).unwrap();
        assert!(b.context_tokens > a.context_tokens);
        assert!(b.generation_s > a.generation_s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn relevance_sequence_encodes_relevance() {
        use prism_model::semantics::token_signal;
        let v = 2048;
        let hi = relevance_sequence(0.95, 64, v, 1);
        let lo = relevance_sequence(0.05, 64, v, 1);
        let mean = |s: &[u32]| -> f32 {
            s.iter().map(|&t| token_signal(t, v)).sum::<f32>() / s.len() as f32
        };
        assert!(mean(&hi) > mean(&lo) + 0.3);
        // Deterministic and length-clamped.
        assert_eq!(relevance_sequence(0.5, 0, v, 9).len(), 2);
        assert_eq!(
            relevance_sequence(0.5, 8, v, 9),
            relevance_sequence(0.5, 8, v, 9)
        );
    }
}
