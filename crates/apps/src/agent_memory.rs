//! Agent memory: a reranker-backed action-trajectory cache (§6.3,
//! Figs. 12–13).
//!
//! A GUI agent caches successful action trajectories keyed by task
//! descriptions. For an incoming task, the reranker scores the cached
//! trajectories against the task; a sufficiently confident top-1 replays
//! the cached actions and skips the expensive VLM call. The serialized
//! `(task, trajectory)` pair the reranker scores is generated with planted
//! match quality (see DESIGN.md §2 — the trajectory payloads themselves
//! are simulated; the reranking workload is real).

use prism_baselines::Reranker;
use prism_device::{cost, DeviceSpec};
use prism_model::{ModelConfig, SequenceBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Result;

/// One of the paper's two agent workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentScenario {
    /// Video-app automation: smaller memory, higher match rate.
    Video,
    /// Community-app automation: larger memory, more distractors.
    Community,
}

impl AgentScenario {
    /// Scenario name as used in Fig. 12.
    pub fn name(&self) -> &'static str {
        match self {
            AgentScenario::Video => "video",
            AgentScenario::Community => "community",
        }
    }

    /// Number of cached trajectories.
    pub fn memory_size(&self) -> usize {
        match self {
            AgentScenario::Video => 12,
            AgentScenario::Community => 24,
        }
    }

    /// Probability an incoming task has a cached match.
    pub fn match_rate(&self) -> f64 {
        match self {
            AgentScenario::Video => 0.8,
            AgentScenario::Community => 0.65,
        }
    }

    /// GUI actions per task; every action consults the memory (the paper's
    /// tasks are multi-step trajectories).
    pub fn steps(&self) -> usize {
        match self {
            AgentScenario::Video => 4,
            AgentScenario::Community => 6,
        }
    }

    /// Environment-interaction time per task step, seconds (UI actions;
    /// identical across systems — the `Env` bars in Fig. 12).
    pub fn env_time_s(&self) -> f64 {
        match self {
            AgentScenario::Video => 6.0,
            AgentScenario::Community => 8.5,
        }
    }
}

/// Outcome of running one task through the agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentTaskResult {
    /// Whether the cache served at least one action of this task.
    pub cache_hit: bool,
    /// Actions served from the cache.
    pub cache_hits: usize,
    /// Actions in the task.
    pub steps: usize,
    /// Whether every executed action was correct for the task.
    pub success: bool,
    /// Total measured reranking time across actions, microseconds (zero
    /// when memory disabled).
    pub rerank_us: u64,
    /// Total costed VLM inference time, seconds (cache hits skip it).
    pub vlm_s: f64,
    /// Costed environment time, seconds.
    pub env_s: f64,
}

impl AgentTaskResult {
    /// Total task latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.rerank_us as f64 / 1e6 + self.vlm_s + self.env_s
    }
}

/// The reranker-backed trajectory cache.
pub struct AgentMemory<R: Reranker> {
    scenario: AgentScenario,
    reranker: Option<R>,
    accept_threshold: f32,
    /// Minimum score gap between the best and second-best trajectory: a
    /// genuine match dominates its distractors, while "best of nothing"
    /// sits in a tight pack.
    accept_margin: f32,
    vocab_size: usize,
    max_seq: usize,
    vlm_model: ModelConfig,
    vlm_device: DeviceSpec,
    rng: StdRng,
}

impl<R: Reranker> AgentMemory<R> {
    /// Creates the agent. `reranker = None` disables the memory (the
    /// paper's "Disable AM" baseline).
    pub fn new(
        scenario: AgentScenario,
        reranker: Option<R>,
        vocab_size: usize,
        max_seq: usize,
        vlm_device: DeviceSpec,
        seed: u64,
    ) -> Self {
        AgentMemory {
            scenario,
            reranker,
            accept_threshold: 0.52,
            accept_margin: 0.06,
            vocab_size,
            max_seq,
            // The paper's MobiMind-Decider-7B VLM: approximate with the
            // 8B-config cost (vision tower folded into prompt tokens).
            vlm_model: ModelConfig::qwen3_8b(),
            vlm_device,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the score needed to trust a cached trajectory.
    pub fn set_accept_threshold(&mut self, t: f32) {
        self.accept_threshold = t;
    }

    /// Sets the required gap between the best and second-best scores.
    pub fn set_accept_margin(&mut self, m: f32) {
        self.accept_margin = m;
    }

    /// Runs one multi-step task: each action consults the cache (when
    /// enabled), replays on a confident hit, and falls back to VLM
    /// inference otherwise.
    pub fn run_task(&mut self, task_idx: u64) -> Result<AgentTaskResult> {
        let env_s = self.scenario.env_time_s();
        let steps = self.scenario.steps();
        let n = self.scenario.memory_size();

        if self.reranker.is_none() {
            // Memory disabled: every action pays the VLM, always correct.
            return Ok(AgentTaskResult {
                cache_hit: false,
                cache_hits: 0,
                steps,
                success: true,
                rerank_us: 0,
                vlm_s: self.vlm_inference_s() * steps as f64,
                env_s,
            });
        }

        let mut cache_hits = 0_usize;
        let mut success = true;
        let mut rerank_us = 0_u64;
        let mut vlm_s = 0.0_f64;
        for step in 0..steps as u64 {
            let has_match = self.rng.gen::<f64>() < self.scenario.match_rate();
            // Pair inputs with planted match quality: one strong match
            // (when present), distractors low.
            let mut pair_inputs = Vec::with_capacity(n);
            let match_slot = if has_match {
                Some(((task_idx * 31 + step * 7 + 3) as usize) % n)
            } else {
                None
            };
            let seed = (task_idx * 131 + step) ^ 0xA5A5_5A5A;
            for slot in 0..n {
                let relevance = if Some(slot) == match_slot {
                    0.95
                } else {
                    0.05 + 0.15 * (((slot as u64).wrapping_mul(2654435761) >> 16) % 100) as f32
                        / 100.0
                };
                pair_inputs.push(crate::long_context::relevance_sequence(
                    relevance,
                    self.max_seq,
                    self.vocab_size,
                    seed.wrapping_add(slot as u64),
                ));
            }
            let batch = SequenceBatch::new(&pair_inputs)?;
            let t = std::time::Instant::now();
            let reranker = self.reranker.as_mut().expect("memory enabled");
            let outcome = reranker.rerank(&batch, 2.min(n))?;
            rerank_us += t.elapsed().as_micros() as u64;
            let (top_slot, top_score) = outcome.ranked[0];
            let runner_up = outcome.ranked.get(1).map_or(0.0, |&(_, s)| s);

            if top_score >= self.accept_threshold && top_score - runner_up >= self.accept_margin {
                cache_hits += 1;
                if match_slot != Some(top_slot) {
                    success = false;
                }
            } else {
                vlm_s += self.vlm_inference_s();
            }
        }
        Ok(AgentTaskResult {
            cache_hit: cache_hits > 0,
            cache_hits,
            steps,
            success,
            rerank_us,
            vlm_s,
            env_s,
        })
    }

    fn vlm_inference_s(&self) -> f64 {
        // Screenshot + instruction prompt, short action decode.
        cost::prefill_time_s(&self.vlm_model, &self.vlm_device, 3600)
            + cost::decode_time_s(&self.vlm_model, &self.vlm_device, 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_baselines::HfVanilla;
    use prism_metrics::MemoryMeter;
    use prism_model::{Model, ModelArch};
    use prism_storage::Container;

    fn fixture() -> (Model, std::path::PathBuf) {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("prism-am-{}.prsm", std::process::id()));
        model.write_container(&path).unwrap();
        (model, path)
    }

    fn reranker(model: &Model, path: &std::path::Path) -> HfVanilla {
        let container = Container::open(path).unwrap();
        HfVanilla::new(&container, model.config.clone(), 24, MemoryMeter::new()).unwrap()
    }

    #[test]
    fn cache_hits_skip_vlm_and_mostly_succeed() {
        let (model, path) = fixture();
        let mut agent = AgentMemory::new(
            AgentScenario::Video,
            Some(reranker(&model, &path)),
            model.config.vocab_size,
            model.config.max_seq,
            prism_device::DeviceSpec::a800(),
            1,
        );
        let mut hits = 0_usize;
        let mut step_total = 0_usize;
        let mut successes = 0_u64;
        let tasks: u64 = 20;
        for t in 0..tasks {
            let r = agent.run_task(t).unwrap();
            hits += r.cache_hits;
            step_total += r.steps;
            if r.cache_hits == r.steps {
                assert_eq!(r.vlm_s, 0.0, "all-hit task must skip the VLM");
            } else {
                assert!(r.vlm_s > 0.0);
            }
            assert!(r.rerank_us > 0);
            if r.success {
                successes += 1;
            }
        }
        assert!(
            hits * 3 >= step_total,
            "too few cache hits: {hits}/{step_total}"
        );
        assert!(hits < step_total, "some misses expected");
        let rate = successes as f64 / tasks as f64;
        // Mini-scale scores are noisier than the paper's full models (which
        // hold ~0.99); accept a small number of mis-replays.
        assert!(rate >= 0.85, "success rate {rate} too low");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disabled_memory_always_pays_vlm() {
        let (model, path) = fixture();
        let mut agent: AgentMemory<HfVanilla> = AgentMemory::new(
            AgentScenario::Community,
            None,
            model.config.vocab_size,
            model.config.max_seq,
            prism_device::DeviceSpec::a800(),
            2,
        );
        for t in 0..5 {
            let r = agent.run_task(t).unwrap();
            assert!(!r.cache_hit);
            assert_eq!(r.cache_hits, 0);
            assert!(r.success);
            assert!(r.vlm_s > 0.0);
            assert_eq!(r.rerank_us, 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_reduces_average_latency() {
        let (model, path) = fixture();
        let run = |with_memory: bool| -> f64 {
            let reranker = with_memory.then(|| reranker(&model, &path));
            let mut agent = AgentMemory::new(
                AgentScenario::Video,
                reranker,
                model.config.vocab_size,
                model.config.max_seq,
                prism_device::DeviceSpec::a800(),
                7,
            );
            let tasks = 16;
            (0..tasks)
                .map(|t| agent.run_task(t).unwrap().total_s())
                .sum::<f64>()
                / tasks as f64
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "memory should cut latency: with {with:.2}s vs without {without:.2}s"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scenario_parameters_differ() {
        assert!(AgentScenario::Video.memory_size() < AgentScenario::Community.memory_size());
        assert!(AgentScenario::Video.match_rate() > AgentScenario::Community.match_rate());
        assert_eq!(AgentScenario::Video.name(), "video");
        assert_eq!(AgentScenario::Community.name(), "community");
    }
}
