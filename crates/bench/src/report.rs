//! Experiment output: pretty text plus JSON files under `target/repro/`.

use std::io::Write;

use serde::Serialize;

use crate::fixtures::repro_dir;

/// Accumulates one experiment's output.
pub struct Report {
    id: String,
    lines: Vec<String>,
}

impl Report {
    /// Starts a report for experiment `id` (e.g. `"fig9"`).
    pub fn new(id: &str) -> Self {
        let mut r = Report {
            id: id.to_string(),
            lines: Vec::new(),
        };
        r.line(&format!("=== {id} ==="));
        r
    }

    /// Appends and echoes one line.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.lines.push(s.to_string());
    }

    /// Appends a blank separator.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Writes the text log and a JSON payload, returning the JSON path.
    pub fn finish<T: Serialize>(self, payload: &T) -> std::path::PathBuf {
        let dir = repro_dir();
        let mut txt = dir.clone();
        txt.push(format!("{}.txt", self.id));
        let mut f = std::fs::File::create(&txt).expect("create report txt");
        for l in &self.lines {
            writeln!(f, "{l}").expect("write report");
        }
        let mut json = dir;
        json.push(format!("{}.json", self.id));
        let data = serde_json::to_string_pretty(payload).expect("serialize payload");
        std::fs::write(&json, data).expect("write json");
        json
    }
}

/// Formats seconds adaptively (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats bytes as MiB.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_files() {
        let r = Report::new("unit-test-report");
        let path = r.finish(&serde_json::json!({"ok": true}));
        assert!(path.exists());
        let txt = path.with_extension("txt");
        assert!(txt.exists());
        let content = std::fs::read_to_string(txt).unwrap();
        assert!(content.contains("unit-test-report"));
        std::fs::remove_file(path.with_extension("txt")).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.5), "500 ms");
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_mib(2 << 20), "2.0 MiB");
    }
}
