//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p prism-bench --bin repro -- <experiment> [--fast]
//!
//! experiments:
//!   table1 fig1 fig2          overview & motivation
//!   table3 fig8 fig9 fig10    microbenchmarks (§6.2)
//!   fig11 fig12 fig13 fig14 fig15   real-world applications (§6.3)
//!   fig16 ablation-extra      ablations (§6.4 + DESIGN.md §5)
//!   perf                      kernel/engine perf trajectory (BENCH_kernels.json)
//!   sim-validate              calibrate the serving metasim on the real engine,
//!                             replay the perf serving/scheduling scenarios
//!                             through it, and write the metasim section of
//!                             BENCH_kernels.json (predictions within 15%)
//!   perf-guard [--min F]      fail (exit 1) if any BENCH_kernels.json speedup
//!                             entry sits below F (default 0.9, i.e. 1.0 minus a
//!                             10% bench-noise allowance), any offload scale
//!                             sits below 2.7 (the 3x acceptance gate minus the
//!                             same allowance), or the metasim section says
//!                             validated: false
//!   all                       everything above
//! ```
//!
//! `--fast` trims dataset counts and sweep grids for quick smoke runs.
//! Outputs are printed and written to `target/repro/<id>.{txt,json}`.

use prism_bench::experiments::{ablation, apps, micro, overview, perf, simval};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let chosen: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = chosen.first().copied().unwrap_or("all");

    if what == "perf-guard" {
        let min = args
            .iter()
            .position(|a| a == "--min")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.9);
        match perf::perf_guard(min) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let run = |name: &str| match name {
        "table1" => overview::table1(),
        "fig1" => overview::fig1(),
        "fig2" => overview::fig2(fast),
        "table3" => micro::table3(fast),
        "fig8" => micro::fig8(),
        "fig9" => micro::fig9(),
        "fig10" => micro::fig10(fast),
        "fig11" => apps::fig11(),
        "fig12" | "fig13" => apps::fig12_13(),
        "fig14" | "fig15" => apps::fig14_15(),
        "fig16" => ablation::fig16(),
        "ablation-extra" => ablation::ablation_extra(),
        "perf" => perf::perf(fast),
        "sim-validate" => simval::sim_validate(fast),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "table1",
            "fig1",
            "fig2",
            "table3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig14",
            "fig16",
            "ablation-extra",
        ] {
            run(name);
            println!();
        }
    } else {
        run(what);
    }
}
