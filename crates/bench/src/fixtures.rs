//! Shared fixtures: mini-scale model containers and trace conversion.

use std::path::PathBuf;

use prism_core::{EngineOptions, EngineTrace, PrismEngine, Selection};
use prism_device::PruneSchedule;
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{DatasetProfile, RerankRequest, WorkloadGenerator};

/// A mini-scale twin of one paper model, materialized on disk.
pub struct MiniFixture {
    /// Paper-scale config (for the device simulator).
    pub paper: ModelConfig,
    /// Executable mini config.
    pub mini: ModelConfig,
    /// The resident model (reference scoring).
    pub model: Model,
    /// Path of the dense weight container.
    pub container_path: PathBuf,
    /// Path of the 4-bit quantized container.
    pub quant_container_path: PathBuf,
}

/// Directory where fixtures and experiment outputs live.
pub fn repro_dir() -> PathBuf {
    let mut p = PathBuf::from("target");
    p.push("repro");
    std::fs::create_dir_all(&p).expect("create target/repro");
    p
}

/// Builds (or reuses from disk) the mini twin of a paper config.
pub fn mini_fixture(paper: ModelConfig) -> MiniFixture {
    let mini = paper.mini_twin();
    let mut dir = repro_dir();
    dir.push("models");
    std::fs::create_dir_all(&dir).expect("create model dir");
    let mut container_path = dir.clone();
    container_path.push(format!("{}.prsm", mini.name));
    let mut quant_container_path = dir;
    quant_container_path.push(format!("{}-q4.prsm", mini.name));

    let model = Model::generate(mini.clone(), 0xC0DE).expect("generate mini model");
    if !container_path.exists() {
        model
            .write_container(&container_path)
            .expect("write container");
    }
    if !quant_container_path.exists() {
        model
            .quantized()
            .expect("quantize")
            .write_container(&quant_container_path)
            .expect("write quant container");
    }
    MiniFixture {
        paper,
        mini,
        model,
        container_path,
        quant_container_path,
    }
}

impl MiniFixture {
    /// Opens a PRISM engine over this fixture.
    pub fn engine(&self, options: EngineOptions, quant: bool) -> PrismEngine {
        let path = if quant {
            &self.quant_container_path
        } else {
            &self.container_path
        };
        let container = Container::open(path).expect("open container");
        PrismEngine::new(container, self.mini.clone(), options, MemoryMeter::new()).expect("engine")
    }

    /// Generates request `idx` for a dataset profile.
    pub fn request(
        &self,
        profile: &DatasetProfile,
        idx: u64,
        candidates: usize,
    ) -> (SequenceBatch, RerankRequest) {
        let gen = WorkloadGenerator::new(
            profile.clone(),
            self.mini.vocab_size,
            self.mini.max_seq,
            0xBEEF,
        );
        let req = gen.request(idx, candidates);
        (SequenceBatch::new(&req.sequences()).expect("batch"), req)
    }
}

/// Converts an engine trace into the simulator's pruning schedule, padding
/// unexecuted layers with zeros (early termination).
pub fn schedule_from_trace(trace: &EngineTrace, num_layers: usize) -> PruneSchedule {
    let mut active = trace.active_per_layer.clone();
    active.resize(num_layers, 0);
    PruneSchedule {
        active_per_layer: active,
    }
}

/// Runs one selection and returns it with the paper-scale schedule.
pub fn run_with_schedule(
    engine: &mut PrismEngine,
    batch: &SequenceBatch,
    k: usize,
    paper_layers: usize,
) -> (Selection, PruneSchedule) {
    let sel = engine.select_top_k(batch, k).expect("selection");
    let mini_layers = engine.config().num_layers;
    // Mini and paper twins share layer counts by construction; guard
    // anyway so a future config change cannot silently skew results.
    assert_eq!(
        mini_layers, paper_layers,
        "mini twin must match paper depth"
    );
    let schedule = schedule_from_trace(&sel.trace, paper_layers);
    (sel, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_workload::dataset_catalog;

    #[test]
    fn fixture_round_trips() {
        let fx = mini_fixture(ModelConfig::bge_m3());
        assert_eq!(fx.mini.num_layers, fx.paper.num_layers);
        assert!(fx.container_path.exists());
        assert!(fx.quant_container_path.exists());
        let profile = &dataset_catalog()[0];
        let (batch, req) = fx.request(profile, 0, 8);
        assert_eq!(batch.num_sequences(), 8);
        assert_eq!(req.candidates.len(), 8);
    }

    #[test]
    fn schedule_padding() {
        let trace = EngineTrace {
            active_per_layer: vec![10, 10, 4],
            ..Default::default()
        };
        let s = schedule_from_trace(&trace, 6);
        assert_eq!(s.active_per_layer, vec![10, 10, 4, 0, 0, 0]);
        assert!(s.is_monotone());
    }
}
