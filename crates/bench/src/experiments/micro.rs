//! Microbenchmarks: Table 3, Fig. 8 (latency & precision), Fig. 9
//! (memory), Fig. 10 (threshold sweep).

use serde::Serialize;

use prism_metrics::precision_at_k;
use prism_model::ModelConfig;
use prism_workload::{dataset_by_name, dataset_catalog};

use crate::experiments::{
    micro_batch_shape, platforms, run_system, simulate_system, thresholds_for, SystemKind,
};
use crate::fixtures::mini_fixture;
use crate::report::{fmt_mib, fmt_secs, Report};

/// Requests evaluated per (model, dataset) cell.
const REQUESTS: u64 = 2;
const CANDIDATES: usize = 20;

#[derive(Serialize)]
struct Table3Row {
    model: String,
    comparison: String,
    k: usize,
    latency_reduction_min: f64,
    latency_reduction_max: f64,
    latency_reduction_mean: f64,
    precision_delta_mean: f64,
    precision_delta_worst: f64,
    baseline_oom: bool,
}

/// Table 3: mean latency reduction and precision deltas over all datasets
/// and platforms, per model and K.
pub fn table3(fast: bool) {
    let mut report = Report::new("table3");
    let datasets = if fast {
        dataset_catalog().into_iter().take(4).collect::<Vec<_>>()
    } else {
        dataset_catalog()
    };
    let mut rows: Vec<Table3Row> = Vec::new();
    for paper in ModelConfig::paper_catalog() {
        let fx = mini_fixture(paper.clone());
        let (_, high_t) = thresholds_for(&paper.name);
        report.line(&format!("--- {} ---", paper.name));
        for k in [1_usize, 5, 10] {
            // Collect per-(dataset, platform) latency reductions and
            // precision deltas.
            let mut cmp_hf: Vec<f64> = Vec::new();
            let mut cmp_off: Vec<f64> = Vec::new();
            let mut cmp_quant: Vec<f64> = Vec::new();
            let mut dp_hf: Vec<f64> = Vec::new();
            let mut dp_quant: Vec<f64> = Vec::new();
            let mut hf_oom = false;
            for ds in &datasets {
                let mut p_hf = 0.0;
                let mut p_prism = 0.0;
                let mut p_hfq = 0.0;
                let mut p_prismq = 0.0;
                let mut lat: Vec<(SystemKind, f64, f64)> = Vec::new();
                for r in 0..REQUESTS {
                    let (batch, req) = fx.request(ds, r, CANDIDATES);
                    for system in [
                        SystemKind::Hf,
                        SystemKind::HfQuant,
                        SystemKind::Prism { threshold: high_t },
                        SystemKind::PrismQuant { threshold: high_t },
                    ] {
                        let run = run_system(&fx, system, &batch, k);
                        let p = precision_at_k(&run.top_ids, &req.relevant, k);
                        match system {
                            SystemKind::Hf => p_hf += p,
                            SystemKind::HfQuant => p_hfq += p,
                            SystemKind::Prism { .. } => p_prism += p,
                            SystemKind::PrismQuant { .. } => p_prismq += p,
                            SystemKind::HfOffload => {}
                        }
                        if r == 0 {
                            for dev in platforms() {
                                let out = simulate_system(
                                    system,
                                    &paper,
                                    &dev,
                                    micro_batch_shape(),
                                    &run.schedule,
                                );
                                if matches!(system, SystemKind::Hf) && out.oom {
                                    hf_oom = true;
                                }
                                lat.push((system, out.latency_s, dev.compute_flops));
                            }
                            if matches!(system, SystemKind::Hf) {
                                // HF Offload latency shares HF's behaviour run.
                                for dev in platforms() {
                                    let out = simulate_system(
                                        SystemKind::HfOffload,
                                        &paper,
                                        &dev,
                                        micro_batch_shape(),
                                        &run.schedule,
                                    );
                                    lat.push((
                                        SystemKind::HfOffload,
                                        out.latency_s,
                                        dev.compute_flops,
                                    ));
                                }
                            }
                        }
                    }
                }
                let n = REQUESTS as f64;
                dp_hf.push((p_prism - p_hf) / n);
                dp_quant.push((p_prismq - p_hfq) / n);
                // Latency reductions per platform.
                for dev in platforms() {
                    let find = |s: SystemKind| {
                        lat.iter()
                            .find(|(sys, _, flops)| *sys == s && *flops == dev.compute_flops)
                            .map(|&(_, l, _)| l)
                            .expect("latency recorded")
                    };
                    let prism = find(SystemKind::Prism { threshold: high_t });
                    let prismq = find(SystemKind::PrismQuant { threshold: high_t });
                    cmp_hf.push(1.0 - prism / find(SystemKind::Hf));
                    cmp_off.push(1.0 - prism / find(SystemKind::HfOffload));
                    cmp_quant.push(1.0 - prismq / find(SystemKind::HfQuant));
                }
            }
            let summarize = |v: &[f64]| -> (f64, f64, f64) {
                let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (min, max, v.iter().sum::<f64>() / v.len() as f64)
            };
            let p_stats = |v: &[f64]| -> (f64, f64) {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let worst = v.iter().cloned().fold(f64::INFINITY, f64::min);
                (mean, worst)
            };
            for (name, lats, deltas, oom) in [
                ("PRISM vs HF", &cmp_hf, &dp_hf, hf_oom),
                ("PRISM vs HF Offload", &cmp_off, &dp_hf, false),
                ("PRISM Quant vs HF Quant", &cmp_quant, &dp_quant, false),
            ] {
                let (min, max, mean) = summarize(lats);
                let (dmean, dworst) = p_stats(deltas);
                let base = if oom && name == "PRISM vs HF" {
                    " [HF OOM at paper scale]"
                } else {
                    ""
                };
                report.line(&format!(
                    "P@{k:<2} {name:<26} lat -{:.1}%..-{:.1}% (mean -{:.1}%)  dPrec mean {dmean:+.3} worst {dworst:+.3}{base}",
                    min * 100.0,
                    max * 100.0,
                    mean * 100.0
                ));
                rows.push(Table3Row {
                    model: paper.name.clone(),
                    comparison: name.into(),
                    k,
                    latency_reduction_min: min,
                    latency_reduction_max: max,
                    latency_reduction_mean: mean,
                    precision_delta_mean: dmean,
                    precision_delta_worst: dworst,
                    baseline_oom: oom,
                });
            }
        }
        report.blank();
    }
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig8Row {
    model: String,
    system: String,
    latency_nvidia_s: f64,
    latency_apple_s: f64,
    nvidia_oom: bool,
    precision_at: [f64; 3],
}

/// Fig. 8: detailed latency and precision on the Wikipedia dataset, seven
/// systems, five models, both platforms.
pub fn fig8() {
    let mut report = Report::new("fig8");
    let ds = dataset_by_name("wikipedia").expect("wikipedia profile");
    let mut rows: Vec<Fig8Row> = Vec::new();
    for paper in ModelConfig::paper_catalog() {
        let fx = mini_fixture(paper.clone());
        let (low_t, high_t) = thresholds_for(&paper.name);
        let systems = [
            SystemKind::Hf,
            SystemKind::HfOffload,
            SystemKind::HfQuant,
            SystemKind::Prism { threshold: low_t },
            SystemKind::Prism { threshold: high_t },
            SystemKind::PrismQuant { threshold: low_t },
            SystemKind::PrismQuant { threshold: high_t },
        ];
        report.line(&format!("--- {} (Wikipedia) ---", paper.name));
        for system in systems {
            let mut precision = [0.0_f64; 3];
            let mut schedule = None;
            for r in 0..REQUESTS {
                // K = 10 runs produce the schedule; precision measured at
                // each K with its own run for pruning systems.
                for (ki, k) in [1_usize, 5, 10].iter().enumerate() {
                    let (batch, req) = fx.request(&ds, r, CANDIDATES);
                    let run = run_system(&fx, system, &batch, *k);
                    precision[ki] +=
                        precision_at_k(&run.top_ids, &req.relevant, *k) / REQUESTS as f64;
                    if *k == 10 && r == 0 {
                        schedule = Some(run.schedule);
                    }
                }
            }
            let schedule = schedule.expect("schedule recorded");
            let rtx = simulate_system(
                system,
                &paper,
                &prism_device::DeviceSpec::rtx5070_laptop(),
                micro_batch_shape(),
                &schedule,
            );
            let m2 = simulate_system(
                system,
                &paper,
                &prism_device::DeviceSpec::apple_m2(),
                micro_batch_shape(),
                &schedule,
            );
            report.line(&format!(
                "{:<22} nvidia {}{}  apple {}  P@1/5/10 {:.3}/{:.3}/{:.3}",
                system.name(),
                fmt_secs(rtx.latency_s),
                if rtx.oom { " (OOM)" } else { "" },
                fmt_secs(m2.latency_s),
                precision[0],
                precision[1],
                precision[2]
            ));
            rows.push(Fig8Row {
                model: paper.name.clone(),
                system: system.name(),
                latency_nvidia_s: rtx.latency_s,
                latency_apple_s: m2.latency_s,
                nvidia_oom: rtx.oom,
                precision_at: precision,
            });
        }
        report.blank();
    }
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig9Row {
    model: String,
    system: String,
    peak_mib: f64,
    avg_mib: f64,
    peak_ratio_vs_prism: f64,
    oom_on_rtx: bool,
    timeline: Vec<(f64, u64)>,
}

/// Fig. 9: memory footprint over time on the NVIDIA platform (A800 stands
/// in for HF curves that OOM, as in the paper).
pub fn fig9() {
    let mut report = Report::new("fig9");
    let ds = dataset_by_name("wikipedia").expect("wikipedia profile");
    let rtx = prism_device::DeviceSpec::rtx5070_laptop();
    let a800 = prism_device::DeviceSpec::a800();
    let mut rows: Vec<Fig9Row> = Vec::new();
    for paper in ModelConfig::paper_catalog() {
        let fx = mini_fixture(paper.clone());
        let (batch, _) = fx.request(&ds, 0, CANDIDATES);
        let (_, high_t) = thresholds_for(&paper.name);
        let prism_run = run_system(&fx, SystemKind::Prism { threshold: high_t }, &batch, 10);
        let mut outcomes = Vec::new();
        for system in [
            SystemKind::Prism { threshold: high_t },
            SystemKind::Hf,
            SystemKind::HfOffload,
            SystemKind::HfQuant,
        ] {
            let mut out = simulate_system(
                system,
                &paper,
                &rtx,
                micro_batch_shape(),
                &prism_run.schedule,
            );
            let mut oom = false;
            if out.oom && matches!(system, SystemKind::Hf) {
                // Paper: 4B/8B HF curves measured on an A800 instead.
                out = simulate_system(
                    system,
                    &paper,
                    &a800,
                    micro_batch_shape(),
                    &prism_run.schedule,
                );
                oom = true;
            }
            outcomes.push((system, out, oom));
        }
        let prism_peak = outcomes[0].1.peak_bytes.max(1);
        report.line(&format!("--- {} ---", paper.name));
        for (system, out, oom) in &outcomes {
            let ratio = out.peak_bytes as f64 / prism_peak as f64;
            report.line(&format!(
                "{:<22} peak {:>10}  avg {:>10}  peak/PRISM {ratio:.2}x{}",
                system.name(),
                fmt_mib(out.peak_bytes),
                fmt_mib(out.avg_bytes),
                if *oom {
                    "  [measured on A800: OOM on laptop]"
                } else {
                    ""
                }
            ));
            rows.push(Fig9Row {
                model: paper.name.clone(),
                system: system.name(),
                peak_mib: out.peak_bytes as f64 / (1 << 20) as f64,
                avg_mib: out.avg_bytes as f64 / (1 << 20) as f64,
                peak_ratio_vs_prism: ratio,
                oom_on_rtx: *oom,
                timeline: out.timeline.clone(),
            });
        }
        report.blank();
    }
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig10Point {
    model: String,
    threshold: f32,
    k: usize,
    precision: f64,
    latency_s: f64,
}

/// Fig. 10: the latency–precision trade-off across dispersion thresholds.
pub fn fig10(fast: bool) {
    let mut report = Report::new("fig10");
    let ds = dataset_by_name("wikipedia").expect("wikipedia profile");
    let rtx = prism_device::DeviceSpec::rtx5070_laptop();
    let thresholds: Vec<f32> = if fast {
        vec![0.1, 0.3, 0.6]
    } else {
        vec![0.05, 0.12, 0.2, 0.3, 0.45, 0.7]
    };
    let mut rows: Vec<Fig10Point> = Vec::new();
    for paper in ModelConfig::paper_catalog() {
        let fx = mini_fixture(paper.clone());
        report.line(&format!("--- {} ---", paper.name));
        for &threshold in &thresholds {
            for k in [1_usize, 5, 10] {
                let mut precision = 0.0;
                let mut schedule = None;
                for r in 0..REQUESTS {
                    let (batch, req) = fx.request(&ds, r, CANDIDATES);
                    let run = run_system(&fx, SystemKind::Prism { threshold }, &batch, k);
                    precision += precision_at_k(&run.top_ids, &req.relevant, k) / REQUESTS as f64;
                    if r == 0 {
                        schedule = Some(run.schedule);
                    }
                }
                let out = simulate_system(
                    SystemKind::Prism { threshold },
                    &paper,
                    &rtx,
                    micro_batch_shape(),
                    &schedule.expect("schedule"),
                );
                report.line(&format!(
                    "t={threshold:<5} K={k:<2} precision {precision:.3}  latency {}",
                    fmt_secs(out.latency_s)
                ));
                rows.push(Fig10Point {
                    model: paper.name.clone(),
                    threshold,
                    k,
                    precision,
                    latency_s: out.latency_s,
                });
            }
        }
        report.blank();
    }
    // Sanity summary: higher threshold should not reduce precision much.
    report.line("(expect: precision non-decreasing and latency increasing with threshold)");
    report.finish(&rows);
}
