//! `repro sim-validate`: calibrate the serving metasim against the real
//! engine and validate its predictions against measured serving runs.
//!
//! The harness re-measures the exact serving and scheduling scenarios of
//! `repro perf` (same fixtures, same `LoadSpec`s, same `ServeConfig`s),
//! fits an affine service-time model from two real engine batch shapes,
//! replays every scenario through [`prism_metasim::simulate_closed_loop`]
//! with that calibration, and asserts predicted throughput and tail
//! latency within [`SIM_TOLERANCE`] of measured. Results are spliced into
//! `BENCH_kernels.json` as the `metasim` section (`repro perf` preserves
//! it across rewrites) and `repro perf-guard` fails CI when the section
//! says `validated: false`.

use prism_metasim::{simulate_closed_loop, Calibration, ServiceModel};
use prism_model::{ModelArch, ModelConfig};
use prism_serve::{LoadReport, LoadSpec, ServeConfig};
use serde::Serialize;

use super::perf::{scheduling_bench_measured, serving_bench_measured, KERNELS_FILE};
use crate::report::Report;

/// Relative tolerance of the validation gate: predicted throughput and
/// p99 must land within 15% of measured.
pub const SIM_TOLERANCE: f64 = 0.15;

/// One scenario's predicted-versus-measured comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MetasimRow {
    /// Scenario label (`serving/serial`, `scheduling/fifo`, ...).
    pub scenario: String,
    /// Simulated throughput, requests per virtual second.
    pub predicted_rps: f64,
    /// Measured throughput, requests per wall second.
    pub measured_rps: f64,
    /// `predicted_rps / measured_rps`.
    pub rps_ratio: f64,
    /// Simulated overall p99 latency, microseconds.
    pub predicted_p99_us: u64,
    /// Measured overall p99 latency, microseconds.
    pub measured_p99_us: u64,
    /// `predicted_p99_us / measured_p99_us`.
    pub p99_ratio: f64,
    /// Service-time jitter allowance added to the p99 band: the measured
    /// run's own batch-service p99 minus mean, microseconds.
    pub p99_jitter_allowance_us: u64,
    /// Throughput ratio within [`SIM_TOLERANCE`] of 1.0 and p99 within
    /// the jitter-widened band.
    pub within_tolerance: bool,
}

/// The `metasim` section of `BENCH_kernels.json`.
#[derive(Debug, Serialize)]
pub struct MetasimSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Relative tolerance both ratios are held to.
    pub tolerance: f64,
    /// Affine service model fitted on the real engine for this run.
    pub calibration: Calibration,
    /// Per-scenario comparisons.
    pub rows: Vec<MetasimRow>,
    /// Every row within tolerance (the `perf-guard` gate).
    pub validated: bool,
}

/// Fits the affine service model from the measured serving runs' own
/// server-side stats snapshots: the serial run provides the
/// single-request batch shape, the batched run the coalesced shape.
/// Calibrating from the *same* runs the predictions are compared against
/// keeps the gate about the scheduling model — service times on a busy
/// host drift 25-100% between separate measurement passes, which would
/// otherwise dominate the error budget.
fn serving_calibration(serial: &LoadReport, batched: &LoadReport) -> Calibration {
    let a = (
        1_usize,
        serial.stats.batch_tokens.mean.round() as u64,
        serial.stats.service_us.mean.round() as u64,
    );
    let b = (
        (batched.stats.batch_size.mean.round() as usize).max(2),
        batched.stats.batch_tokens.mean.round() as u64,
        batched.stats.service_us.mean.round() as u64,
    );
    Calibration::fit_two_points(a, b)
}

/// Derives the scheduling scenarios' calibration from the FIFO run's
/// snapshot, reusing the serving token slope (the scheduling scenarios
/// run a tighter coalescing cap, so their mean batch cost differs from
/// the serving fit's operating points).
fn scheduling_calibration(per_token_us: f64, fifo: &LoadReport) -> Calibration {
    let fixed = (fifo.stats.service_us.mean - per_token_us * fifo.stats.batch_tokens.mean).max(0.0);
    Calibration {
        batch_fixed_us: fixed,
        per_request_us: 0.0,
        per_token_us,
    }
}

fn ratio(predicted: f64, measured: f64) -> f64 {
    if measured > 0.0 {
        predicted / measured
    } else {
        0.0
    }
}

fn row(
    scenario: &str,
    predicted_rps: f64,
    measured_rps: f64,
    predicted_p99_us: u64,
    measured_p99_us: u64,
    p99_jitter_allowance_us: u64,
) -> MetasimRow {
    let rps_ratio = ratio(predicted_rps, measured_rps);
    let p99_ratio = ratio(predicted_p99_us as f64, measured_p99_us as f64);
    let p99_band = SIM_TOLERANCE * measured_p99_us as f64 + p99_jitter_allowance_us as f64;
    let p99_within =
        measured_p99_us > 0 && (predicted_p99_us as f64 - measured_p99_us as f64).abs() <= p99_band;
    let within_tolerance = (rps_ratio - 1.0).abs() <= SIM_TOLERANCE && p99_within;
    MetasimRow {
        scenario: scenario.to_string(),
        predicted_rps,
        measured_rps,
        rps_ratio,
        predicted_p99_us,
        measured_p99_us,
        p99_ratio,
        p99_jitter_allowance_us,
        within_tolerance,
    }
}

/// Simulates one scenario and compares overall throughput and p99
/// against its measured [`LoadReport`]. Returns the row plus the
/// predicted-vs-measured high-class p99 (informational: in mixed runs
/// the high class holds only a handful of samples, so its p99 is a max
/// over ~5 observations — far too noisy to gate on).
///
/// The calibrated service model is deterministic (mean cost per batch
/// shape), so the simulated end-to-end p99 captures queueing structure
/// but not per-batch service jitter. The p99 acceptance band is
/// therefore widened by the measured run's own service-time tail excess
/// (batch-service p99 minus mean — a platform input, not a scheduling
/// phenomenon the simulator could predict).
fn scenario_row(
    model: &ModelConfig,
    calibration: Calibration,
    scenario: &str,
    spec: &LoadSpec,
    serve: &ServeConfig,
    measured: &LoadReport,
) -> (MetasimRow, Option<(u64, u64)>) {
    let predicted = simulate_closed_loop(
        model,
        spec,
        serve,
        ServiceModel::calibrated(calibration),
        scenario,
    );
    let high = match (predicted.class("high"), measured.class("high")) {
        (Some(p), Some(m)) => Some((p.p99_us, m.p99_us)),
        _ => None,
    };
    let tail_excess = measured
        .stats
        .service_us
        .p99
        .saturating_sub(measured.stats.service_us.mean.round() as u64);
    (
        row(
            scenario,
            predicted.throughput_rps,
            measured.throughput_rps,
            predicted.p99_us,
            measured.p99_us,
            tail_excess,
        ),
        high,
    )
}

/// Runs the calibration + validation harness and splices the `metasim`
/// section into `BENCH_kernels.json`.
pub fn sim_validate(fast: bool) {
    let mut report = Report::new("sim-validate");
    let mode = if fast { "fast" } else { "full" };
    report.line(&format!("serving metasim validation ({mode} mode)"));

    let model = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let mut rows = Vec::new();

    // --- Serving scenarios (measured live, the exact `repro perf` set).
    let serving = serving_bench_measured(fast);
    let calibration = serving_calibration(&serving.serial, &serving.batched);
    report.line(&format!(
        "calibrated from measured serving runs: fixed {:.0} us/batch + {:.2} us/token",
        calibration.batch_fixed_us, calibration.per_token_us
    ));
    let spec = LoadSpec {
        requests: serving.section.requests,
        clients: serving.section.clients,
        candidates: serving.section.candidates,
        k: serving.section.k,
        ..Default::default()
    };
    let serial_cfg = ServeConfig::serial();
    let batched_cfg = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        session_cache_capacity: 0,
        ..Default::default()
    };
    let cached_cfg = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        ..Default::default()
    };
    let cached_spec = LoadSpec {
        corpus_repeat: 4,
        ..spec.clone()
    };
    for (scenario, load, cfg, measured) in [
        ("serving/serial", &spec, &serial_cfg, &serving.serial),
        ("serving/batched", &spec, &batched_cfg, &serving.batched),
        ("serving/cached", &cached_spec, &cached_cfg, &serving.cached),
    ] {
        let (r, _) = scenario_row(&model, calibration, scenario, load, cfg, measured);
        rows.push(r);
    }

    // --- Scheduling scenarios (FIFO vs priority-then-EDF, overall p99).
    let scheduling = scheduling_bench_measured(fast);
    let sched_cal = scheduling_calibration(calibration.per_token_us, &scheduling.fifo);
    report.line(&format!(
        "scheduling calibration (FIFO snapshot): fixed {:.0} us/batch + {:.2} us/token",
        sched_cal.batch_fixed_us, sched_cal.per_token_us
    ));
    let sched_spec = LoadSpec {
        requests: scheduling.section.requests,
        clients: scheduling.section.clients,
        candidates: 12,
        k: 4,
        high_fraction: scheduling.section.high_fraction,
        high_deadline_us: Some(scheduling.section.high_deadline_us),
        ..Default::default()
    };
    for (scenario, priority_scheduling, measured) in [
        ("scheduling/fifo", false, &scheduling.fifo),
        ("scheduling/priority_edf", true, &scheduling.priority),
    ] {
        let cfg = ServeConfig {
            workers: 1,
            max_batch_requests: scheduling.section.max_batch_requests,
            session_cache_capacity: 0,
            priority_scheduling,
            starvation_age: std::time::Duration::from_secs(2),
            ..Default::default()
        };
        let (r, high) = scenario_row(&model, sched_cal, scenario, &sched_spec, &cfg, measured);
        if let Some((pred, meas)) = high {
            report.line(&format!(
                "{scenario:<25} high-class p99 {pred} vs {meas} us (informational: ~{} samples)",
                measured.class("high").map_or(0, |c| c.completed)
            ));
        }
        rows.push(r);
    }

    for r in &rows {
        report.line(&format!(
            "{:<25} rps {:>8.1} vs {:>8.1} ({:>5.2}x)  p99 {:>8} vs {:>8} us ({:>5.2}x)  {}",
            r.scenario,
            r.predicted_rps,
            r.measured_rps,
            r.rps_ratio,
            r.predicted_p99_us,
            r.measured_p99_us,
            r.p99_ratio,
            if r.within_tolerance { "ok" } else { "OUT" }
        ));
    }
    let validated = rows.iter().all(|r| r.within_tolerance);
    let section = MetasimSection {
        mode: mode.into(),
        tolerance: SIM_TOLERANCE,
        calibration,
        rows,
        validated,
    };
    report.line(&format!(
        "validated: {validated} (tolerance {:.0}%)",
        SIM_TOLERANCE * 100.0
    ));

    // Splice into the committed kernels file (replacing any prior run).
    let previous = std::fs::read_to_string(KERNELS_FILE).unwrap_or_else(|_| "{}".to_string());
    let section_json = serde_json::to_string_pretty(&section).expect("serialize metasim");
    let next = splice_metasim(&previous, &section_json);
    std::fs::write(KERNELS_FILE, next).expect("write BENCH_kernels.json");
    report.line(&format!("wrote metasim section into {KERNELS_FILE}"));
    report.finish(&section);
}

/// Extracts the raw `"metasim": { ... }` object value from a kernels
/// file, if present (the serde shim has no deserializer; `repro perf`
/// uses this to preserve the section across rewrites).
pub fn extract_metasim(text: &str) -> Option<String> {
    let key = text.find("\"metasim\":")?;
    let open = key + text[key..].find('{')?;
    let mut depth = 0_usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Removes the `"metasim": {...}` member (and its separating comma) from
/// kernels-file text.
fn strip_metasim(text: &str) -> String {
    let Some(key) = text.find("\"metasim\":") else {
        return text.to_string();
    };
    let Some(raw) = extract_metasim(text) else {
        return text.to_string();
    };
    let open = key + text[key..].find('{').expect("extract found a brace");
    let end = open + raw.len();
    // Swallow one separating comma: the one after the member if present,
    // else the one before (when metasim is the last member).
    let mut head = &text[..key];
    let mut tail = &text[end..];
    let trimmed_tail = tail.trim_start();
    if let Some(rest) = trimmed_tail.strip_prefix(',') {
        tail = rest;
    } else {
        let trimmed_head = head.trim_end();
        head = trimmed_head.strip_suffix(',').unwrap_or(trimmed_head);
    }
    format!("{}{}", head.trim_end(), tail)
}

/// Splices `metasim_json` (a serialized object) into kernels-file text
/// as the `metasim` member, replacing any existing one.
pub fn splice_metasim(text: &str, metasim_json: &str) -> String {
    let without = strip_metasim(text);
    let trimmed = without.trim_end();
    let body = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
    let sep = if body.ends_with('{') { "" } else { "," };
    format!("{body}{sep}\n  \"metasim\": {metasim_json}\n}}\n")
}

/// Reads the `validated` flag of a metasim section, if one exists (the
/// `perf-guard` hook).
pub fn parse_metasim_validated(text: &str) -> Option<bool> {
    let raw = extract_metasim(text)?;
    let pos = raw.find("\"validated\":")?;
    Some(raw[pos + 12..].trim_start().starts_with("true"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_section(validated: bool) -> String {
        let section = MetasimSection {
            mode: "fast".into(),
            tolerance: SIM_TOLERANCE,
            calibration: Calibration {
                batch_fixed_us: 1_000.0,
                per_request_us: 0.0,
                per_token_us: 2.0,
            },
            rows: vec![row("serving/serial", 100.0, 98.0, 5_000, 5_100, 0)],
            validated,
        };
        serde_json::to_string_pretty(&section).unwrap()
    }

    #[test]
    fn splice_extract_strip_round_trip() {
        let base = "{\n  \"schema\": \"v\",\n  \"speedup\": []\n}\n";
        let spliced = splice_metasim(base, &dummy_section(true));
        let raw = extract_metasim(&spliced).expect("spliced section extracts");
        assert!(raw.starts_with('{') && raw.ends_with('}'));
        assert_eq!(parse_metasim_validated(&spliced), Some(true));
        // Replacing keeps exactly one section and the original members.
        let replaced = splice_metasim(&spliced, &dummy_section(false));
        assert_eq!(replaced.matches("\"metasim\":").count(), 1);
        assert_eq!(parse_metasim_validated(&replaced), Some(false));
        assert!(replaced.contains("\"schema\": \"v\""));
        assert!(replaced.contains("\"speedup\": []"));
        // Absent section: no-ops.
        assert!(extract_metasim(base).is_none());
        assert!(parse_metasim_validated(base).is_none());
        assert_eq!(strip_metasim(base), base);
    }

    #[test]
    fn splice_into_empty_object() {
        let spliced = splice_metasim("{}", &dummy_section(true));
        assert!(spliced.trim_start().starts_with('{'));
        assert!(extract_metasim(&spliced).is_some());
        // Stripping returns to an empty object.
        let stripped = strip_metasim(&spliced);
        assert!(extract_metasim(&stripped).is_none());
    }

    #[test]
    fn tolerance_rows_classify() {
        let good = row("s", 100.0, 95.0, 1_000, 1_050, 0);
        assert!(good.within_tolerance);
        let bad_rps = row("s", 100.0, 70.0, 1_000, 1_000, 0);
        assert!(!bad_rps.within_tolerance);
        let bad_p99 = row("s", 100.0, 100.0, 2_000, 1_000, 0);
        assert!(!bad_p99.within_tolerance);
        // The same p99 miss passes when the measured run's own service
        // jitter accounts for the gap.
        let jitter_rescued = row("s", 100.0, 100.0, 2_000, 1_000, 900);
        assert!(jitter_rescued.within_tolerance);
        let zero_measured = row("s", 100.0, 0.0, 1_000, 0, 0);
        assert!(!zero_measured.within_tolerance);
    }
}
