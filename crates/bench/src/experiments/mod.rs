//! One module per paper artifact, plus shared system definitions.

pub mod ablation;
pub mod apps;
pub mod micro;
pub mod overview;
pub mod perf;
pub mod simval;

use prism_core::EngineOptions;
use prism_device::DeviceSpec;
use prism_device::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape,
    PrismSimOptions, PruneSchedule, SimOutcome,
};
use prism_model::{ModelConfig, SequenceBatch};

use crate::fixtures::{run_with_schedule, MiniFixture};

/// The compared systems of §6.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemKind {
    /// Vanilla HuggingFace Transformers.
    Hf,
    /// HF + Accelerate disk offload.
    HfOffload,
    /// W4A16 GPTQ-style quantization.
    HfQuant,
    /// PRISM at a dispersion threshold.
    Prism {
        /// Dispersion threshold.
        threshold: f32,
    },
    /// PRISM over the quantized container.
    PrismQuant {
        /// Dispersion threshold.
        threshold: f32,
    },
}

impl SystemKind {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            SystemKind::Hf => "HF".into(),
            SystemKind::HfOffload => "HF Offload".into(),
            SystemKind::HfQuant => "HF Quant".into(),
            SystemKind::Prism { threshold } => format!("PRISM(t={threshold})"),
            SystemKind::PrismQuant { threshold } => format!("PRISM Quant(t={threshold})"),
        }
    }

    /// Whether this system prunes (needs a real engine run for its
    /// schedule).
    pub fn is_prism(&self) -> bool {
        matches!(
            self,
            SystemKind::Prism { .. } | SystemKind::PrismQuant { .. }
        )
    }
}

/// The paper's Low/High threshold pair (§6.2). Operating points are
/// model-specific (the paper's Fig. 10 sweeps different threshold ranges
/// per model); these were calibrated so the Low point executes ~15–30% of
/// the layer-candidate work and the High point ~35–60%.
pub fn thresholds_for(model_name: &str) -> (f32, f32) {
    if model_name.contains("MiniCPM") {
        (0.45, 0.60)
    } else if model_name.contains("M3") {
        (0.20, 0.55)
    } else {
        (0.20, 0.45)
    }
}

/// Result of evaluating one system on one request.
pub struct SystemRun {
    /// Top-K candidate ids.
    pub top_ids: Vec<usize>,
    /// Paper-scale pruning schedule (full for baselines).
    pub schedule: PruneSchedule,
}

/// Runs one system on one request at mini scale, returning behaviour.
///
/// For `PrismQuant` the *precision* comes from the quantized engine, but
/// the latency schedule is taken from the dense engine: at mini scale the
/// 4-bit noise visibly perturbs cluster boundaries (hidden dim 32), while
/// at paper scale (hidden 1024+) quantization barely moves scores — the
/// dense schedule is the faithful one (see EXPERIMENTS.md).
pub fn run_system(
    fx: &MiniFixture,
    system: SystemKind,
    batch: &SequenceBatch,
    k: usize,
) -> SystemRun {
    match system {
        SystemKind::Hf | SystemKind::HfOffload => {
            let scores = fx.model.forward_full(batch).expect("forward");
            SystemRun {
                top_ids: top_k_ids(&scores, k),
                schedule: PruneSchedule::no_pruning(fx.paper.num_layers, batch.num_sequences()),
            }
        }
        SystemKind::HfQuant => {
            let scores = fx
                .model
                .quantized()
                .expect("quantize")
                .forward_full(batch)
                .expect("forward");
            SystemRun {
                top_ids: top_k_ids(&scores, k),
                schedule: PruneSchedule::no_pruning(fx.paper.num_layers, batch.num_sequences()),
            }
        }
        SystemKind::Prism { threshold } => {
            let options = EngineOptions {
                dispersion_threshold: threshold,
                ..Default::default()
            };
            let mut engine = fx.engine(options, false);
            let (sel, schedule) = run_with_schedule(&mut engine, batch, k, fx.paper.num_layers);
            SystemRun {
                top_ids: sel.top_ids(),
                schedule,
            }
        }
        SystemKind::PrismQuant { threshold } => {
            let options = EngineOptions {
                dispersion_threshold: threshold,
                ..Default::default()
            };
            let qengine = fx.engine(options.clone(), true);
            let sel = qengine.select_top_k(batch, k).expect("selection");
            let mut dense = fx.engine(options, false);
            let (_, schedule) = run_with_schedule(&mut dense, batch, k, fx.paper.num_layers);
            SystemRun {
                top_ids: sel.top_ids(),
                schedule,
            }
        }
    }
}

/// Simulates one system's paper-scale latency/memory for a request shape.
pub fn simulate_system(
    system: SystemKind,
    paper: &ModelConfig,
    device: &DeviceSpec,
    batch: BatchShape,
    schedule: &PruneSchedule,
) -> SimOutcome {
    match system {
        SystemKind::Hf => simulate_hf(paper, device, batch),
        SystemKind::HfOffload => simulate_hf_offload(paper, device, batch),
        SystemKind::HfQuant => simulate_hf_quant(paper, device, batch),
        SystemKind::Prism { .. } => {
            simulate_prism(paper, device, batch, schedule, PrismSimOptions::default())
        }
        SystemKind::PrismQuant { .. } => simulate_prism(
            paper,
            device,
            batch,
            schedule,
            PrismSimOptions {
                quant: true,
                ..Default::default()
            },
        ),
    }
}

/// Indices of the `k` largest scores, descending.
pub fn top_k_ids(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx.truncate(k);
    idx
}

/// Paper-scale request shape used by the microbenchmarks (20 candidates,
/// average 500 tokens).
pub fn micro_batch_shape() -> BatchShape {
    BatchShape {
        candidates: 20,
        seq_len: 500,
    }
}

/// Both evaluation platforms.
pub fn platforms() -> Vec<DeviceSpec> {
    vec![DeviceSpec::rtx5070_laptop(), DeviceSpec::apple_m2()]
}
