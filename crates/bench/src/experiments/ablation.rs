//! Fig. 16: the incremental technique ablation, plus the extra
//! design-choice ablations DESIGN.md §5 calls out.

use serde::Serialize;

use prism_cluster::kmeans_1d;
use prism_core::{route_candidates, EngineOptions};
use prism_device::{simulate_hf, simulate_prism, BatchShape, DeviceSpec, PrismSimOptions};
use prism_metrics::precision_at_k;
use prism_model::ModelConfig;
use prism_workload::dataset_by_name;

use crate::experiments::{run_system, SystemKind};
use crate::fixtures::{mini_fixture, run_with_schedule};
use crate::report::{fmt_mib, fmt_secs, Report};

#[derive(Serialize)]
struct Fig16Row {
    variant: String,
    latency_s: f64,
    peak_mib: f64,
    timeline: Vec<(f64, u64)>,
}

/// Fig. 16: apply the four techniques incrementally on Qwen3-0.6B ranking
/// 60 candidates of average length 500 (NVIDIA platform).
pub fn fig16() {
    let mut report = Report::new("fig16");
    let paper = ModelConfig::qwen3_0_6b();
    let fx = mini_fixture(paper.clone());
    let rtx = DeviceSpec::rtx5070_laptop();
    let shape = BatchShape {
        candidates: 60,
        seq_len: 500,
    };
    let ds = dataset_by_name("wikipedia").expect("profile");
    let (batch, _) = fx.request(&ds, 0, 60);

    // Real pruning schedule for the monolithic variants.
    // The paper's ablation prunes at a conservative setting (-49% latency,
    // not the Low threshold's deeper cut).
    let pruned = run_system(&fx, SystemKind::Prism { threshold: 0.45 }, &batch, 10).schedule;
    let unpruned = prism_device::PruneSchedule::no_pruning(paper.num_layers, 60);

    let variants: Vec<(&str, Option<PrismSimOptions>, &prism_device::PruneSchedule)> = vec![
        ("HF Rerank", None, &unpruned),
        (
            "+ Progressive Cluster Pruning",
            Some(PrismSimOptions {
                streaming: false,
                chunked: None,
                embed_cache_fraction: None,
                hidden_offload: false,
                quant: false,
                gate_overhead_s: 1.0e-3,
            }),
            &pruned,
        ),
        (
            "+ Chunked Execution",
            Some(PrismSimOptions {
                streaming: false,
                chunked: Some(None),
                embed_cache_fraction: None,
                hidden_offload: false,
                quant: false,
                gate_overhead_s: 1.0e-3,
            }),
            &pruned,
        ),
        (
            "+ Dual-Layer Sliding Window",
            Some(PrismSimOptions {
                streaming: true,
                chunked: Some(None),
                embed_cache_fraction: None,
                hidden_offload: false,
                quant: false,
                gate_overhead_s: 1.0e-3,
            }),
            &pruned,
        ),
        (
            "+ Embedding Table Caching",
            Some(PrismSimOptions {
                streaming: true,
                chunked: Some(None),
                embed_cache_fraction: Some(0.10),
                hidden_offload: false,
                quant: false,
                gate_overhead_s: 1.0e-3,
            }),
            &pruned,
        ),
    ];

    let mut rows = Vec::new();
    let mut baseline: Option<(f64, u64)> = None;
    for (name, opts, schedule) in variants {
        let out = match opts {
            None => simulate_hf(&paper, &rtx, shape),
            Some(o) => simulate_prism(&paper, &rtx, shape, schedule, o),
        };
        let (base_lat, base_peak) = *baseline.get_or_insert((out.latency_s, out.peak_bytes));
        report.line(&format!(
            "{:<32} latency {:>9} ({:+.1}%)  peak {:>10} ({:+.1}%)",
            name,
            fmt_secs(out.latency_s),
            (out.latency_s / base_lat - 1.0) * 100.0,
            fmt_mib(out.peak_bytes),
            (out.peak_bytes as f64 / base_peak as f64 - 1.0) * 100.0
        ));
        rows.push(Fig16Row {
            variant: name.into(),
            latency_s: out.latency_s,
            peak_mib: out.peak_bytes as f64 / (1 << 20) as f64,
            timeline: out.timeline,
        });
    }
    let last = rows.last().expect("variants non-empty");
    let first = rows.first().expect("variants non-empty");
    report.line(&format!(
        "combined: {:.1}% latency reduction, {:.1}% peak memory reduction (paper: 48.5% / 78.4%)",
        (1.0 - last.latency_s / first.latency_s) * 100.0,
        (1.0 - last.peak_mib / first.peak_mib) * 100.0
    ));
    report.finish(&rows);
}

#[derive(Serialize)]
struct ExtraAblationRow {
    study: String,
    variant: String,
    metric: String,
    value: f64,
}

/// Extra design-choice ablations (DESIGN.md §5): K-selection policy,
/// CV gate vs always-cluster, and embedding-cache capacity sweep.
pub fn ablation_extra() {
    let mut report = Report::new("ablation_extra");
    let mut rows = Vec::new();
    let paper = ModelConfig::qwen3_0_6b();
    let fx = mini_fixture(paper.clone());
    let ds = dataset_by_name("wikipedia").expect("profile");
    let requests = 4_u64;
    let k = 5;

    // --- (1) CV gate vs always-cluster: executed work and precision ---
    report.line("(1) dispersion gate vs always-cluster");
    for (variant, threshold) in [("cv-gate t=0.25", 0.25_f32), ("always-cluster t=0.0", 0.0)] {
        let mut work = 0.0;
        let mut precision = 0.0;
        for r in 0..requests {
            let (batch, req) = fx.request(&ds, r, 20);
            let options = EngineOptions {
                dispersion_threshold: threshold,
                ..Default::default()
            };
            let mut engine = fx.engine(options, false);
            let (sel, schedule) = run_with_schedule(&mut engine, &batch, k, paper.num_layers);
            work += schedule.work_fraction(20);
            precision += precision_at_k(&sel.top_ids(), &req.relevant, k);
        }
        let n = requests as f64;
        report.line(&format!(
            "  {variant:<22} work fraction {:.3}  precision {:.3}",
            work / n,
            precision / n
        ));
        rows.push(ExtraAblationRow {
            study: "gate".into(),
            variant: variant.into(),
            metric: "work_fraction".into(),
            value: work / n,
        });
        rows.push(ExtraAblationRow {
            study: "gate".into(),
            variant: variant.into(),
            metric: "precision".into(),
            value: precision / n,
        });
    }

    // --- (2) silhouette-k vs fixed-k clustering quality on layer scores ---
    report.line("(2) K-Means model selection (routing safety on a mid-layer probe)");
    let (batch, _) = fx.request(&ds, 0, 20);
    let trace = fx.model.layer_score_trace(&batch).expect("trace");
    let mid = &trace[trace.len() / 2];
    let fin = trace.last().expect("final");
    for (variant, fixed_k) in [
        ("silhouette-auto", None),
        ("fixed k=2", Some(2)),
        ("fixed k=5", Some(5)),
    ] {
        let clustering = match fixed_k {
            None => prism_cluster::kmeans_auto(mid, 5, 7),
            Some(kk) => kmeans_1d(mid, kk, 7),
        };
        let cg = prism_metrics::cluster_gamma(mid, fin, &clustering.assignments);
        report.line(&format!(
            "  {variant:<16} clusters {}  cluster-γ {cg:.3}",
            clustering.k()
        ));
        rows.push(ExtraAblationRow {
            study: "k-selection".into(),
            variant: variant.into(),
            metric: "cluster_gamma".into(),
            value: cg,
        });
    }

    // --- (3) routing-mode safety check ---
    report.line("(3) three-way routing vs losers-only on a synthetic boundary");
    let scores = [0.9_f32, 0.88, 0.6, 0.58, 0.55, 0.2, 0.18, 0.15];
    for (variant, prune_winners) in [("three-way", true), ("losers-only", false)] {
        let d = route_candidates(&scores, 4, 0.1, prune_winners, 5, 3);
        let active_after = d.deferred.len();
        report.line(&format!(
            "  {variant:<12} selected {} dropped {} deferred {active_after}",
            d.selected.len(),
            d.dropped.len()
        ));
        rows.push(ExtraAblationRow {
            study: "routing-mode".into(),
            variant: variant.into(),
            metric: "deferred".into(),
            value: active_after as f64,
        });
    }

    // --- (4) embedding-cache capacity sweep at paper scale ---
    report.line("(4) embedding-cache capacity sweep (paper-scale resident bytes)");
    let rtx = DeviceSpec::rtx5070_laptop();
    let schedule = prism_device::PruneSchedule::no_pruning(paper.num_layers, 20);
    for frac in [0.01_f64, 0.05, 0.10, 0.25, 1.0] {
        let out = simulate_prism(
            &paper,
            &rtx,
            BatchShape {
                candidates: 20,
                seq_len: 500,
            },
            &schedule,
            PrismSimOptions {
                embed_cache_fraction: if frac >= 1.0 { None } else { Some(frac) },
                ..Default::default()
            },
        );
        report.line(&format!(
            "  cache {:>4.0}% of vocab  peak {}",
            frac * 100.0,
            fmt_mib(out.peak_bytes)
        ));
        rows.push(ExtraAblationRow {
            study: "cache-capacity".into(),
            variant: format!("{:.0}%", frac * 100.0),
            metric: "peak_mib".into(),
            value: out.peak_bytes as f64 / (1 << 20) as f64,
        });
    }
    report.finish(&rows);
}
