//! Real-world application experiments: RAG (Fig. 11), agent memory
//! (Figs. 12–13), long-context selection (Figs. 14–15).
//!
//! Behaviour (precision, success rates, cache hits, pruning schedules)
//! comes from the real mini pipelines in `prism-apps`; stage latencies and
//! memory at paper scale come from the device simulator, with the
//! reranker's schedule taken from the actual PRISM run.

use serde::Serialize;

use prism_baselines::HfVanilla;
use prism_core::EngineOptions;
use prism_device::{cost, BatchShape, DeviceSpec, PruneSchedule, SimOutcome};
use prism_metrics::MemoryMeter;
use prism_model::ModelConfig;
use prism_storage::Container;
use prism_workload::dataset_by_name;

use prism_apps::corpus::CorpusSpec;
use prism_apps::{AgentMemory, AgentScenario, Corpus, LongContextSelector, RagPipeline};

use crate::experiments::{run_system, simulate_system, thresholds_for, SystemKind};
use crate::fixtures::{mini_fixture, MiniFixture};
use crate::report::{fmt_mib, fmt_secs, Report};

/// Records the PRISM schedule for an app-shaped rerank request.
fn app_schedule(fx: &MiniFixture, candidates: usize, k: usize) -> PruneSchedule {
    let ds = dataset_by_name("wikipedia").expect("profile");
    let (batch, _) = fx.request(&ds, 0, candidates);
    let (_, high_t) = thresholds_for(&fx.paper.name);
    run_system(fx, SystemKind::Prism { threshold: high_t }, &batch, k).schedule
}

fn rerank_sims(
    fx: &MiniFixture,
    device: &DeviceSpec,
    candidates: usize,
    seq_len: usize,
    k: usize,
) -> (SimOutcome, SimOutcome) {
    let shape = BatchShape {
        candidates,
        seq_len,
    };
    let schedule = app_schedule(fx, candidates, k);
    let hf = simulate_system(SystemKind::Hf, &fx.paper, device, shape, &schedule);
    let ours = simulate_system(
        SystemKind::Prism {
            threshold: thresholds_for(&fx.paper.name).1,
        },
        &fx.paper,
        device,
        shape,
        &schedule,
    );
    (hf, ours)
}

fn rag_corpus(fx: &MiniFixture) -> Corpus {
    Corpus::generate(CorpusSpec {
        vocab_size: fx.mini.vocab_size,
        doc_len: 32,
        docs_per_query: 24,
        queries: 6,
        gold_per_query: 5,
        seed: 17,
    })
}

#[derive(Serialize)]
struct Fig11Row {
    platform: String,
    system: String,
    retrieve_s: f64,
    rerank_s: f64,
    first_token_s: f64,
    total_s: f64,
    accuracy: f64,
    rerank_peak_mib: f64,
    rerank_avg_mib: f64,
    timeline: Vec<(f64, u64)>,
}

/// Fig. 11: the RAG pipeline — latency & precision (a) and memory
/// footprint on both platforms (b, c).
pub fn fig11() {
    let mut report = Report::new("fig11");
    let mut rows = Vec::new();
    // Paper §6.3: Qwen3-0.6B reranker on Apple, BGE-MiniCPM on NVIDIA.
    let assignments = [
        (DeviceSpec::rtx5070_laptop(), ModelConfig::bge_minicpm()),
        (DeviceSpec::apple_m2(), ModelConfig::qwen3_0_6b()),
    ];
    for (device, reranker_cfg) in assignments {
        let fx = mini_fixture(reranker_cfg.clone());
        // --- behaviour: mini RAG accuracy for both rerankers ---
        let accuracy = |prism: bool| -> f64 {
            let corpus = rag_corpus(&fx);
            let queries = corpus.queries.len();
            let mut total = 0.0;
            if prism {
                let engine = fx.engine(EngineOptions::default(), false);
                let mut rag = RagPipeline::new(
                    corpus,
                    fx.model.weights.embedding.clone(),
                    engine,
                    fx.mini.max_seq,
                    ModelConfig::qwen3_8b(),
                    DeviceSpec::a800(),
                )
                .expect("pipeline");
                for q in 0..queries {
                    total += rag.answer(q, 10).expect("answer").gold_precision;
                }
            } else {
                let container = Container::open(&fx.container_path).expect("container");
                let hf = HfVanilla::new(&container, fx.mini.clone(), 20, MemoryMeter::new())
                    .expect("hf");
                let mut rag = RagPipeline::new(
                    corpus,
                    fx.model.weights.embedding.clone(),
                    hf,
                    fx.mini.max_seq,
                    ModelConfig::qwen3_8b(),
                    DeviceSpec::a800(),
                )
                .expect("pipeline");
                for q in 0..queries {
                    total += rag.answer(q, 10).expect("answer").gold_precision;
                }
            }
            total / queries as f64
        };
        let acc_hf = accuracy(false);
        let acc_ours = accuracy(true);

        // --- paper-scale latency & memory ---
        let (hf_sim, ours_sim) = rerank_sims(&fx, &device, 20, 500, 10);
        let retrieve_s = 0.008; // Hybrid search (paper Fig. 1: ~8 ms).
        let first_token_s =
            cost::first_token_time_s(&ModelConfig::qwen3_8b(), &DeviceSpec::a800(), 6 * 512);
        report.line(&format!(
            "--- {} (reranker: {}) ---",
            device.name, reranker_cfg.name
        ));
        for (system, sim, acc) in [("HF", &hf_sim, acc_hf), ("Ours", &ours_sim, acc_ours)] {
            let total = retrieve_s + sim.latency_s + first_token_s;
            report.line(&format!(
                "{:<5} total {} (retrieve {} + rerank {} + first-token {})  acc {:.3}  rerank peak {} avg {}",
                system,
                fmt_secs(total),
                fmt_secs(retrieve_s),
                fmt_secs(sim.latency_s),
                fmt_secs(first_token_s),
                acc,
                fmt_mib(sim.peak_bytes),
                fmt_mib(sim.avg_bytes)
            ));
            rows.push(Fig11Row {
                platform: device.name.clone(),
                system: system.into(),
                retrieve_s,
                rerank_s: sim.latency_s,
                first_token_s,
                total_s: total,
                accuracy: acc,
                rerank_peak_mib: sim.peak_bytes as f64 / (1 << 20) as f64,
                rerank_avg_mib: sim.avg_bytes as f64 / (1 << 20) as f64,
                timeline: sim.timeline.clone(),
            });
        }
        let reduction = 1.0
            - (retrieve_s + ours_sim.latency_s + first_token_s)
                / (retrieve_s + hf_sim.latency_s + first_token_s);
        report.line(&format!(
            "latency reduction {:.1}% (paper: 51% NVIDIA / 31% Apple); rerank peak saving {:.1}%",
            reduction * 100.0,
            (1.0 - ours_sim.peak_bytes as f64 / hf_sim.peak_bytes as f64) * 100.0
        ));
        report.blank();
    }
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig12Row {
    scenario: String,
    system: String,
    avg_latency_s: f64,
    env_s: f64,
    inference_s: f64,
    rerank_s: f64,
    success_rate: f64,
}

/// Figs. 12–13: agent memory — task latency & success rate, plus the
/// memory footprint of a single cached action.
pub fn fig12_13() {
    let mut report = Report::new("fig12_13");
    let fx = mini_fixture(ModelConfig::qwen3_0_6b());
    let rtx = DeviceSpec::rtx5070_laptop();
    let mut rows = Vec::new();
    let tasks = 16_u64;
    for scenario in [AgentScenario::Video, AgentScenario::Community] {
        report.line(&format!("--- {} ---", scenario.name()));
        let n_mem = scenario.memory_size();
        let (hf_rerank, ours_rerank) = rerank_sims(&fx, &rtx, n_mem, 300, 1);
        for system in ["Disable AM", "HF", "Ours"] {
            // Behaviour from the mini agent.
            let with_memory = system != "Disable AM";
            let reranker = with_memory.then(|| fx.engine(EngineOptions::default(), false));
            let mut agent = AgentMemory::new(
                scenario,
                reranker,
                fx.mini.vocab_size,
                fx.mini.max_seq,
                DeviceSpec::a800(),
                9,
            );
            let mut success = 0_usize;
            let mut vlm_total = 0.0;
            let mut hits = 0_usize;
            for t in 0..tasks {
                let r = agent.run_task(t).expect("task");
                if r.success {
                    success += 1;
                }
                if r.cache_hit {
                    hits += 1;
                }
                vlm_total += r.vlm_s;
            }
            let env_s = scenario.env_time_s();
            // Every action consults the memory once.
            let rerank_s = scenario.steps() as f64
                * match system {
                    "Disable AM" => 0.0,
                    "HF" => hf_rerank.latency_s,
                    _ => ours_rerank.latency_s,
                };
            let inference_s = vlm_total / tasks as f64;
            let avg_latency = env_s + inference_s + rerank_s;
            let success_rate = success as f64 / tasks as f64;
            report.line(&format!(
                "{:<10} avg {:>7} (env {} + VLM {} + rerank {})  success {:.3}  hits {hits}/{tasks}",
                system,
                fmt_secs(avg_latency),
                fmt_secs(env_s),
                fmt_secs(inference_s),
                fmt_secs(rerank_s),
                success_rate
            ));
            rows.push(Fig12Row {
                scenario: scenario.name().into(),
                system: system.into(),
                avg_latency_s: avg_latency,
                env_s,
                inference_s,
                rerank_s,
                success_rate,
            });
        }
        report.blank();
    }
    // Fig. 13: memory during one cached click (rerank phase only).
    let (hf_rerank, ours_rerank) =
        rerank_sims(&fx, &rtx, AgentScenario::Video.memory_size(), 300, 1);
    report.line(&format!(
        "fig13: rerank peak HF {} vs Ours {} ({:.1}% saving; paper: 63.0%)",
        fmt_mib(hf_rerank.peak_bytes),
        fmt_mib(ours_rerank.peak_bytes),
        (1.0 - ours_rerank.peak_bytes as f64 / hf_rerank.peak_bytes as f64) * 100.0
    ));
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig14Row {
    system: String,
    rerank_s: f64,
    inference_s: f64,
    total_s: f64,
    precision: f64,
    rerank_peak_mib: f64,
}

/// Figs. 14–15: LLM long-context selection — latency, precision and
/// memory.
pub fn fig14_15() {
    let mut report = Report::new("fig14_15");
    let fx = mini_fixture(ModelConfig::qwen3_0_6b());
    let rtx = DeviceSpec::rtx5070_laptop();
    let segments = 32;
    let window = 8;
    let questions = 8_u64;
    let gen_cfg = ModelConfig::qwen3_4b();

    // Behaviour: mini selectors.
    let run_selector = |mode: &str| -> f64 {
        let mut precision = 0.0;
        match mode {
            "Ours" => {
                let engine = fx.engine(EngineOptions::default(), false);
                let mut sel = LongContextSelector::new(
                    Some(engine),
                    fx.mini.vocab_size,
                    16,
                    segments,
                    5,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    precision += sel.run(q).expect("run").segment_precision;
                }
            }
            "HF Rerank" => {
                let container = Container::open(&fx.container_path).expect("container");
                let hf = HfVanilla::new(&container, fx.mini.clone(), 32, MemoryMeter::new())
                    .expect("hf");
                let mut sel = LongContextSelector::new(
                    Some(hf),
                    fx.mini.vocab_size,
                    16,
                    segments,
                    5,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    precision += sel.run(q).expect("run").segment_precision;
                }
            }
            _ => {
                let mut sel: LongContextSelector<HfVanilla> = LongContextSelector::new(
                    None,
                    fx.mini.vocab_size,
                    16,
                    segments,
                    5,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    precision += sel.run(q).expect("run").segment_precision;
                }
            }
        }
        precision / questions as f64
    };

    let (hf_sim, ours_sim) = rerank_sims(&fx, &rtx, segments, 500, window);
    let gen_selected = cost::prefill_time_s(&gen_cfg, &rtx, (window * 512) as u64)
        + cost::decode_time_s(&gen_cfg, &rtx, 64);
    let gen_full = cost::prefill_time_s(&gen_cfg, &rtx, (segments * 512) as u64)
        + cost::decode_time_s(&gen_cfg, &rtx, 64);

    let mut rows = Vec::new();
    for (system, rerank_s, inference_s, peak) in [
        (
            "Ours",
            ours_sim.latency_s,
            gen_selected,
            ours_sim.peak_bytes,
        ),
        (
            "HF Rerank",
            hf_sim.latency_s,
            gen_selected,
            hf_sim.peak_bytes,
        ),
        ("Baseline (no rerank)", 0.0, gen_full, 0),
    ] {
        let precision = run_selector(system);
        let total = rerank_s + inference_s;
        report.line(&format!(
            "{:<22} total {} (rerank {} + inference {})  precision {:.3}  rerank peak {}",
            system,
            fmt_secs(total),
            fmt_secs(rerank_s),
            fmt_secs(inference_s),
            precision,
            fmt_mib(peak)
        ));
        rows.push(Fig14Row {
            system: system.into(),
            rerank_s,
            inference_s,
            total_s: total,
            precision,
            rerank_peak_mib: peak as f64 / (1 << 20) as f64,
        });
    }
    let vs_hf = 1.0 - rows[0].total_s / rows[1].total_s;
    let vs_none = 1.0 - rows[0].total_s / rows[2].total_s;
    report.line(&format!(
        "ours vs HF Rerank: -{:.1}% latency (paper: 11.6%); vs no rerank: -{:.1}% (paper: 57.3%)",
        vs_hf * 100.0,
        vs_none * 100.0
    ));
    report.finish(&rows);
}
