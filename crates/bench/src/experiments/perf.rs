//! `repro perf`: the kernel / forward-path performance trajectory.
//!
//! Times the hot compute spine — dense GEMM, quantized GEMM, one
//! transformer layer, and an end-to-end `select_top_k` on the resident
//! pruning engine — and writes the numbers to `BENCH_kernels.json` at the
//! workspace root. The first ever run becomes the frozen `baseline`
//! section; later runs refresh `current` and the per-bench `speedup`
//! ratios, so kernel regressions show up as a diff of one committed file.
//! CI runs `repro perf --fast` to refresh the artifact cheaply.

use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_core::{
    ComputePrecision, EngineOptions, PrismEngine, RequestOptions, SemCacheMode, SpillPrecision,
};
use prism_metrics::MemoryMeter;
use prism_model::layer::{forward_layer, ForwardScratch};
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{
    run_closed_loop, ClassReport, LoadReport, LoadSpec, PrismServer, ServeConfig, ServeRequest,
    ServeStats, ShardFault, ShardSet,
};
use prism_storage::Container;
use prism_tensor::{igemm, ops, rowq, QuantMatrix, Tensor};
use prism_workload::WorkloadGenerator;
use serde::Serialize;

use crate::report::Report;

/// Committed trajectory file at the workspace root.
pub const KERNELS_FILE: &str = "BENCH_kernels.json";

/// One timed benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct PerfEntry {
    /// Stable benchmark name (`group/case`).
    pub name: String,
    /// Median wall time per iteration in nanoseconds.
    pub median_ns: f64,
}

/// One full measurement pass.
#[derive(Debug, Serialize)]
pub struct PerfSnapshot {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// All benchmark results of this pass.
    pub entries: Vec<PerfEntry>,
}

#[derive(Debug, Serialize)]
struct SpeedupEntry {
    name: String,
    baseline_ns: f64,
    current_ns: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct KernelsFile {
    schema: String,
    baseline: PerfSnapshot,
    current: PerfSnapshot,
    speedup: Vec<SpeedupEntry>,
    simd: SimdSection,
    offload: OffloadSection,
    serving: ServingSection,
    scheduling: SchedulingSection,
    sharded: ShardedSection,
    int8: Int8Section,
    semcache: SemCacheSection,
    resilience: ResilienceSection,
}

/// One kernel measured at the pinned AVX2 tier versus full runtime
/// dispatch (AVX-512 where the host supports it).
#[derive(Debug, Serialize)]
pub struct SimdRow {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median at the forced AVX2 tier, nanoseconds.
    pub avx2_ns: f64,
    /// Median with runtime dispatch (widest tier), nanoseconds.
    pub dispatched_ns: f64,
    /// `avx2_ns / dispatched_ns` — the dispatch tier's gain.
    pub speedup: f64,
}

/// The SIMD-tier comparison: what the AVX-512 microkernels buy over the
/// AVX2 tier on this host.
#[derive(Debug, Serialize)]
pub struct SimdSection {
    /// Widest tier the CPU supports (`"scalar"` / `"avx2"` / `"avx512"`
    /// / `"avx512vnni"`).
    pub detected_tier: String,
    /// Per-kernel tier comparison rows.
    pub rows: Vec<SimdRow>,
}

/// One offload-regime configuration's measurement.
#[derive(Debug, Serialize)]
pub struct OffloadConfigResult {
    /// `"sync_f32"` (frozen baseline) or `"pipelined_int8"`.
    pub label: String,
    /// Median `select_top_k` wall time, nanoseconds.
    pub median_ns: f64,
    /// Bytes moved through the spill file per selection.
    pub spill_bytes: u64,
    /// Fraction of spill I/O hidden behind compute.
    pub overlap_efficiency: f64,
}

/// One model scale's offload-regime comparison.
#[derive(Debug, Serialize)]
pub struct OffloadScaleResult {
    /// `"test12"` or `"paper_mini"`.
    pub scale: String,
    /// Synchronous raw-f32 spilling (the pre-pipeline engine).
    pub baseline: OffloadConfigResult,
    /// Overlapped pipeline + int8 spill format (the default engine).
    pub current: OffloadConfigResult,
    /// `baseline.median_ns / current.median_ns` — the acceptance gate
    /// (>= 3x on the emulated 16 MB/s SSD).
    pub speedup: f64,
}

/// The spill/offload acceptance measurement: `select_top_k` under
/// extreme memory pressure (hidden offload, 2-candidate chunks) on the
/// emulated 16 MB/s SSD, quantized + pipelined versus synchronous f32.
#[derive(Debug, Serialize)]
pub struct OffloadSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Emulated SSD bandwidth for spill I/O, bytes/s.
    pub throttle_bytes_per_sec: u64,
    /// Candidates per selection.
    pub candidates: usize,
    /// Candidates per chunk (fixed small so most chunks spill).
    pub chunk_candidates: usize,
    /// Top-K per selection.
    pub k: usize,
    /// Per-scale comparisons.
    pub scales: Vec<OffloadScaleResult>,
}

/// One serving configuration's closed-loop measurement.
#[derive(Debug, Serialize)]
pub struct ServingConfigResult {
    /// Configuration label.
    pub label: String,
    /// Worker threads.
    pub workers: usize,
    /// Coalescing cap (requests per batch).
    pub max_batch_requests: usize,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// The `prsm bench-serve` acceptance measurement: closed-loop serving
/// throughput/latency of the batched scheduler (and session-cache
/// replay) against the 1-worker/no-batching reference, on a streamed
/// engine with an emulated-SSD throttle.
#[derive(Debug, Serialize)]
pub struct ServingSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Emulated SSD bandwidth for weight streaming, bytes/s.
    pub throttle_bytes_per_sec: u64,
    /// Requests per configuration run.
    pub requests: usize,
    /// Candidates per request.
    pub candidates: usize,
    /// Top-K per request.
    pub k: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// 1 worker, 1 request per batch, no cache.
    pub serial: ServingConfigResult,
    /// 1 worker, coalescing up to 8 requests, no cache.
    pub batched: ServingConfigResult,
    /// Batched plus session cache, repeat-heavy corpus stream.
    pub cached: ServingConfigResult,
    /// `batched.throughput / serial.throughput` — the acceptance gate
    /// (>= 2x from batching amortization alone).
    pub batching_throughput_gain: f64,
    /// `cached.throughput / serial.throughput`.
    pub cached_throughput_gain: f64,
}

/// One scheduler's closed-loop result on the mixed-priority workload.
#[derive(Debug, Serialize)]
pub struct SchedulingConfigResult {
    /// `"fifo"` or `"priority_edf"`.
    pub label: String,
    /// Completed requests per second (whole mixed stream).
    pub throughput_rps: f64,
    /// Overall p99 latency, microseconds.
    pub p99_us: u64,
    /// High-priority class summary.
    pub high: Option<ClassReport>,
    /// Bulk class summary.
    pub bulk: Option<ClassReport>,
}

/// The scheduler-policy acceptance measurement: a mixed workload (10%
/// High-priority with deadlines, 90% bulk) on the emulated streaming
/// SSD, served by the pure-FIFO baseline and by priority-then-EDF under
/// identical budgets. The gate: high-priority p99 improves >= 3x at
/// equal total throughput (within 10%).
#[derive(Debug, Serialize)]
pub struct SchedulingSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Emulated SSD bandwidth for weight streaming, bytes/s.
    pub throttle_bytes_per_sec: u64,
    /// Requests per scheduler run.
    pub requests: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Fraction of the stream submitted as High priority.
    pub high_fraction: f64,
    /// Relative deadline on High requests, microseconds.
    pub high_deadline_us: u64,
    /// Coalescing cap both schedulers run under.
    pub max_batch_requests: usize,
    /// Pure-FIFO baseline.
    pub fifo: SchedulingConfigResult,
    /// Priority-then-EDF scheduler.
    pub priority: SchedulingConfigResult,
    /// `fifo.high.p99 / priority.high.p99` — the acceptance gate (>= 3x).
    pub high_p99_improvement: f64,
    /// `priority.throughput / fifo.throughput` — must stay within 10%
    /// of 1.0 (priority reorders work, it must not shed throughput).
    pub throughput_ratio: f64,
}

/// One serving configuration of the `sharded` section.
#[derive(Debug, Serialize)]
pub struct ShardedConfigResult {
    /// Configuration label.
    pub label: String,
    /// Engine shards behind the forward map (1 = unsharded).
    pub shards: usize,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// `single.throughput / this.throughput` — what colocated
    /// scatter-gather costs relative to the single resident engine.
    pub overhead_ratio: f64,
}

/// The scatter-gather acceptance measurement: closed-loop serving
/// through `PrismServer::start_sharded` (candidates partitioned across
/// resident engine shards behind the consistent-hash forward map)
/// against the single resident engine. On a one-host runner the shards
/// *serialize*, so the honest gates are exact parity (every sharded
/// selection bit-identical to the single engine) and bounded
/// coordination overhead ([`SHARDED_GUARD_MAX`]) — not speedup.
#[derive(Debug, Serialize)]
pub struct ShardedSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Requests per configuration run.
    pub requests: usize,
    /// Candidates per request.
    pub candidates: usize,
    /// Top-K per request.
    pub k: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Whether every sharded selection matched the single-engine
    /// reference bit for bit (ids, score bits, decision layers).
    pub parity: bool,
    /// Worst `overhead_ratio` across the sharded configurations (the
    /// guarded number).
    pub worst_overhead_ratio: f64,
    /// The single resident engine reference.
    pub single: ShardedConfigResult,
    /// Colocated scatter-gather runs at each measured shard count.
    pub sharded: Vec<ShardedConfigResult>,
}

/// One int8-vs-f32 compute comparison of the `int8` section.
#[derive(Debug, Serialize)]
pub struct Int8Row {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median with f32 compute, nanoseconds.
    pub f32_ns: f64,
    /// Median with int8 compute, nanoseconds.
    pub int8_ns: f64,
    /// `f32_ns / int8_ns` — the integer kernels' gain.
    pub speedup: f64,
}

/// The int8-compute acceptance measurement: the u8×i8 GEMM and the
/// integer layer forward against their f32 twins, plus `select_top_k`
/// in the offload regime under both compute precisions. The `gemm/` and
/// `model/` rows carry the >= 2x acceptance gate (guarded at
/// [`INT8_GUARD_MIN`]); the `engine/` rows are informational — the
/// spilled window is I/O-bound on the emulated SSD, so the end-to-end
/// gain there is smaller — but both precisions must select the same
/// candidate ids ([`Int8Section::topk_parity`]).
#[derive(Debug, Serialize)]
pub struct Int8Section {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Emulated SSD bandwidth for spill I/O, bytes/s.
    pub throttle_bytes_per_sec: u64,
    /// Whether every offload-regime selection returned the same id set
    /// under both compute precisions (the golden parity gate).
    pub topk_parity: bool,
    /// Per-benchmark comparison rows.
    pub rows: Vec<Int8Row>,
}

/// The semantic result-cache acceptance measurement: a closed-loop
/// duplicate-heavy stream (cross-session repeats only the semantic tier
/// can serve — the session cache is disabled) with the cache off versus
/// `Aggressive` replay, plus the `VerifyAndFallback` parity witness: a
/// fixed tagged request set replayed through the verifying mode must
/// match the cache-off reference bit for bit (ids, score bits, decision
/// layers, last-layer scores). The throughput gain is guarded at
/// [`SEMCACHE_GUARD_MIN`].
#[derive(Debug, Serialize)]
pub struct SemCacheSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Emulated SSD bandwidth for weight streaming, bytes/s.
    pub throttle_bytes_per_sec: u64,
    /// Requests per configuration run.
    pub requests: usize,
    /// Candidates per request.
    pub candidates: usize,
    /// Top-K per request.
    pub k: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Fraction of the stream drawn from the cross-session duplicate
    /// pool.
    pub dup_fraction: f64,
    /// Whether every `VerifyAndFallback` and `Aggressive` replay of the
    /// parity set matched the cache-off reference bit for bit.
    pub verify_parity: bool,
    /// `aggressive.throughput_rps / off.throughput_rps` — the guarded
    /// number (acceptance >= 1.5x on the duplicate-heavy stream).
    pub aggressive_gain: f64,
    /// Candidate replays served by the cache during the aggressive run.
    pub semcache_hits: u64,
    /// Candidates that went through the forward pass.
    pub semcache_misses: u64,
    /// The cache-off reference run.
    pub off: ServingConfigResult,
    /// The `Aggressive` replay run.
    pub aggressive: ServingConfigResult,
}

/// Replication's fault-absorption economics, measured by driving a
/// three-shard [`ShardSet`] directly (no queueing noise): the same
/// request schedule at R=1 and R=2 while healthy (fault-free overhead),
/// with one of the three shards dead for the whole run (degraded
/// throughput, zero failures, bit parity), and with a periodic 5 ms
/// stall hedged versus waited out (tail gain at bounded extra compute).
/// Gated by [`RESILIENCE_OVERHEAD_MAX`], [`RESILIENCE_KILLED_MIN`],
/// [`RESILIENCE_HEDGE_GAIN_MIN`] and [`RESILIENCE_HEDGE_COST_MAX`].
#[derive(Debug, Serialize)]
pub struct ResilienceSection {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Requests per run.
    pub requests: usize,
    /// Candidates per request.
    pub candidates: usize,
    /// Top-K per request.
    pub k: usize,
    /// Engine shards behind the forward map.
    pub shards: usize,
    /// Replication factor of the resilient runs.
    pub replicas: usize,
    /// Every faulted run stayed bit-identical to the healthy R=1
    /// reference (ids, score bits, decision layers, last-layer scores).
    pub parity: bool,
    /// Healthy throughput with replication off (R=1).
    pub unreplicated_rps: f64,
    /// Healthy throughput at R=2 with the hedge armed.
    pub healthy_rps: f64,
    /// Healthy R=2 fastest-request latency over healthy R=1 —
    /// replication's fault-free code-path cost (documented <= 5%
    /// acceptance gate). The minimum isolates the path cost from
    /// scheduler noise: both runs execute identical work, so any real
    /// overhead shows up in the floor, not just the median.
    pub faultfree_overhead_ratio: f64,
    /// Throughput with one of the three shards dead the whole run.
    pub killed_rps: f64,
    /// `killed_rps / healthy_rps` (documented >= 70% acceptance gate).
    pub killed_throughput_ratio: f64,
    /// Requests that failed during the killed run (must be zero: R=2
    /// absorbs any single-shard death).
    pub killed_errors: usize,
    /// p99 with a 5 ms stall on one shard every 4th request, hedging
    /// off (the stall is waited out at every layer boundary).
    pub unhedged_p99_us: u64,
    /// p99 of the same stall schedule with a 2 ms hedge.
    pub hedged_p99_us: u64,
    /// `unhedged_p99_us / hedged_p99_us` (documented >= 2x gate).
    pub hedge_p99_gain: f64,
    /// Hedged re-sends fired during the hedged stall run.
    pub hedges_fired: u64,
    /// Extra compute the hedges cost: re-sent shard shares per request,
    /// `hedges_fired * (1/shards) / requests` (documented <= 10% gate).
    pub hedge_extra_compute: f64,
}

/// Times `f`, returning the median of `reps` samples in nanoseconds.
fn time_median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warmup iteration.
    f();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn mat(rows: usize, cols: usize, seed: f32) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) as f32 * seed).sin() * 0.5
    })
}

fn gemm_benches(fast: bool, entries: &mut Vec<PerfEntry>) {
    let reps = if fast { 5 } else { 25 };
    // Square GEMM above the cache-blocking scale.
    let a = mat(256, 256, 0.013);
    let b = mat(256, 256, 0.017);
    entries.push(PerfEntry {
        name: "gemm/matmul_256x256x256".into(),
        median_ns: time_median_ns(reps, || {
            std::hint::black_box(ops::matmul(&a, &b).unwrap());
        }),
    });
    // Mini-scale FFN projection: 640 packed tokens, d=32 -> f=64.
    let x = mat(640, 32, 0.007);
    let w = mat(64, 32, 0.011);
    entries.push(PerfEntry {
        name: "gemm/matmul_transb_640x32x64".into(),
        median_ns: time_median_ns(reps * 4, || {
            std::hint::black_box(ops::matmul_transb(&x, &w).unwrap());
        }),
    });
    // Paper-mini projection: 1024 tokens, d=256 -> 256.
    let xl = mat(1024, 256, 0.009);
    let wl = mat(256, 256, 0.003);
    entries.push(PerfEntry {
        name: "gemm/matmul_transb_1024x256x256".into(),
        median_ns: time_median_ns(reps, || {
            std::hint::black_box(ops::matmul_transb(&xl, &wl).unwrap());
        }),
    });
    // Quantized (W4A16) variants of both transb shapes.
    let q = QuantMatrix::quantize(&w).unwrap();
    entries.push(PerfEntry {
        name: "quant/matmul_transb_640x32x64".into(),
        median_ns: time_median_ns(reps * 4, || {
            std::hint::black_box(q.matmul_transb(&x).unwrap());
        }),
    });
    let ql = QuantMatrix::quantize(&wl).unwrap();
    let xq = mat(512, 256, 0.005);
    entries.push(PerfEntry {
        name: "quant/matmul_transb_512x256x256".into(),
        median_ns: time_median_ns(reps, || {
            std::hint::black_box(ql.matmul_transb(&xq).unwrap());
        }),
    });
}

fn rowq_benches(fast: bool, entries: &mut Vec<PerfEntry>) {
    let reps = if fast { 8 } else { 40 };
    // One paper-mini spilled chunk: 128 rows (2 candidates x 64 tokens)
    // of hidden width 256.
    let rows = 128;
    let cols = 256;
    let src = mat(rows, cols, 0.019);
    let mut codes = vec![0_u8; rows * cols];
    let mut mins = vec![0.0_f32; rows];
    let mut scales = vec![0.0_f32; rows];
    entries.push(PerfEntry {
        name: format!("rowq/encode_{rows}x{cols}"),
        median_ns: time_median_ns(reps, || {
            for r in 0..rows {
                let (min, scale) = rowq::encode_row(
                    &src.data()[r * cols..(r + 1) * cols],
                    &mut codes[r * cols..(r + 1) * cols],
                )
                .unwrap();
                mins[r] = min;
                scales[r] = scale;
            }
            std::hint::black_box(&codes);
        }),
    });
    let mut back = vec![0.0_f32; rows * cols];
    entries.push(PerfEntry {
        name: format!("rowq/decode_{rows}x{cols}"),
        median_ns: time_median_ns(reps, || {
            for r in 0..rows {
                rowq::decode_row(
                    &codes[r * cols..(r + 1) * cols],
                    mins[r],
                    scales[r],
                    &mut back[r * cols..(r + 1) * cols],
                )
                .unwrap();
            }
            std::hint::black_box(&back);
        }),
    });
}

/// Measures the SIMD-tier comparison rows (AVX2-pinned vs dispatched).
fn simd_bench(fast: bool) -> SimdSection {
    let reps = if fast { 7 } else { 25 };
    let detected = ops::detected_simd_tier();
    let detected_tier = match detected {
        ops::SimdTier::Scalar => "scalar",
        ops::SimdTier::Avx2 => "avx2",
        ops::SimdTier::Avx512 => "avx512",
        ops::SimdTier::Avx512Vnni => "avx512vnni",
    }
    .to_string();
    let mut rows = Vec::new();
    let cases: [(&str, usize, usize, usize); 2] = [
        ("gemm/matmul_256x256x256", 256, 256, 256),
        ("gemm/matmul_transb_1024x256x256", 1024, 256, 256),
    ];
    for (name, m, k, n) in cases {
        let a = mat(m, k, 0.013);
        let b = mat(n, k, 0.017);
        let measure = |tier: Option<ops::SimdTier>| {
            ops::force_simd_tier(tier);
            let ns = time_median_ns(reps, || {
                std::hint::black_box(ops::matmul_transb(&a, &b).unwrap());
            });
            ops::force_simd_tier(None);
            ns
        };
        let avx2_ns = measure(Some(ops::SimdTier::Avx2));
        let dispatched_ns = measure(None);
        rows.push(SimdRow {
            name: name.to_string(),
            avx2_ns,
            dispatched_ns,
            speedup: avx2_ns / dispatched_ns,
        });
    }
    SimdSection {
        detected_tier,
        rows,
    }
}

/// Engine options for the §4.3 offload regime: weights resident (so the
/// measurement isolates spill traffic), hidden offload on with
/// 2-candidate chunks, spill I/O throttled to the emulated SSD.
fn offload_options(throttle: u64, pipelined: bool) -> EngineOptions {
    EngineOptions {
        streaming: false,
        embed_cache: false,
        hidden_offload: true,
        chunk_candidates: Some(2),
        spill_pipeline: pipelined,
        stream_throttle: Some(throttle),
        ..Default::default()
    }
}

/// Measures the offload-regime comparison for the `offload` section.
fn offload_bench(fast: bool) -> OffloadSection {
    const THROTTLE: u64 = 16_000_000; // Emulated 16 MB/s SSD.
    const CANDIDATES: usize = 16; // 8 chunks of 2 -> 5 spill slots.
    const K: usize = 5;
    let reps = if fast { 3 } else { 9 };
    let mut scales = Vec::new();
    let cases: [(&str, ModelConfig); 2] = [
        (
            "test12",
            ModelConfig::test_config(ModelArch::DecoderOnly, 12),
        ),
        ("paper_mini", ModelConfig::bge_m3().mini_twin()),
    ];
    for (tag, config) in cases {
        let model = Model::generate(config.clone(), 7).expect("model");
        let mut path = std::env::temp_dir();
        path.push(format!(
            "prism-perf-offload-{tag}-{}.prsm",
            std::process::id()
        ));
        model.write_container(&path).expect("container");
        let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
        let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
        let batch = SequenceBatch::new(&gen.request(0, CANDIDATES).sequences()).expect("batch");

        let run = |label: &str, pipelined: bool, precision: SpillPrecision| {
            let engine = PrismEngine::new(
                Container::open(&path).expect("open"),
                config.clone(),
                offload_options(THROTTLE, pipelined),
                MemoryMeter::new(),
            )
            .expect("engine");
            // A pinned tag keeps the routing stream identical across
            // reps and configurations, so both sides prune identically.
            let options = RequestOptions::tagged(K, 1).with_spill_precision(precision);
            let mut spill_bytes = 0_u64;
            let mut overlap = 0.0_f64;
            let median_ns = time_median_ns(reps, || {
                let sel = engine
                    .select_with(&batch, options.clone())
                    .expect("selection");
                spill_bytes = sel.trace.spill_bytes;
                overlap = sel.trace.spill_stats.overlap_efficiency();
            });
            OffloadConfigResult {
                label: label.to_string(),
                median_ns,
                spill_bytes,
                overlap_efficiency: overlap,
            }
        };
        let baseline = run("sync_f32", false, SpillPrecision::F32);
        let current = run("pipelined_int8", true, SpillPrecision::Int8);
        std::fs::remove_file(&path).ok();
        let speedup = baseline.median_ns / current.median_ns;
        scales.push(OffloadScaleResult {
            scale: tag.to_string(),
            baseline,
            current,
            speedup,
        });
    }
    OffloadSection {
        mode: if fast { "fast" } else { "full" }.into(),
        throttle_bytes_per_sec: THROTTLE,
        candidates: CANDIDATES,
        chunk_candidates: 2,
        k: K,
        scales,
    }
}

/// Measures the int8-compute comparison for the `int8` section: kernel
/// and layer-forward twins, then the offload-regime end-to-end run with
/// the top-k parity check.
fn int8_bench(fast: bool) -> Int8Section {
    const THROTTLE: u64 = 16_000_000; // Emulated 16 MB/s SSD.
    const CANDIDATES: usize = 16;
    const K: usize = 5;
    let mut rows = Vec::new();
    let row = |name: &str, f32_ns: f64, int8_ns: f64| Int8Row {
        name: name.to_string(),
        f32_ns,
        int8_ns,
        speedup: f32_ns / int8_ns,
    };

    // Paper-mini projection GEMM: dispatched f32 against rowq-encode +
    // u8×i8. The encode cost is charged to the int8 side — it is part
    // of the monolithic-forward path the spilled window runs.
    let reps = if fast { 5 } else { 25 };
    let xl = mat(1024, 256, 0.009);
    let wl = mat(256, 256, 0.003);
    let qw = igemm::Int8Matrix::quantize(&wl).expect("int8 weights");
    let f32_ns = time_median_ns(reps, || {
        std::hint::black_box(ops::matmul_transb(&xl, &wl).unwrap());
    });
    let mut out = Tensor::zeros(1024, 256);
    let mut block = igemm::RowQuantBlock::new();
    let int8_ns = time_median_ns(reps, || {
        block.encode_into(&xl).unwrap();
        qw.matmul_rowq_into(&block, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    rows.push(row("gemm/transb_1024x256x256", f32_ns, int8_ns));

    // One paper-shaped layer (hidden 256, ffn 512) over 20 candidates x
    // 32 tokens: the f32 scratch path against `forward_layer_int8`
    // (same scratch, same ranges) — the layer-level acceptance gate.
    // The mini twin's hidden_dim of 32 sits below the integer kernels'
    // useful width; the end-to-end `engine/` rows below cover that
    // scale.
    let config = ModelConfig {
        hidden_dim: 256,
        num_heads: 8,
        ffn_dim: 512,
        ..ModelConfig::bge_m3().mini_twin()
    };
    let weights = prism_model::LayerWeights::generate(&config, 0, 11);
    let qweights = prism_model::Int8LayerWeights::from_layer(&weights).expect("int8 layer");
    let tokens = 20 * 32;
    let base = Tensor::from_fn(tokens, config.hidden_dim, |r, c| {
        ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
    });
    let ranges: Vec<(usize, usize)> = (0..20).map(|i| (i * 32, (i + 1) * 32)).collect();
    let mut scratch = ForwardScratch::new(&config, tokens);
    let mut hidden = base.clone();
    let f32_ns = time_median_ns(reps, || {
        hidden.data_mut().copy_from_slice(base.data());
        prism_model::layer::forward_layer_with(
            &config,
            &weights,
            0,
            &mut hidden,
            &ranges,
            &mut scratch,
        )
        .unwrap();
    });
    let int8_ns = time_median_ns(reps, || {
        hidden.data_mut().copy_from_slice(base.data());
        prism_model::layer::forward_layer_int8(
            &config,
            &qweights,
            0,
            &mut hidden,
            &ranges,
            &mut scratch,
        )
        .unwrap();
    });
    rows.push(row("model/forward_layer_h256_640tok", f32_ns, int8_ns));

    // End-to-end `select_top_k` in the offload regime: both sides run
    // the pipelined int8 spill format; only the compute precision
    // differs. The int8 side feeds fetched blocks straight into the
    // integer GEMMs (no f32 decode round-trip).
    let mut topk_parity = true;
    let sel_reps = if fast { 3 } else { 9 };
    let cases: [(&str, ModelConfig); 2] = [
        (
            "test12",
            ModelConfig::test_config(ModelArch::DecoderOnly, 12),
        ),
        ("paper_mini", ModelConfig::bge_m3().mini_twin()),
    ];
    for (tag, config) in cases {
        let model = Model::generate(config.clone(), 7).expect("model");
        let mut path = std::env::temp_dir();
        path.push(format!("prism-perf-int8-{tag}-{}.prsm", std::process::id()));
        model.write_container(&path).expect("container");
        let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
        let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
        let batch = SequenceBatch::new(&gen.request(0, CANDIDATES).sequences()).expect("batch");
        let run = |precision: ComputePrecision| {
            let engine = PrismEngine::new(
                Container::open(&path).expect("open"),
                config.clone(),
                offload_options(THROTTLE, true),
                MemoryMeter::new(),
            )
            .expect("engine");
            let options = RequestOptions::tagged(K, 1)
                .with_spill_precision(SpillPrecision::Int8)
                .with_compute_precision(precision);
            let mut ids = Vec::new();
            let median_ns = time_median_ns(sel_reps, || {
                let sel = engine
                    .select_with(&batch, options.clone())
                    .expect("selection");
                ids = sel.top_ids();
            });
            ids.sort_unstable();
            (median_ns, ids)
        };
        let (f32_ns, f32_ids) = run(ComputePrecision::F32);
        let (int8_ns, int8_ids) = run(ComputePrecision::Int8);
        std::fs::remove_file(&path).ok();
        topk_parity &= f32_ids == int8_ids;
        rows.push(row(
            &format!("engine/select_offload_{tag}"),
            f32_ns,
            int8_ns,
        ));
    }

    Int8Section {
        mode: if fast { "fast" } else { "full" }.into(),
        throttle_bytes_per_sec: THROTTLE,
        topk_parity,
        rows,
    }
}

fn forward_layer_bench(fast: bool, entries: &mut Vec<PerfEntry>) {
    let reps = if fast { 5 } else { 25 };
    // One layer of the paper-mini twin over 20 candidates x 32 tokens.
    let config = ModelConfig::bge_m3().mini_twin();
    let weights = prism_model::LayerWeights::generate(&config, 0, 11);
    let tokens = 20 * 32;
    let base = Tensor::from_fn(tokens, config.hidden_dim, |r, c| {
        ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
    });
    let ranges: Vec<(usize, usize)> = (0..20).map(|i| (i * 32, (i + 1) * 32)).collect();
    let mut hidden = base.clone();
    entries.push(PerfEntry {
        name: "model/forward_layer_mini_640tok".into(),
        median_ns: time_median_ns(reps, || {
            hidden.data_mut().copy_from_slice(base.data());
            forward_layer(&config, &weights, 0, &mut hidden, &ranges).unwrap();
        }),
    });
    // Same layer through a reused scratch workspace (the engine's path).
    let mut scratch = ForwardScratch::new(&config, tokens);
    entries.push(PerfEntry {
        name: "model/forward_layer_scratch_mini_640tok".into(),
        median_ns: time_median_ns(reps, || {
            hidden.data_mut().copy_from_slice(base.data());
            prism_model::layer::forward_layer_with(
                &config,
                &weights,
                0,
                &mut hidden,
                &ranges,
                &mut scratch,
            )
            .unwrap();
        }),
    });
}

/// The acceptance-gate engine configuration: all weights resident,
/// pruning on (the criterion `engine` bench's geometry).
fn resident_pruned_options() -> EngineOptions {
    EngineOptions {
        streaming: false,
        embed_cache: false,
        ..Default::default()
    }
}

fn engine_bench(config: ModelConfig, tag: &str, fast: bool, entries: &mut Vec<PerfEntry>) {
    let reps = if fast { 5 } else { 20 };
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batch = SequenceBatch::new(&gen.request(0, 20).sequences()).expect("batch");
    let container = Container::open(&path).expect("open");
    let engine = PrismEngine::new(
        container,
        config,
        resident_pruned_options(),
        MemoryMeter::new(),
    )
    .expect("engine");
    entries.push(PerfEntry {
        name: format!("engine/select_top_k_resident_pruned_{tag}"),
        median_ns: time_median_ns(reps, || {
            std::hint::black_box(engine.select_top_k(&batch, 5).unwrap());
        }),
    });
    std::fs::remove_file(&path).ok();
}

fn serving_result(label: &str, config: &ServeConfig, report: &LoadReport) -> ServingConfigResult {
    ServingConfigResult {
        label: label.to_string(),
        workers: config.workers,
        max_batch_requests: config.max_batch_requests,
        throughput_rps: report.throughput_rps,
        mean_us: report.mean_us,
        p50_us: report.p50_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
    }
}

/// A serving measurement pass plus the raw per-configuration reports
/// (whose stats snapshots `repro sim-validate` calibrates from).
pub(crate) struct MeasuredServing {
    pub section: ServingSection,
    pub serial: LoadReport,
    pub batched: LoadReport,
    pub cached: LoadReport,
}

fn serving_bench(fast: bool) -> ServingSection {
    serving_bench_measured(fast).section
}

/// Measures the serving configurations for the `serving` section (also
/// the measured side of `repro sim-validate`).
pub(crate) fn serving_bench_measured(fast: bool) -> MeasuredServing {
    const THROTTLE: u64 = 16_000_000; // Emulated 16 MB/s streaming SSD.
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-serve-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let engine = || {
        PrismEngine::new(
            Container::open(&path).expect("open"),
            config.clone(),
            EngineOptions {
                stream_throttle: Some(THROTTLE),
                // Serving pins the embedding table; layers still stream.
                embed_cache: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .expect("engine")
    };
    let spec = LoadSpec {
        requests: if fast { 16 } else { 48 },
        clients: 8,
        candidates: 12,
        k: 4,
        ..Default::default()
    };

    let serial_config = ServeConfig::serial();
    let server = PrismServer::start(engine(), serial_config.clone()).expect("server");
    let serial_report = run_closed_loop(&server, &spec);
    server.shutdown();

    let batched_config = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        session_cache_capacity: 0,
        ..Default::default()
    };
    let server = PrismServer::start(engine(), batched_config.clone()).expect("server");
    let batched_report = run_closed_loop(&server, &spec);
    server.shutdown();

    let cached_config = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        ..Default::default()
    };
    let cached_spec = LoadSpec {
        corpus_repeat: 4,
        ..spec.clone()
    };
    let server = PrismServer::start(engine(), cached_config.clone()).expect("server");
    let cached_report = run_closed_loop(&server, &cached_spec);
    server.shutdown();
    std::fs::remove_file(&path).ok();

    let gain = |r: &LoadReport| {
        if serial_report.throughput_rps > 0.0 {
            r.throughput_rps / serial_report.throughput_rps
        } else {
            0.0
        }
    };
    let section = ServingSection {
        mode: if fast { "fast" } else { "full" }.into(),
        throttle_bytes_per_sec: THROTTLE,
        requests: spec.requests,
        candidates: spec.candidates,
        k: spec.k,
        clients: spec.clients,
        batching_throughput_gain: gain(&batched_report),
        cached_throughput_gain: gain(&cached_report),
        serial: serving_result("serial_1w_nobatch", &serial_config, &serial_report),
        batched: serving_result("batched_1w_8req", &batched_config, &batched_report),
        cached: serving_result("cached_1w_8req_repeat4", &cached_config, &cached_report),
    };
    MeasuredServing {
        section,
        serial: serial_report,
        batched: batched_report,
        cached: cached_report,
    }
}

/// A scheduling measurement pass plus the raw per-scheduler reports
/// (whose stats snapshots `repro sim-validate` calibrates from).
pub(crate) struct MeasuredScheduling {
    pub section: SchedulingSection,
    pub fifo: LoadReport,
    pub priority: LoadReport,
}

fn scheduling_bench(fast: bool) -> SchedulingSection {
    scheduling_bench_measured(fast).section
}

/// Measures the mixed-priority scheduling comparison (also the measured
/// side of `repro sim-validate`).
pub(crate) fn scheduling_bench_measured(fast: bool) -> MeasuredScheduling {
    const THROTTLE: u64 = 16_000_000; // Emulated 16 MB/s streaming SSD.
    const HIGH_DEADLINE_US: u64 = 30_000_000; // Generous: no shedding.
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-sched-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let engine = || {
        PrismEngine::new(
            Container::open(&path).expect("open"),
            config.clone(),
            EngineOptions {
                stream_throttle: Some(THROTTLE),
                embed_cache: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .expect("engine")
    };
    // A small batch cap under many closed-loop clients keeps the queue
    // deep, so admission *order* (not coalescing) dominates waiting
    // time — the regime the priority scheduler targets: FIFO makes a
    // High request wait out half the queue, priority-then-EDF only the
    // in-flight batch.
    let max_batch_requests = 2;
    let spec = LoadSpec {
        requests: if fast { 42 } else { 84 },
        clients: 14,
        candidates: 12,
        k: 4,
        high_fraction: 0.1,
        high_deadline_us: Some(HIGH_DEADLINE_US),
        ..Default::default()
    };

    let mut results = Vec::new();
    let mut reports = Vec::new();
    for (label, priority_scheduling) in [("fifo", false), ("priority_edf", true)] {
        let server = PrismServer::start(
            engine(),
            ServeConfig {
                workers: 1,
                max_batch_requests,
                session_cache_capacity: 0,
                priority_scheduling,
                // On the emulated SSD a full queue takes ~100 ms to
                // drain; the starvation guard must sit above that or
                // every aged bulk request outranks High and the policy
                // degrades back to FIFO.
                starvation_age: std::time::Duration::from_secs(2),
                ..Default::default()
            },
        )
        .expect("server");
        let report = run_closed_loop(&server, &spec);
        server.shutdown();
        results.push(SchedulingConfigResult {
            label: label.into(),
            throughput_rps: report.throughput_rps,
            p99_us: report.p99_us,
            high: report.class("high").cloned(),
            bulk: report.class("bulk").cloned(),
        });
        reports.push(report);
    }
    std::fs::remove_file(&path).ok();
    let priority = results.pop().expect("priority result");
    let fifo = results.pop().expect("fifo result");
    let priority_report = reports.pop().expect("priority report");
    let fifo_report = reports.pop().expect("fifo report");

    let p99 = |r: &SchedulingConfigResult| r.high.as_ref().map_or(0, |c| c.p99_us);
    let high_p99_improvement = if p99(&priority) > 0 {
        p99(&fifo) as f64 / p99(&priority) as f64
    } else {
        0.0
    };
    let throughput_ratio = if fifo.throughput_rps > 0.0 {
        priority.throughput_rps / fifo.throughput_rps
    } else {
        0.0
    };
    let section = SchedulingSection {
        mode: if fast { "fast" } else { "full" }.into(),
        throttle_bytes_per_sec: THROTTLE,
        requests: spec.requests,
        clients: spec.clients,
        high_fraction: spec.high_fraction,
        high_deadline_us: HIGH_DEADLINE_US,
        max_batch_requests,
        fifo,
        priority,
        high_p99_improvement,
        throughput_ratio,
    };
    MeasuredScheduling {
        section,
        fifo: fifo_report,
        priority: priority_report,
    }
}

/// Measures the scatter-gather comparison for the `sharded` section:
/// the same closed-loop workload through the single resident engine and
/// through colocated 2- and 3-shard servers, with a bit-exact parity
/// probe before each throughput run.
fn sharded_bench(fast: bool) -> ShardedSection {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-shard-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let engine = || {
        PrismEngine::new(
            Container::open(&path).expect("open"),
            config.clone(),
            resident_pruned_options(),
            MemoryMeter::new(),
        )
        .expect("engine")
    };
    let spec = LoadSpec {
        requests: if fast { 16 } else { 48 },
        clients: 4,
        candidates: 12,
        k: 4,
        ..Default::default()
    };
    let serve_config = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        session_cache_capacity: 0,
        ..Default::default()
    };
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    // Exact bit pattern of a fixed tagged request set: ids, score bits
    // and decision layers (plus the last-layer score bits), the same
    // witness the conformance suite compares.
    let parity_bits = |server: &PrismServer| -> Vec<(usize, u32, usize)> {
        let mut out = Vec::new();
        for i in 0..6_u64 {
            let request = generator.request(i, spec.candidates);
            let batch = SequenceBatch::new(&request.sequences()).expect("parity batch");
            let outcome = server
                .submit(ServeRequest {
                    session: format!("parity-{i}"),
                    batch,
                    options: RequestOptions::tagged(spec.k, i + 1),
                })
                .expect("parity submit")
                .wait()
                .expect("parity wait");
            for r in &outcome.selection.ranked {
                out.push((r.id, r.score.to_bits(), r.decided_at_layer));
            }
            for &s in &outcome.selection.last_scores {
                out.push((usize::MAX, s.to_bits(), 0));
            }
        }
        out
    };

    let server = PrismServer::start(engine(), serve_config.clone()).expect("server");
    let reference = parity_bits(&server);
    let single_report = run_closed_loop(&server, &spec);
    server.shutdown();

    let mut parity = true;
    let mut sharded = Vec::new();
    for shards in [2_usize, 3] {
        let engines = (0..shards).map(|_| engine()).collect();
        let server =
            PrismServer::start_sharded(engines, serve_config.clone()).expect("sharded server");
        parity &= parity_bits(&server) == reference;
        let report = run_closed_loop(&server, &spec);
        server.shutdown();
        let overhead_ratio = if report.throughput_rps > 0.0 {
            single_report.throughput_rps / report.throughput_rps
        } else {
            // A stalled run must fail the guard, but stay serializable.
            1e9
        };
        sharded.push(ShardedConfigResult {
            label: format!("colocated_{shards}shard"),
            shards,
            throughput_rps: report.throughput_rps,
            p50_us: report.p50_us,
            p95_us: report.p95_us,
            p99_us: report.p99_us,
            overhead_ratio,
        });
    }
    std::fs::remove_file(&path).ok();

    let worst_overhead_ratio = sharded.iter().map(|r| r.overhead_ratio).fold(0.0, f64::max);
    ShardedSection {
        mode: if fast { "fast" } else { "full" }.into(),
        requests: spec.requests,
        candidates: spec.candidates,
        k: spec.k,
        clients: spec.clients,
        parity,
        worst_overhead_ratio,
        single: ShardedConfigResult {
            label: "single_engine".into(),
            shards: 1,
            throughput_rps: single_report.throughput_rps,
            p50_us: single_report.p50_us,
            p95_us: single_report.p95_us,
            p99_us: single_report.p99_us,
            overhead_ratio: 1.0,
        },
        sharded,
    }
}

fn semcache_bench(fast: bool) -> SemCacheSection {
    const THROTTLE: u64 = 16_000_000; // Emulated 16 MB/s streaming SSD.
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-semcache-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    // Replay soundness requires full depth (the cache stores full-depth
    // score vectors), so pruning is off at the engine for *both* arms —
    // the comparison isolates the cache, not the pruning gate.
    let engine = || {
        PrismEngine::new(
            Container::open(&path).expect("open"),
            config.clone(),
            EngineOptions {
                stream_throttle: Some(THROTTLE),
                embed_cache: false,
                pruning: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .expect("engine")
    };
    // The session cache is disabled so every repeat the cache-off arm
    // pays full price for is served by the semantic tier alone.
    let serve_config = ServeConfig {
        workers: 1,
        max_batch_requests: 8,
        session_cache_capacity: 0,
        ..Default::default()
    };
    let spec = LoadSpec {
        requests: if fast { 32 } else { 64 },
        clients: 8,
        candidates: 12,
        k: 4,
        dup_fraction: 0.75,
        ..Default::default()
    };

    // Parity witness: the verifying mode's replays must be bit-identical
    // to the cache-off reference on the same server (first pass seeds
    // the cache, second pass replays; `Aggressive` then replays the same
    // entries through the similarity tier).
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let parity_bits = |server: &PrismServer, mode: SemCacheMode| -> Vec<(usize, u32, usize)> {
        let mut out = Vec::new();
        for i in 0..6_u64 {
            let request = generator.request(i, spec.candidates);
            let batch = SequenceBatch::new(&request.sequences()).expect("parity batch");
            let mut options = RequestOptions::tagged(spec.k, i + 1).with_semcache(mode);
            options.pruning = Some(false);
            let outcome = server
                .submit(ServeRequest {
                    session: format!("parity-{mode:?}-{i}"),
                    batch,
                    options,
                })
                .expect("parity submit")
                .wait()
                .expect("parity wait");
            for r in &outcome.selection.ranked {
                out.push((r.id, r.score.to_bits(), r.decided_at_layer));
            }
            for &s in &outcome.selection.last_scores {
                out.push((usize::MAX, s.to_bits(), 0));
            }
        }
        out
    };
    let server = PrismServer::start(engine(), serve_config.clone()).expect("server");
    let reference = parity_bits(&server, SemCacheMode::Off);
    let mut verify_parity = parity_bits(&server, SemCacheMode::VerifyAndFallback) == reference;
    verify_parity &= parity_bits(&server, SemCacheMode::VerifyAndFallback) == reference;
    verify_parity &= parity_bits(&server, SemCacheMode::Aggressive) == reference;
    server.shutdown();

    let server = PrismServer::start(engine(), serve_config.clone()).expect("server");
    let off_report = run_closed_loop(&server, &spec);
    server.shutdown();

    let aggressive_spec = LoadSpec {
        semcache: SemCacheMode::Aggressive,
        ..spec.clone()
    };
    let server = PrismServer::start(engine(), serve_config.clone()).expect("server");
    let aggressive_report = run_closed_loop(&server, &aggressive_spec);
    server.shutdown();
    std::fs::remove_file(&path).ok();

    let aggressive_gain = if off_report.throughput_rps > 0.0 {
        aggressive_report.throughput_rps / off_report.throughput_rps
    } else {
        0.0
    };
    SemCacheSection {
        mode: if fast { "fast" } else { "full" }.into(),
        throttle_bytes_per_sec: THROTTLE,
        requests: spec.requests,
        candidates: spec.candidates,
        k: spec.k,
        clients: spec.clients,
        dup_fraction: spec.dup_fraction,
        verify_parity,
        aggressive_gain,
        semcache_hits: aggressive_report.stats.semcache_hits,
        semcache_misses: aggressive_report.stats.semcache_misses,
        off: serving_result("semcache_off", &serve_config, &off_report),
        aggressive: serving_result("semcache_aggressive", &serve_config, &aggressive_report),
    }
}

/// One direct-drive run of the resilience bench: throughput, sorted
/// latencies, failed requests, and the selection bit pattern.
struct ResilienceRun {
    rps: f64,
    lat_us: Vec<u64>,
    errors: usize,
    bits: Vec<(usize, u32, usize)>,
}

/// Measures the `resilience` section (see [`ResilienceSection`]).
fn resilience_bench(fast: bool) -> ResilienceSection {
    const SHARDS: usize = 3;
    const REPLICAS: usize = 2;
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-perf-resilience-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let engines = || -> Vec<Arc<PrismEngine>> {
        (0..SHARDS)
            .map(|_| {
                Arc::new(
                    PrismEngine::new(
                        Container::open(&path).expect("open"),
                        config.clone(),
                        resident_pruned_options(),
                        MemoryMeter::new(),
                    )
                    .expect("engine"),
                )
            })
            .collect()
    };
    let requests = if fast { 24 } else { 64 };
    let candidates = 12;
    let k = 4;
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batches: Vec<SequenceBatch> = (0..requests as u64)
        .map(|i| {
            SequenceBatch::new(&generator.request(i % 8, candidates).sequences()).expect("batch")
        })
        .collect();

    // Drives the whole schedule through `set` with a per-request fault
    // on `victim` (injected before the request, healed after), so every
    // run sees an identical fault envelope. Identical tags across runs
    // make the bit patterns directly comparable.
    let drive = |set: &ShardSet,
                 victim: usize,
                 fault: &dyn Fn(usize) -> Option<ShardFault>|
     -> ResilienceRun {
        let mut lat_us = Vec::with_capacity(batches.len());
        let mut errors = 0;
        let mut bits = Vec::new();
        let start = Instant::now();
        for (i, batch) in batches.iter().enumerate() {
            let injected = fault(i);
            if let Some(f) = injected {
                set.inject_fault(victim, f);
            }
            let t = Instant::now();
            match set.select_with(batch, RequestOptions::tagged(k, i as u64 + 1)) {
                Ok(selection) => {
                    lat_us.push(t.elapsed().as_micros() as u64);
                    for r in &selection.ranked {
                        bits.push((r.id, r.score.to_bits(), r.decided_at_layer));
                    }
                    for &s in &selection.last_scores {
                        bits.push((usize::MAX, s.to_bits(), 0));
                    }
                }
                Err(_) => errors += 1,
            }
            if injected.is_some() {
                set.inject_fault(victim, ShardFault::Healthy);
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        lat_us.sort_unstable();
        ResilienceRun {
            rps: if elapsed > 0.0 {
                batches.len() as f64 / elapsed
            } else {
                0.0
            },
            lat_us,
            errors,
            bits,
        }
    };
    let quantile = |lat: &[u64], q: usize| -> u64 {
        if lat.is_empty() {
            // A run with no completions must fail the tail gates, but
            // the section has to stay serializable.
            return u64::MAX;
        }
        lat[(lat.len() - 1).min(lat.len() * q / 100)]
    };
    let healthy = &|_: usize| None;
    let stall = &|i: usize| (i % 4 == 2).then(|| ShardFault::Slow(Duration::from_millis(5)));

    // Healthy reference with replication off.
    let set_r1 = ShardSet::new(engines()).expect("r1 set");
    let r1 = drive(&set_r1, 0, healthy);
    drop(set_r1);

    // The resilient set: R=2 with a 2 ms hedge, telemetry attached.
    let stats = ServeStats::new();
    let mut set_r2 = ShardSet::new(engines())
        .expect("r2 set")
        .with_replicas(REPLICAS)
        .with_hedge(Some(Duration::from_millis(2)));
    set_r2.attach_stats(stats.clone());
    let healthy_r2 = drive(&set_r2, 0, healthy);

    // One of three shards dead for the whole run: every request re-homes
    // the dead shard's sub-batch onto its replicas at planning time.
    let killed = drive(&set_r2, 1, &|_| Some(ShardFault::Dead));

    // Periodic 5 ms stall, hedged: the stalling shard's sub-batch is
    // re-sent to the next replica as soon as the probe sees the stall.
    let before_hedges = stats.snapshot().hedges_fired;
    let hedged = drive(&set_r2, 2, stall);
    let hedges_fired = stats.snapshot().hedges_fired - before_hedges;
    drop(set_r2);

    // The same stall schedule with hedging disarmed: stalls are waited
    // out at every layer boundary the victim touches.
    let set_unhedged = ShardSet::new(engines())
        .expect("unhedged set")
        .with_replicas(REPLICAS);
    let unhedged = drive(&set_unhedged, 2, stall);
    drop(set_unhedged);
    std::fs::remove_file(&path).ok();

    let parity = healthy_r2.bits == r1.bits
        && killed.bits == r1.bits
        && hedged.bits == r1.bits
        && unhedged.bits == r1.bits;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 1e9 };
    let unhedged_p99_us = quantile(&unhedged.lat_us, 99);
    let hedged_p99_us = quantile(&hedged.lat_us, 99);
    ResilienceSection {
        mode: if fast { "fast" } else { "full" }.into(),
        requests,
        candidates,
        k,
        shards: SHARDS,
        replicas: REPLICAS,
        parity,
        unreplicated_rps: r1.rps,
        healthy_rps: healthy_r2.rps,
        faultfree_overhead_ratio: ratio(
            quantile(&healthy_r2.lat_us, 0) as f64,
            quantile(&r1.lat_us, 0) as f64,
        ),
        killed_rps: killed.rps,
        killed_throughput_ratio: if healthy_r2.rps > 0.0 {
            killed.rps / healthy_r2.rps
        } else {
            0.0
        },
        killed_errors: killed.errors,
        unhedged_p99_us,
        hedged_p99_us,
        hedge_p99_gain: ratio(unhedged_p99_us as f64, hedged_p99_us as f64),
        hedges_fired,
        hedge_extra_compute: hedges_fired as f64 / (SHARDS * requests) as f64,
    }
}

/// Extracts `(name, median_ns)` pairs from one named section of a
/// previously written `BENCH_kernels.json` (the serde shim has no
/// deserializer, so this is a purpose-built scanner for our own output).
pub fn parse_section_entries(text: &str, section: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find(&format!("\"{section}\"")) else {
        return Vec::new();
    };
    // The section's entry list ends where the next top-level section
    // begins ("current" / "speedup" follow "baseline" in our layout).
    let tail = &text[start..];
    let end = ["\"current\"", "\"speedup\""]
        .iter()
        .filter_map(|marker| {
            let pos = tail[1..].find(marker)?;
            Some(pos + 1)
        })
        .min()
        .unwrap_or(tail.len());
    let body = &tail[..end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(npos) = rest.find("\"name\":") {
        let after = &rest[npos + 7..];
        let Some(q0) = after.find('"') else { break };
        let Some(q1) = after[q0 + 1..].find('"') else {
            break;
        };
        let name = after[q0 + 1..q0 + 1 + q1].to_string();
        let Some(mpos) = after.find("\"median_ns\":") else {
            break;
        };
        let num = after[mpos + 12..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect::<String>();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
        rest = &after[mpos + 12..];
    }
    out
}

/// Extracts `(name, speedup)` pairs from the top-level `speedup` array
/// of a previously written `BENCH_kernels.json`.
pub fn parse_speedup_entries(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"speedup\": [") else {
        return Vec::new();
    };
    let tail = &text[start..];
    let end = tail.find(']').unwrap_or(tail.len());
    let body = &tail[..end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(npos) = rest.find("\"name\":") {
        let after = &rest[npos + 7..];
        let Some(q0) = after.find('"') else { break };
        let Some(q1) = after[q0 + 1..].find('"') else {
            break;
        };
        let name = after[q0 + 1..q0 + 1 + q1].to_string();
        let Some(spos) = after.find("\"speedup\":") else {
            break;
        };
        let num = after[spos + 10..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect::<String>();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
        rest = &after[spos + 10..];
    }
    out
}

/// Extracts every per-scale `"speedup"` value inside the `offload`
/// section (`(scale, speedup)` pairs).
pub fn parse_offload_speedups(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"offload\":") else {
        return Vec::new();
    };
    let tail = &text[start..];
    let end = tail[1..]
        .find("\"serving\":")
        .map(|p| p + 1)
        .unwrap_or(tail.len());
    let body = &tail[..end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(spos) = rest.find("\"scale\":") {
        let after = &rest[spos + 8..];
        let Some(q0) = after.find('"') else { break };
        let Some(q1) = after[q0 + 1..].find('"') else {
            break;
        };
        let scale = after[q0 + 1..q0 + 1 + q1].to_string();
        let Some(vpos) = after.find("\"speedup\":") else {
            break;
        };
        let num = after[vpos + 10..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect::<String>();
        if let Ok(v) = num.parse::<f64>() {
            out.push((scale, v));
        }
        rest = &after[vpos + 10..];
    }
    out
}

/// Extracts `(name, speedup)` pairs from the rows of the `int8`
/// section of a previously written `BENCH_kernels.json`.
pub fn parse_int8_rows(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"int8\": {") else {
        return Vec::new();
    };
    let tail = &text[start..];
    // `int8` is the last perf-written section; only the spliced
    // `metasim` section can follow it.
    let end = tail[1..]
        .find("\"metasim\"")
        .map(|p| p + 1)
        .unwrap_or(tail.len());
    let body = &tail[..end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(npos) = rest.find("\"name\":") {
        let after = &rest[npos + 7..];
        let Some(q0) = after.find('"') else { break };
        let Some(q1) = after[q0 + 1..].find('"') else {
            break;
        };
        let name = after[q0 + 1..q0 + 1 + q1].to_string();
        let Some(spos) = after.find("\"speedup\":") else {
            break;
        };
        let num = after[spos + 10..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect::<String>();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
        rest = &after[spos + 10..];
    }
    out
}

/// Reads the `topk_parity` flag of the `int8` section, if one exists.
pub fn parse_int8_parity(text: &str) -> Option<bool> {
    let start = text.find("\"int8\": {")?;
    let pos = start + text[start..].find("\"topk_parity\":")?;
    Some(text[pos + 14..].trim_start().starts_with("true"))
}

/// Reads the `parity` flag of the `sharded` section, if one exists.
pub fn parse_sharded_parity(text: &str) -> Option<bool> {
    let start = text.find("\"sharded\": {")?;
    let pos = start + text[start..].find("\"parity\":")?;
    Some(text[pos + 9..].trim_start().starts_with("true"))
}

/// Reads the worst colocated overhead ratio of the `sharded` section.
pub fn parse_sharded_overhead(text: &str) -> Option<f64> {
    let start = text.find("\"sharded\": {")?;
    let pos = start + text[start..].find("\"worst_overhead_ratio\":")?;
    text[pos + 23..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect::<String>()
        .parse()
        .ok()
}

/// Reads the `verify_parity` flag of the `semcache` section.
pub fn parse_semcache_parity(text: &str) -> Option<bool> {
    let start = text.find("\"semcache\": {")?;
    let pos = start + text[start..].find("\"verify_parity\":")?;
    Some(text[pos + 16..].trim_start().starts_with("true"))
}

/// Reads the aggressive-replay throughput gain of the `semcache`
/// section.
pub fn parse_semcache_gain(text: &str) -> Option<f64> {
    let start = text.find("\"semcache\": {")?;
    let pos = start + text[start..].find("\"aggressive_gain\":")?;
    text[pos + 18..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect::<String>()
        .parse()
        .ok()
}

/// Reads the `parity` flag of the `resilience` section, if one exists.
pub fn parse_resilience_parity(text: &str) -> Option<bool> {
    let start = text.find("\"resilience\": {")?;
    let pos = start + text[start..].find("\"parity\":")?;
    Some(text[pos + 9..].trim_start().starts_with("true"))
}

/// Reads one numeric field of the `resilience` section by key.
pub fn parse_resilience_number(text: &str, key: &str) -> Option<f64> {
    let start = text.find("\"resilience\": {")?;
    let marker = format!("\"{key}\":");
    let pos = start + text[start..].find(&marker)?;
    text[pos + marker.len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect::<String>()
        .parse()
        .ok()
}

/// Floor the offload-regime scales are held to: the documented >= 3x
/// acceptance gate minus the same 10% bench-noise allowance the kernel
/// entries get.
pub const OFFLOAD_GUARD_MIN: f64 = 2.7;

/// Floor the int8 kernel and layer-forward rows are held to: the
/// documented >= 2x acceptance gate minus the 10% noise allowance.
pub const INT8_GUARD_MIN: f64 = 1.8;

/// Ceiling the colocated scatter-gather overhead is held to: shards on
/// a one-host runner serialize, so sharding must cost bounded
/// coordination overhead, not multiples of the single-engine run.
pub const SHARDED_GUARD_MAX: f64 = 5.0;

/// Floor the semantic-cache aggressive-replay gain is held to: the
/// documented >= 1.5x acceptance gate on the duplicate-heavy stream
/// minus the 10% bench-noise allowance.
pub const SEMCACHE_GUARD_MIN: f64 = 1.35;

/// Ceiling on replication's fault-free cost: healthy R=2 fastest-request
/// latency over healthy R=1 (the documented <= 5% acceptance gate — the
/// resilient configuration must be effectively free when nothing fails).
pub const RESILIENCE_OVERHEAD_MAX: f64 = 1.05;

/// Floor on degraded throughput with one of three shards dead: the
/// documented >= 70% of healthy throughput, with zero failed requests.
pub const RESILIENCE_KILLED_MIN: f64 = 0.70;

/// Floor on the hedging tail gain: unhedged p99 over hedged p99 under
/// the periodic-stall schedule (the documented >= 2x acceptance gate).
pub const RESILIENCE_HEDGE_GAIN_MIN: f64 = 2.0;

/// Ceiling on the hedge compute premium: re-sent shard shares per
/// request (the documented <= 10% extra compute acceptance gate).
pub const RESILIENCE_HEDGE_COST_MAX: f64 = 0.10;

/// The CI bench-regression guard: reads `BENCH_kernels.json` and fails
/// when any top-level `speedup` entry sits below `min` (1.0 minus a
/// noise allowance — CI passes `0.9`), any offload-regime scale sits
/// below [`OFFLOAD_GUARD_MIN`], any int8 kernel/layer row sits below
/// [`INT8_GUARD_MIN`], or the int8 top-k parity check failed.
///
/// Returns a human-readable summary on success and the offending
/// entries on failure.
pub fn perf_guard(min: f64) -> Result<String, String> {
    let text = std::fs::read_to_string(KERNELS_FILE)
        .map_err(|e| format!("cannot read {KERNELS_FILE}: {e} (run `repro perf` first)"))?;
    let speedups = parse_speedup_entries(&text);
    let offload = parse_offload_speedups(&text);
    if speedups.is_empty() {
        return Err(format!("{KERNELS_FILE} has no speedup entries"));
    }
    if offload.is_empty() {
        return Err(format!("{KERNELS_FILE} has no offload section"));
    }
    let mut bad = Vec::new();
    for (name, v) in &speedups {
        if *v < min {
            bad.push(format!("{name}: {v:.3}x < {min:.2}x"));
        }
    }
    for (scale, v) in &offload {
        if *v < OFFLOAD_GUARD_MIN {
            bad.push(format!(
                "offload/{scale}: {v:.3}x < {OFFLOAD_GUARD_MIN:.2}x (3x acceptance gate)"
            ));
        }
    }
    let int8 = parse_int8_rows(&text);
    if int8.is_empty() {
        return Err(format!("{KERNELS_FILE} has no int8 section"));
    }
    for (name, v) in &int8 {
        // Only the kernel and layer rows carry the 2x gate; the
        // `engine/` rows are I/O-bound on the emulated SSD.
        if !name.starts_with("engine/") && *v < INT8_GUARD_MIN {
            bad.push(format!(
                "int8/{name}: {v:.3}x < {INT8_GUARD_MIN:.2}x (2x acceptance gate)"
            ));
        }
    }
    if parse_int8_parity(&text) == Some(false) {
        bad.push("int8: top-k ids diverge between f32 and int8 compute".into());
    }
    // The scatter-gather gates: sharded selections must stay
    // bit-identical to the single engine, and colocated coordination
    // overhead must stay bounded.
    match parse_sharded_parity(&text) {
        None => return Err(format!("{KERNELS_FILE} has no sharded section")),
        Some(false) => {
            bad.push("sharded: scatter-gather selections diverge from the single engine".into());
        }
        Some(true) => {}
    }
    if let Some(w) = parse_sharded_overhead(&text) {
        if w > SHARDED_GUARD_MAX {
            bad.push(format!(
                "sharded: colocated overhead {w:.3}x > {SHARDED_GUARD_MAX:.2}x ceiling"
            ));
        }
    }
    // The semantic-cache gates: verifying replays must stay
    // bit-identical to the cache-off reference, and the aggressive
    // replay gain on the duplicate-heavy stream must hold.
    match parse_semcache_parity(&text) {
        None => return Err(format!("{KERNELS_FILE} has no semcache section")),
        Some(false) => {
            bad.push("semcache: verified replays diverge from the cache-off reference".into());
        }
        Some(true) => {}
    }
    match parse_semcache_gain(&text) {
        None => return Err(format!("{KERNELS_FILE} has no semcache gain")),
        Some(g) if g < SEMCACHE_GUARD_MIN => {
            bad.push(format!(
                "semcache: aggressive gain {g:.3}x < {SEMCACHE_GUARD_MIN:.2}x \
                 (1.5x acceptance gate)"
            ));
        }
        Some(_) => {}
    }
    // The resilience gates: replication must be effectively free while
    // healthy, absorb a dead shard at bounded throughput cost with zero
    // failed requests and bit parity, and hedging must buy back the
    // stall tail at bounded extra compute.
    match parse_resilience_parity(&text) {
        None => return Err(format!("{KERNELS_FILE} has no resilience section")),
        Some(false) => {
            bad.push("resilience: faulted selections diverge from the healthy reference".into());
        }
        Some(true) => {}
    }
    match parse_resilience_number(&text, "faultfree_overhead_ratio") {
        None => return Err(format!("{KERNELS_FILE} has no resilience overhead ratio")),
        Some(v) if v > RESILIENCE_OVERHEAD_MAX => {
            bad.push(format!(
                "resilience: fault-free overhead {v:.3}x > {RESILIENCE_OVERHEAD_MAX:.2}x \
                 (5% acceptance gate)"
            ));
        }
        Some(_) => {}
    }
    match parse_resilience_number(&text, "killed_throughput_ratio") {
        None => return Err(format!("{KERNELS_FILE} has no resilience killed ratio")),
        Some(v) if v < RESILIENCE_KILLED_MIN => {
            bad.push(format!(
                "resilience: kill-one-of-three throughput {v:.3} < {RESILIENCE_KILLED_MIN:.2} \
                 of healthy (70% acceptance gate)"
            ));
        }
        Some(_) => {}
    }
    if let Some(v) = parse_resilience_number(&text, "killed_errors") {
        if v > 0.0 {
            bad.push(format!(
                "resilience: {v:.0} request(s) failed with one shard dead (must be zero)"
            ));
        }
    }
    match parse_resilience_number(&text, "hedge_p99_gain") {
        None => return Err(format!("{KERNELS_FILE} has no resilience hedge gain")),
        Some(v) if v < RESILIENCE_HEDGE_GAIN_MIN => {
            bad.push(format!(
                "resilience: hedge p99 gain {v:.3}x < {RESILIENCE_HEDGE_GAIN_MIN:.2}x \
                 (2x acceptance gate)"
            ));
        }
        Some(_) => {}
    }
    if let Some(v) = parse_resilience_number(&text, "hedge_extra_compute") {
        if v > RESILIENCE_HEDGE_COST_MAX {
            bad.push(format!(
                "resilience: hedge extra compute {v:.3} > {RESILIENCE_HEDGE_COST_MAX:.2} \
                 (10% acceptance gate)"
            ));
        }
    }
    // The metasim validation gate: when `repro sim-validate` has written
    // its section, an out-of-tolerance prediction fails the guard too.
    let metasim = super::simval::parse_metasim_validated(&text);
    if metasim == Some(false) {
        bad.push(format!(
            "metasim: sim-validate predictions out of the {:.0}% tolerance \
             (see the metasim section of {KERNELS_FILE})",
            super::simval::SIM_TOLERANCE * 100.0
        ));
    }
    if bad.is_empty() {
        Ok(format!(
            "perf guard ok: {} speedup entries >= {min:.2}x, {} offload scales >= \
             {OFFLOAD_GUARD_MIN:.2}x, {} int8 rows gated >= {INT8_GUARD_MIN:.2}x with \
             top-k parity, sharded parity with overhead <= {SHARDED_GUARD_MAX:.2}x, \
             semcache parity with gain >= {SEMCACHE_GUARD_MIN:.2}x, resilience parity with \
             failover >= {RESILIENCE_KILLED_MIN:.2} / hedge >= {RESILIENCE_HEDGE_GAIN_MIN:.2}x \
             at <= {RESILIENCE_HEDGE_COST_MAX:.2} / overhead <= {RESILIENCE_OVERHEAD_MAX:.2}x, \
             metasim {}",
            speedups.len(),
            offload.len(),
            int8.iter()
                .filter(|(n, _)| !n.starts_with("engine/"))
                .count(),
            match metasim {
                Some(true) => "validated",
                Some(false) => unreachable!("handled above"),
                None => "not yet validated (run `repro sim-validate`)",
            }
        ))
    } else {
        Err(format!(
            "perf regressions detected:\n  {}",
            bad.join("\n  ")
        ))
    }
}

/// Runs every perf bench and writes `BENCH_kernels.json` + the report.
pub fn perf(fast: bool) {
    let mut report = Report::new("perf");
    let mode = if fast { "fast" } else { "full" };
    report.line(&format!("kernel & engine perf trajectory ({mode} mode)"));
    let mut entries = Vec::new();
    gemm_benches(fast, &mut entries);
    rowq_benches(fast, &mut entries);
    forward_layer_bench(fast, &mut entries);
    engine_bench(
        ModelConfig::test_config(ModelArch::DecoderOnly, 12),
        "test12",
        fast,
        &mut entries,
    );
    engine_bench(
        ModelConfig::bge_m3().mini_twin(),
        "mini_m3",
        fast,
        &mut entries,
    );

    for e in &entries {
        report.line(&format!("{:<45} {:>12.1} us", e.name, e.median_ns / 1e3));
    }

    let simd = simd_bench(fast);
    report.blank();
    report.line(&format!("simd tiers (detected: {}):", simd.detected_tier));
    for r in &simd.rows {
        report.line(&format!(
            "{:<45} avx2 {:>9.1} us  dispatched {:>9.1} us  {:>5.2}x",
            r.name,
            r.avx2_ns / 1e3,
            r.dispatched_ns / 1e3,
            r.speedup
        ));
    }

    let offload = offload_bench(fast);
    report.blank();
    report.line("offload regime (hidden spill, emulated 16 MB/s SSD):");
    for s in &offload.scales {
        for r in [&s.baseline, &s.current] {
            report.line(&format!(
                "{:<12} {:<16} {:>10.1} ms  spill {:>9} B  overlap {:>5.2}",
                s.scale,
                r.label,
                r.median_ns / 1e6,
                r.spill_bytes,
                r.overlap_efficiency
            ));
        }
        report.line(&format!(
            "{:<12} speedup {:.2}x (acceptance >= 3x)",
            s.scale, s.speedup
        ));
    }

    let serving = serving_bench(fast);
    report.blank();
    report.line("serving (closed loop, emulated 16 MB/s streaming SSD):");
    for r in [&serving.serial, &serving.batched, &serving.cached] {
        report.line(&format!(
            "{:<28} {:>8.1} req/s  p50 {:>7} us  p95 {:>7} us  p99 {:>7} us",
            r.label, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        ));
    }
    report.line(&format!(
        "batching gain {:.2}x, cached gain {:.2}x over serial",
        serving.batching_throughput_gain, serving.cached_throughput_gain
    ));

    let int8 = int8_bench(fast);
    report.blank();
    report.line(&format!(
        "int8 compute (offload regime, top-k parity: {}):",
        if int8.topk_parity { "yes" } else { "NO" }
    ));
    for r in &int8.rows {
        report.line(&format!(
            "{:<38} f32 {:>10.1} us  int8 {:>10.1} us  {:>5.2}x",
            r.name,
            r.f32_ns / 1e3,
            r.int8_ns / 1e3,
            r.speedup
        ));
    }

    let sharded = sharded_bench(fast);
    report.blank();
    report.line(&format!(
        "sharded scatter-gather (colocated resident shards, parity: {}):",
        if sharded.parity { "exact" } else { "DIVERGED" }
    ));
    for r in std::iter::once(&sharded.single).chain(&sharded.sharded) {
        report.line(&format!(
            "{:<22} {} shard(s) {:>8.1} req/s  p50 {:>7} us  p99 {:>7} us  overhead {:>5.2}x",
            r.label, r.shards, r.throughput_rps, r.p50_us, r.p99_us, r.overhead_ratio
        ));
    }

    let semcache = semcache_bench(fast);
    report.blank();
    report.line(&format!(
        "semantic cache ({:.0}% duplicate stream, verify parity: {}):",
        semcache.dup_fraction * 100.0,
        if semcache.verify_parity {
            "exact"
        } else {
            "DIVERGED"
        }
    ));
    for r in [&semcache.off, &semcache.aggressive] {
        report.line(&format!(
            "{:<28} {:>8.1} req/s  p50 {:>7} us  p95 {:>7} us  p99 {:>7} us",
            r.label, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        ));
    }
    report.line(&format!(
        "aggressive replay gain {:.2}x over cache-off ({} hits / {} misses, acceptance >= 1.5x)",
        semcache.aggressive_gain, semcache.semcache_hits, semcache.semcache_misses
    ));

    let resilience = resilience_bench(fast);
    report.blank();
    report.line(&format!(
        "resilience ({} shards, R={}, parity vs healthy R=1: {}):",
        resilience.shards,
        resilience.replicas,
        if resilience.parity {
            "exact"
        } else {
            "DIVERGED"
        }
    ));
    report.line(&format!(
        "{:<22} R=1 {:>8.1} req/s  R={} {:>8.1} req/s  overhead {:>5.3}x (gate <= {:.2}x)",
        "fault-free",
        resilience.unreplicated_rps,
        resilience.replicas,
        resilience.healthy_rps,
        resilience.faultfree_overhead_ratio,
        RESILIENCE_OVERHEAD_MAX
    ));
    report.line(&format!(
        "{:<22} {:>8.1} req/s  {:.0}% of healthy, {} failed (gates >= {:.0}%, zero failed)",
        "kill one of three",
        resilience.killed_rps,
        resilience.killed_throughput_ratio * 100.0,
        resilience.killed_errors,
        RESILIENCE_KILLED_MIN * 100.0
    ));
    report.line(&format!(
        "{:<22} p99 {:>7} us hedged vs {:>7} us unhedged: {:.2}x at {:.1}% extra compute",
        "periodic 5 ms stall",
        resilience.hedged_p99_us,
        resilience.unhedged_p99_us,
        resilience.hedge_p99_gain,
        resilience.hedge_extra_compute * 100.0
    ));

    let scheduling = scheduling_bench(fast);
    report.blank();
    report.line(&format!(
        "scheduling (mixed {:.0}% high-priority, {} requests, batch cap {}):",
        scheduling.high_fraction * 100.0,
        scheduling.requests,
        scheduling.max_batch_requests
    ));
    for r in [&scheduling.fifo, &scheduling.priority] {
        let class = |c: &Option<ClassReport>| c.as_ref().map_or((0, 0), |c| (c.p50_us, c.p99_us));
        let (hp50, hp99) = class(&r.high);
        let (bp50, bp99) = class(&r.bulk);
        report.line(&format!(
            "{:<14} {:>7.1} req/s  high p50 {:>7} p99 {:>7} us  bulk p50 {:>7} p99 {:>7} us",
            r.label, r.throughput_rps, hp50, hp99, bp50, bp99
        ));
    }
    report.line(&format!(
        "high-priority p99 improvement {:.2}x at throughput ratio {:.2}",
        scheduling.high_p99_improvement, scheduling.throughput_ratio
    ));

    // Preserve the frozen baseline if one exists; otherwise this run
    // becomes the baseline (the pre-optimization seed numbers).
    let previous = std::fs::read_to_string(KERNELS_FILE).unwrap_or_default();
    let mut baseline = parse_section_entries(&previous, "baseline");
    if baseline.is_empty() {
        baseline = entries
            .iter()
            .map(|e| (e.name.clone(), e.median_ns))
            .collect();
        report.line("no existing baseline: freezing this run as baseline");
    } else {
        // Benches added after the freeze join the baseline at their
        // first measured value, so later regressions are tracked too.
        for e in &entries {
            if !baseline.iter().any(|(n, _)| *n == e.name) {
                report.line(&format!(
                    "new bench {}: freezing current as baseline",
                    e.name
                ));
                baseline.push((e.name.clone(), e.median_ns));
            }
        }
    }
    let speedup: Vec<SpeedupEntry> = entries
        .iter()
        .filter_map(|e| {
            let (_, base_ns) = baseline.iter().find(|(n, _)| *n == e.name)?;
            Some(SpeedupEntry {
                name: e.name.clone(),
                baseline_ns: *base_ns,
                current_ns: e.median_ns,
                speedup: base_ns / e.median_ns,
            })
        })
        .collect();
    report.blank();
    for s in &speedup {
        report.line(&format!("{:<45} {:>8.2}x vs baseline", s.name, s.speedup));
    }
    let file = KernelsFile {
        schema: "prism-kernel-perf-v5".into(),
        simd,
        offload,
        serving,
        scheduling,
        sharded,
        int8,
        semcache,
        resilience,
        baseline: PerfSnapshot {
            mode: "frozen".into(),
            entries: baseline
                .into_iter()
                .map(|(name, median_ns)| PerfEntry { name, median_ns })
                .collect(),
        },
        current: PerfSnapshot {
            mode: mode.into(),
            entries,
        },
        speedup,
    };
    let mut json = serde_json::to_string_pretty(&file).expect("serialize kernels file");
    // Preserve the `metasim` section written by `repro sim-validate`
    // across perf rewrites (it is refreshed by its own command).
    if let Some(metasim) = super::simval::extract_metasim(&previous) {
        json = super::simval::splice_metasim(&json, &metasim);
        report.line("preserved metasim section from previous run");
    }
    std::fs::write(KERNELS_FILE, json).expect("write BENCH_kernels.json");
    report.line(&format!("wrote {KERNELS_FILE}"));
    report.finish(&file);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_result(label: &str) -> ServingConfigResult {
        ServingConfigResult {
            label: label.into(),
            workers: 1,
            max_batch_requests: 1,
            throughput_rps: 1.0,
            mean_us: 1.0,
            p50_us: 1,
            p95_us: 1,
            p99_us: 1,
        }
    }

    fn dummy_sched(label: &str) -> SchedulingConfigResult {
        SchedulingConfigResult {
            label: label.into(),
            throughput_rps: 1.0,
            p99_us: 1,
            high: None,
            bulk: None,
        }
    }

    fn dummy_int8(parity: bool) -> Int8Section {
        let row = |name: &str, speedup: f64| Int8Row {
            name: name.into(),
            f32_ns: 1000.0 * speedup,
            int8_ns: 1000.0,
            speedup,
        };
        Int8Section {
            mode: "fast".into(),
            throttle_bytes_per_sec: 16_000_000,
            topk_parity: parity,
            rows: vec![
                row("gemm/transb_1024x256x256", 2.5),
                row("model/forward_layer_h256_640tok", 2.1),
                row("engine/select_offload_test12", 1.1),
            ],
        }
    }

    fn dummy_sharded(parity: bool, worst: f64) -> ShardedSection {
        let cfg = |label: &str, shards: usize, overhead: f64| ShardedConfigResult {
            label: label.into(),
            shards,
            throughput_rps: 10.0 / overhead,
            p50_us: 1,
            p95_us: 1,
            p99_us: 1,
            overhead_ratio: overhead,
        };
        ShardedSection {
            mode: "fast".into(),
            requests: 16,
            candidates: 12,
            k: 4,
            clients: 4,
            parity,
            worst_overhead_ratio: worst,
            single: cfg("single_engine", 1, 1.0),
            sharded: vec![
                cfg("colocated_2shard", 2, worst * 0.8),
                cfg("colocated_3shard", 3, worst),
            ],
        }
    }

    fn dummy_semcache(parity: bool, gain: f64) -> SemCacheSection {
        SemCacheSection {
            mode: "fast".into(),
            throttle_bytes_per_sec: 16_000_000,
            requests: 32,
            candidates: 12,
            k: 4,
            clients: 8,
            dup_fraction: 0.75,
            verify_parity: parity,
            aggressive_gain: gain,
            semcache_hits: 100,
            semcache_misses: 50,
            off: dummy_result("semcache_off"),
            aggressive: dummy_result("semcache_aggressive"),
        }
    }

    fn dummy_resilience(parity: bool, overhead: f64, killed: f64, gain: f64) -> ResilienceSection {
        ResilienceSection {
            mode: "fast".into(),
            requests: 24,
            candidates: 12,
            k: 4,
            shards: 3,
            replicas: 2,
            parity,
            unreplicated_rps: 10.0,
            healthy_rps: 10.0 / overhead,
            faultfree_overhead_ratio: overhead,
            killed_rps: 10.0 * killed / overhead,
            killed_throughput_ratio: killed,
            killed_errors: 0,
            unhedged_p99_us: 120_000,
            hedged_p99_us: (120_000.0 / gain) as u64,
            hedge_p99_gain: gain,
            hedges_fired: 6,
            hedge_extra_compute: 0.083,
        }
    }

    fn dummy_offload(speedup: f64) -> OffloadSection {
        let cfg = |label: &str, ns: f64| OffloadConfigResult {
            label: label.into(),
            median_ns: ns,
            spill_bytes: 100,
            overlap_efficiency: 0.5,
        };
        OffloadSection {
            mode: "fast".into(),
            throttle_bytes_per_sec: 16_000_000,
            candidates: 16,
            chunk_candidates: 2,
            k: 5,
            scales: vec![OffloadScaleResult {
                scale: "test12".into(),
                baseline: cfg("sync_f32", 9.0e6),
                current: cfg("pipelined_int8", 9.0e6 / speedup),
                speedup,
            }],
        }
    }

    #[test]
    fn speedup_and_offload_parsers_round_trip() {
        let file = KernelsFile {
            schema: "s".into(),
            baseline: PerfSnapshot {
                mode: "frozen".into(),
                entries: Vec::new(),
            },
            current: PerfSnapshot {
                mode: "fast".into(),
                entries: Vec::new(),
            },
            speedup: vec![
                SpeedupEntry {
                    name: "gemm/a".into(),
                    baseline_ns: 100.0,
                    current_ns: 25.0,
                    speedup: 4.0,
                },
                SpeedupEntry {
                    name: "rowq/b".into(),
                    baseline_ns: 100.0,
                    current_ns: 125.0,
                    speedup: 0.8,
                },
            ],
            simd: SimdSection {
                detected_tier: "avx512".into(),
                rows: vec![SimdRow {
                    name: "gemm/a".into(),
                    avx2_ns: 10.0,
                    dispatched_ns: 8.0,
                    speedup: 1.25,
                }],
            },
            offload: dummy_offload(4.5),
            serving: ServingSection {
                mode: "fast".into(),
                throttle_bytes_per_sec: 1,
                requests: 1,
                candidates: 1,
                k: 1,
                clients: 1,
                serial: dummy_result("serial"),
                batched: dummy_result("batched"),
                cached: dummy_result("cached"),
                batching_throughput_gain: 1.0,
                cached_throughput_gain: 1.0,
            },
            scheduling: SchedulingSection {
                mode: "fast".into(),
                throttle_bytes_per_sec: 1,
                requests: 1,
                clients: 1,
                high_fraction: 0.1,
                high_deadline_us: 1,
                max_batch_requests: 1,
                fifo: dummy_sched("fifo"),
                priority: dummy_sched("priority_edf"),
                high_p99_improvement: 1.0,
                throughput_ratio: 1.0,
            },
            sharded: dummy_sharded(true, 1.4),
            int8: dummy_int8(true),
            semcache: dummy_semcache(true, 1.8),
            resilience: dummy_resilience(true, 1.02, 0.91, 8.5),
        };
        let text = serde_json::to_string_pretty(&file).unwrap();
        let speedups = parse_speedup_entries(&text);
        assert_eq!(
            speedups,
            vec![("gemm/a".to_string(), 4.0), ("rowq/b".to_string(), 0.8)]
        );
        let offload = parse_offload_speedups(&text);
        assert_eq!(offload, vec![("test12".to_string(), 4.5)]);
        let int8 = parse_int8_rows(&text);
        assert_eq!(
            int8,
            vec![
                ("gemm/transb_1024x256x256".to_string(), 2.5),
                ("model/forward_layer_h256_640tok".to_string(), 2.1),
                ("engine/select_offload_test12".to_string(), 1.1),
            ]
        );
        assert_eq!(parse_int8_parity(&text), Some(true));
        assert_eq!(parse_sharded_parity(&text), Some(true));
        let worst = parse_sharded_overhead(&text).unwrap();
        assert!((worst - 1.4).abs() < 1e-9, "{worst}");
        assert_eq!(parse_semcache_parity(&text), Some(true));
        let gain = parse_semcache_gain(&text).unwrap();
        assert!((gain - 1.8).abs() < 1e-9, "{gain}");
        assert_eq!(parse_resilience_parity(&text), Some(true));
        let overhead = parse_resilience_number(&text, "faultfree_overhead_ratio").unwrap();
        assert!((overhead - 1.02).abs() < 1e-9, "{overhead}");
        let killed = parse_resilience_number(&text, "killed_throughput_ratio").unwrap();
        assert!((killed - 0.91).abs() < 1e-9, "{killed}");
        assert_eq!(parse_resilience_number(&text, "killed_errors"), Some(0.0));
        let hedge = parse_resilience_number(&text, "hedge_p99_gain").unwrap();
        assert!((hedge - 8.5).abs() < 1e-9, "{hedge}");
        let cost = parse_resilience_number(&text, "hedge_extra_compute").unwrap();
        assert!((cost - 0.083).abs() < 1e-9, "{cost}");
        assert!(parse_speedup_entries("").is_empty());
        assert!(parse_offload_speedups("{}").is_empty());
        assert!(parse_int8_rows("{}").is_empty());
        assert_eq!(parse_int8_parity(""), None);
        assert_eq!(parse_sharded_parity("{}"), None);
        assert_eq!(parse_sharded_overhead(""), None);
        assert_eq!(parse_semcache_parity("{}"), None);
        assert_eq!(parse_semcache_gain(""), None);
        assert_eq!(parse_resilience_parity("{}"), None);
        assert_eq!(parse_resilience_number("", "hedge_p99_gain"), None);
    }

    #[test]
    fn resilience_parsers_round_trip_failing_values() {
        let text = serde_json::to_string_pretty(&dummy_resilience(false, 1.31, 0.42, 1.1)).unwrap();
        let wrapped = format!("{{\n  \"resilience\": {text}\n}}");
        assert_eq!(parse_resilience_parity(&wrapped), Some(false));
        let overhead = parse_resilience_number(&wrapped, "faultfree_overhead_ratio").unwrap();
        assert!(overhead > RESILIENCE_OVERHEAD_MAX, "{overhead}");
        let killed = parse_resilience_number(&wrapped, "killed_throughput_ratio").unwrap();
        assert!(killed < RESILIENCE_KILLED_MIN, "{killed}");
        let hedge = parse_resilience_number(&wrapped, "hedge_p99_gain").unwrap();
        assert!(hedge < RESILIENCE_HEDGE_GAIN_MIN, "{hedge}");
    }

    #[test]
    fn semcache_parity_flag_round_trips_false() {
        let text = serde_json::to_string_pretty(&dummy_semcache(false, 1.1)).unwrap();
        let wrapped = format!("{{\n  \"semcache\": {text}\n}}");
        assert_eq!(parse_semcache_parity(&wrapped), Some(false));
        let gain = parse_semcache_gain(&wrapped).unwrap();
        assert!(gain < SEMCACHE_GUARD_MIN, "{gain}");
    }

    #[test]
    fn sharded_parity_flag_round_trips_false() {
        let text = serde_json::to_string_pretty(&dummy_sharded(false, 7.5)).unwrap();
        let wrapped = format!("{{\n  \"sharded\": {text}\n}}");
        assert_eq!(parse_sharded_parity(&wrapped), Some(false));
        let worst = parse_sharded_overhead(&wrapped).unwrap();
        assert!(worst > SHARDED_GUARD_MAX, "{worst}");
    }

    #[test]
    fn int8_parity_flag_round_trips_false() {
        let text = serde_json::to_string_pretty(&dummy_int8(false)).unwrap();
        // The serialized section lacks the surrounding `"int8": {` key,
        // so wrap it the way the kernels file does.
        let wrapped = format!("{{\n  \"int8\": {text}\n}}");
        assert_eq!(parse_int8_parity(&wrapped), Some(false));
        assert_eq!(parse_int8_rows(&wrapped).len(), 3);
    }

    #[test]
    fn section_parser_round_trips_serializer_output() {
        let file = KernelsFile {
            schema: "s".into(),
            baseline: PerfSnapshot {
                mode: "frozen".into(),
                entries: vec![
                    PerfEntry {
                        name: "gemm/a".into(),
                        median_ns: 1500.0,
                    },
                    PerfEntry {
                        name: "engine/b".into(),
                        median_ns: 2.5e6,
                    },
                ],
            },
            current: PerfSnapshot {
                mode: "full".into(),
                entries: vec![PerfEntry {
                    name: "gemm/a".into(),
                    median_ns: 700.0,
                }],
            },
            speedup: Vec::new(),
            simd: SimdSection {
                detected_tier: "avx2".into(),
                rows: Vec::new(),
            },
            offload: dummy_offload(3.0),
            serving: ServingSection {
                mode: "fast".into(),
                throttle_bytes_per_sec: 1,
                requests: 1,
                candidates: 1,
                k: 1,
                clients: 1,
                serial: dummy_result("serial"),
                batched: dummy_result("batched"),
                cached: dummy_result("cached"),
                batching_throughput_gain: 1.0,
                cached_throughput_gain: 1.0,
            },
            scheduling: SchedulingSection {
                mode: "fast".into(),
                throttle_bytes_per_sec: 1,
                requests: 1,
                clients: 1,
                high_fraction: 0.1,
                high_deadline_us: 1,
                max_batch_requests: 1,
                fifo: dummy_sched("fifo"),
                priority: dummy_sched("priority_edf"),
                high_p99_improvement: 1.0,
                throughput_ratio: 1.0,
            },
            sharded: dummy_sharded(true, 1.4),
            int8: dummy_int8(true),
            semcache: dummy_semcache(true, 1.8),
            resilience: dummy_resilience(true, 1.02, 0.91, 8.5),
        };
        let text = serde_json::to_string_pretty(&file).unwrap();
        let base = parse_section_entries(&text, "baseline");
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].0, "gemm/a");
        assert!((base[0].1 - 1500.0).abs() < 1e-9);
        assert!((base[1].1 - 2.5e6).abs() < 1.0);
        let cur = parse_section_entries(&text, "current");
        assert_eq!(cur, vec![("gemm/a".to_string(), 700.0)]);
        assert!(parse_section_entries("", "baseline").is_empty());
    }

    #[test]
    fn median_timer_returns_positive() {
        let ns = time_median_ns(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0.0);
    }
}
