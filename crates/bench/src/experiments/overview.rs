//! Fig. 1 (motivating pipeline costs), Fig. 2 (sequence-level sparsity)
//! and Table 1 (model catalog).

use serde::Serialize;

use prism_cluster::{coefficient_of_variation, kmeans_auto};
use prism_device::{simulate_hf, BatchShape, DeviceSpec};
use prism_metrics::{cluster_gamma, goodman_kruskal_gamma};
use prism_model::ModelConfig;
use prism_workload::dataset_catalog;

use crate::fixtures::mini_fixture;
use crate::report::{fmt_mib, fmt_secs, Report};

/// Table 1: the evaluated model catalog.
pub fn table1() {
    let mut report = Report::new("table1");
    let mut rows = Vec::new();
    report.line(&format!(
        "{:<26} {:>8} {:>7} {:>8} {:>9}  arch",
        "model", "params", "layers", "hidden", "weights"
    ));
    for cfg in ModelConfig::paper_catalog() {
        report.line(&format!(
            "{:<26} {:>7.2}B {:>7} {:>8} {:>9}  {:?}",
            cfg.name,
            cfg.total_params() as f64 / 1e9,
            cfg.num_layers,
            cfg.hidden_dim,
            fmt_mib(cfg.total_weight_bytes()),
            cfg.arch
        ));
        rows.push(cfg);
    }
    report.finish(&rows);
}

#[derive(Serialize)]
struct Fig1Stage {
    stage: String,
    latency_ms: f64,
    peak_mib: f64,
}

/// Fig. 1: per-stage cost of the semantic file search pipeline on the Mac
/// Mini (keyword + embedding retrieval, top-5/20 rerank with the 0.6 B
/// model, downstream LLM).
pub fn fig1() {
    let mut report = Report::new("fig1");
    let m2 = DeviceSpec::apple_m2();
    let cfg = ModelConfig::qwen3_0_6b();
    // Retrieval stages: index scans over a personal corpus are
    // millisecond-scale (paper: 8 ms / 50 MiB for both channels).
    let retrieval = Fig1Stage {
        stage: "keyword + embedding retrieve (10+10)".into(),
        latency_ms: 8.0,
        peak_mib: 50.0,
    };
    let rerank_sim = simulate_hf(
        &cfg,
        &m2,
        BatchShape {
            candidates: 20,
            seq_len: 512,
        },
    );
    let rerank = Fig1Stage {
        stage: "reranker top-5 of 20 (Qwen3-0.6B, HF)".into(),
        latency_ms: rerank_sim.latency_s * 1e3,
        peak_mib: rerank_sim.peak_bytes as f64 / (1 << 20) as f64,
    };
    let gen_s = prism_device::cost::first_token_time_s(&ModelConfig::qwen3_0_6b(), &m2, 600);
    let downstream = Fig1Stage {
        stage: "downstream LLM first token".into(),
        latency_ms: gen_s * 1e3,
        peak_mib: 0.0,
    };
    let total_ms = retrieval.latency_ms + rerank.latency_ms + downstream.latency_ms;
    let stages = vec![retrieval, rerank, downstream];
    for s in &stages {
        report.line(&format!(
            "{:<42} {:>10}  {:>10}",
            s.stage,
            fmt_secs(s.latency_ms / 1e3),
            fmt_mib((s.peak_mib * (1 << 20) as f64) as u64)
        ));
    }
    let rerank_share = stages[1].latency_ms / total_ms;
    report.line(&format!(
        "reranker share of pipeline latency: {:.1}% (paper: 96.3%)",
        rerank_share * 100.0
    ));
    report.finish(&stages);
}

#[derive(Serialize)]
struct Fig2Out {
    /// Per-candidate score trajectories (Fig. 2a), MiniCPM twin.
    score_evolution: Vec<Vec<f32>>,
    /// Per-model mean γ and cluster-γ by layer fraction (Fig. 2b).
    gamma_curves: Vec<GammaCurve>,
}

#[derive(Serialize)]
struct GammaCurve {
    model: String,
    layer_fraction: Vec<f64>,
    gamma: Vec<f64>,
    cluster_gamma: Vec<f64>,
    cv: Vec<f64>,
}

/// Fig. 2: score evolution across layers and the γ / cluster-γ curves over
/// all 18 datasets for the two BGE architectures.
pub fn fig2(fast: bool) {
    let mut report = Report::new("fig2");
    let datasets = if fast {
        dataset_catalog().into_iter().take(4).collect::<Vec<_>>()
    } else {
        dataset_catalog()
    };

    // (a) Score evolution of 20 candidates on the BGE-MiniCPM twin.
    let minicpm = mini_fixture(ModelConfig::bge_minicpm());
    let (batch, _) = minicpm.request(&datasets[0], 0, 20);
    let evolution = minicpm.model.layer_score_trace(&batch).expect("trace");
    report.line(&format!(
        "(a) score evolution recorded: {} layers x {} candidates",
        evolution.len(),
        evolution[0].len()
    ));

    // (b) γ and cluster-γ per layer, averaged over datasets.
    let mut curves = Vec::new();
    for paper in [ModelConfig::bge_m3(), ModelConfig::bge_minicpm()] {
        let fx = mini_fixture(paper.clone());
        let layers = fx.mini.num_layers;
        let mut gamma_acc = vec![0.0_f64; layers + 1];
        let mut cgamma_acc = vec![0.0_f64; layers + 1];
        let mut cv_acc = vec![0.0_f64; layers + 1];
        for ds in &datasets {
            let (batch, _) = fx.request(ds, 1, 20);
            let trace = fx.model.layer_score_trace(&batch).expect("trace");
            let final_scores = trace.last().expect("final layer").clone();
            for (l, scores) in trace.iter().enumerate() {
                gamma_acc[l] += goodman_kruskal_gamma(scores, &final_scores);
                let clustering = kmeans_auto(scores, 5, 7);
                cgamma_acc[l] += cluster_gamma(scores, &final_scores, &clustering.assignments);
                cv_acc[l] += coefficient_of_variation(scores) as f64;
            }
        }
        let n = datasets.len() as f64;
        let layer_fraction: Vec<f64> = (0..=layers).map(|l| l as f64 / layers as f64).collect();
        let gamma: Vec<f64> = gamma_acc.iter().map(|g| g / n).collect();
        let cgamma: Vec<f64> = cgamma_acc.iter().map(|g| g / n).collect();
        let cv: Vec<f64> = cv_acc.iter().map(|c| c / n).collect();
        let mid = layers / 2;
        report.line(&format!(
            "(b) {:<26} γ@25% {:.3}  γ@50% {:.3}  γ@100% {:.3}  cluster-γ@50% {:.3}",
            paper.name,
            gamma[layers / 4],
            gamma[mid],
            gamma[layers],
            cgamma[mid]
        ));
        curves.push(GammaCurve {
            model: paper.name.clone(),
            layer_fraction,
            gamma,
            cluster_gamma: cgamma,
            cv,
        });
    }
    report.line("(expect: γ rises with depth; cluster-γ ≈ 1.0 from early layers)");
    report.finish(&Fig2Out {
        score_evolution: evolution,
        gamma_curves: curves,
    });
}
