//! Reproduction harness for every table and figure in the paper's
//! evaluation (§6).
//!
//! The measurement strategy (DESIGN.md §2): *behaviour* — pruning depth,
//! routing decisions, precision, cache hit rates — comes from the **real**
//! engine executing mini-scale twins of the paper's models; *latency and
//! memory at paper scale* come from the calibrated device simulator
//! (`prism-device`) replaying the recorded pruning schedules against the
//! true model dimensions. Each experiment prints a human-readable table
//! and writes JSON under `target/repro/`.
//!
//! Run `cargo run --release -p prism-bench --bin repro -- <experiment>`
//! with one of: `fig1 fig2 table1 table3 fig8 fig9 fig10 fig11 fig12 fig13
//! fig14 fig15 fig16 ablation-extra all`.

pub mod experiments;
pub mod fixtures;
pub mod report;

pub use fixtures::{mini_fixture, MiniFixture};
pub use report::Report;
