//! Layer-streaming bench: overlapped prefetch versus synchronous loads,
//! the mechanism behind §4.2's "no latency penalty" claim.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use prism_storage::{Container, ContainerWriter, LayerStreamer, SectionKind, Throttle};

const LAYERS: usize = 12;
const LAYER_BYTES: usize = 128 * 1024;

fn setup() -> (std::path::PathBuf, Container, Vec<String>) {
    let mut path = std::env::temp_dir();
    path.push(format!("prism-bench-stream-{}.prsm", std::process::id()));
    let mut w = ContainerWriter::create(&path);
    for i in 0..LAYERS {
        w.add_raw(
            &format!("layer.{i}"),
            SectionKind::Raw,
            0,
            0,
            vec![i as u8; LAYER_BYTES],
        );
    }
    w.finish().expect("write");
    let c = Container::open(&path).expect("open");
    let names = (0..LAYERS).map(|i| format!("layer.{i}")).collect();
    (path, c, names)
}

/// Busy-compute standing in for one layer's forward pass.
fn fake_compute(ms: u64) -> u64 {
    let start = Instant::now();
    let mut acc = 0_u64;
    while start.elapsed() < Duration::from_millis(ms) {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    acc
}

fn bench_streaming(c: &mut Criterion) {
    let (path, container, names) = setup();
    // Throttle so each layer takes ~4 ms of I/O vs ~6 ms of compute: the
    // overlapped variant should approach pure-compute time.
    let throttle = Throttle::bandwidth((LAYER_BYTES * 250) as u64);
    let mut g = c.benchmark_group("layer_streaming");
    g.sample_size(10);

    g.bench_function("overlapped_prefetch", |bencher| {
        bencher.iter(|| {
            let mut s = LayerStreamer::new(&container, &names, 2, throttle).expect("streamer");
            let mut acc = 0_u64;
            while let Some(sec) = s.next().expect("next") {
                acc = acc.wrapping_add(fake_compute(6));
                s.recycle(sec).expect("recycle");
            }
            acc
        });
    });

    g.bench_function("synchronous_loads", |bencher| {
        bencher.iter(|| {
            let mut acc = 0_u64;
            let mut buf = Vec::new();
            for name in &names {
                let start = Instant::now();
                let meta = container.read_section_into(name, &mut buf).expect("read");
                throttle.pace(start, meta.len);
                acc = acc.wrapping_add(fake_compute(6));
            }
            acc
        });
    });

    g.finish();
    std::fs::remove_file(&path).ok();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_streaming
}
criterion_main!(benches);
