//! Criterion benches for the tensor kernels: matmul variants, softmax,
//! normalization, and the W4A16 quantized matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prism_tensor::{ops, QuantMatrix, Tensor};

fn mat(rows: usize, cols: usize, seed: f32) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) as f32 * seed).sin() * 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32_usize, 64, 128] {
        let a = mat(n, n, 0.013);
        let b = mat(n, n, 0.017);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bencher, _| {
            bencher
                .iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("transb", n), &n, |bencher, _| {
            bencher.iter(|| {
                ops::matmul_transb(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_quant_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_matmul");
    // Weight shapes of the mini transformer layer.
    let w = mat(64, 32, 0.011);
    let q = QuantMatrix::quantize(&w).unwrap();
    let x = mat(640, 32, 0.007); // 20 candidates x 32 tokens
    g.bench_function("dense_transb_640x32x64", |bencher| {
        bencher.iter(|| ops::matmul_transb(std::hint::black_box(&x), &w).unwrap());
    });
    g.bench_function("q4_transb_640x32x64", |bencher| {
        bencher.iter(|| q.matmul_transb(std::hint::black_box(&x)).unwrap());
    });
    g.finish();
}

fn bench_rowwise_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("rowwise");
    let base = mat(640, 64, 0.019);
    let gain = vec![1.0_f32; 64];
    let bias = vec![0.0_f32; 64];
    g.bench_function("softmax_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::softmax_rows_inplace(&mut t).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("rms_norm_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::rms_norm_inplace(&mut t, &gain, 1e-6).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("layer_norm_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::layer_norm_inplace(&mut t, &gain, &bias, 1e-6).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("silu_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::silu_inplace(&mut t),
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_matmul, bench_quant_matmul, bench_rowwise_ops
}
criterion_main!(benches);
