//! Criterion benches for the tensor kernels: matmul variants, softmax,
//! normalization, and the W4A16 quantized matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prism_tensor::{ops, QuantMatrix, Tensor};

fn mat(rows: usize, cols: usize, seed: f32) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) as f32 * seed).sin() * 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    // 256 exceeds every tile boundary (KC=64 k-panels, NB=64 column
    // panels), exercising the full cache-blocked path.
    for &n in &[32_usize, 64, 128, 256] {
        let a = mat(n, n, 0.013);
        let b = mat(n, n, 0.017);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bencher, _| {
            bencher
                .iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("transb", n), &n, |bencher, _| {
            bencher.iter(|| {
                ops::matmul_transb(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap()
            });
        });
    }
    // Allocation-free `_into` variant with a reused output tensor.
    let a = mat(640, 64, 0.013);
    let b = mat(64, 64, 0.017);
    let mut out = prism_tensor::Tensor::zeros(640, 64);
    g.bench_function("transb_into_640x64x64_reused", |bencher| {
        bencher.iter(|| {
            ops::matmul_transb_into(std::hint::black_box(&a), &b, &mut out).unwrap();
        });
    });
    g.finish();
}

fn bench_quant_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_matmul");
    // Weight shapes of the mini transformer layer.
    let w = mat(64, 32, 0.011);
    let q = QuantMatrix::quantize(&w).unwrap();
    let x = mat(640, 32, 0.007); // 20 candidates x 32 tokens
    g.bench_function("dense_transb_640x32x64", |bencher| {
        bencher.iter(|| ops::matmul_transb(std::hint::black_box(&x), &w).unwrap());
    });
    g.bench_function("q4_transb_640x32x64", |bencher| {
        bencher.iter(|| q.matmul_transb(std::hint::black_box(&x)).unwrap());
    });
    // Paper-mini projection: the fused nibble-decode panel path across
    // many k-panels.
    let wl = mat(256, 256, 0.003);
    let ql = QuantMatrix::quantize(&wl).unwrap();
    let xl = mat(512, 256, 0.005);
    g.bench_function("dense_transb_512x256x256", |bencher| {
        bencher.iter(|| ops::matmul_transb(std::hint::black_box(&xl), &wl).unwrap());
    });
    g.bench_function("q4_fused_transb_512x256x256", |bencher| {
        bencher.iter(|| ql.matmul_transb(std::hint::black_box(&xl)).unwrap());
    });
    g.finish();
}

fn bench_strided_attention_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("strided");
    // One attention head's shapes at mini scale: s=32 tokens, hd=8, packed
    // into a [tokens, 32] buffer (row stride 32, column offset 8).
    let d = 32;
    let q = mat(32, d, 0.019);
    let k = mat(32, d, 0.023);
    let mut logits = vec![0.0_f32; 32 * 32];
    g.bench_function("qk_logits_32x8x32", |bencher| {
        bencher.iter(|| {
            ops::gemm_transb_strided(
                std::hint::black_box(&q.data()[8..]),
                d,
                std::hint::black_box(&k.data()[8..]),
                d,
                &mut logits,
                32,
                32,
                8,
                32,
            );
        });
    });
    let mut out = mat(32, d, 0.0);
    g.bench_function("attn_value_32x32x8", |bencher| {
        bencher.iter(|| {
            ops::gemm_strided(
                std::hint::black_box(&logits),
                32,
                std::hint::black_box(&q.data()[8..]),
                d,
                &mut out.data_mut()[8..],
                d,
                32,
                32,
                8,
            );
        });
    });
    g.finish();
}

fn bench_rowwise_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("rowwise");
    let base = mat(640, 64, 0.019);
    let gain = vec![1.0_f32; 64];
    let bias = vec![0.0_f32; 64];
    g.bench_function("softmax_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::softmax_rows_inplace(&mut t).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("rms_norm_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::rms_norm_inplace(&mut t, &gain, 1e-6).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("layer_norm_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::layer_norm_inplace(&mut t, &gain, &bias, 1e-6).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("silu_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::silu_inplace(&mut t),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("gelu_640x64", |bencher| {
        bencher.iter_batched(
            || base.clone(),
            |mut t| ops::gelu_inplace(&mut t),
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_forward_layer(c: &mut Criterion) {
    use prism_model::layer::{forward_layer_with, ForwardScratch};
    use prism_model::{LayerWeights, ModelConfig};

    let mut g = c.benchmark_group("forward_layer");
    // Paper-mini twin: 20 candidates x 32 tokens through one layer.
    let config = ModelConfig::bge_m3().mini_twin();
    let weights = LayerWeights::generate(&config, 0, 11);
    let qweights = weights.quantize().unwrap();
    let tokens = 20 * 32;
    let base = Tensor::from_fn(tokens, config.hidden_dim, |r, c| {
        ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
    });
    let ranges: Vec<(usize, usize)> = (0..20).map(|i| (i * 32, (i + 1) * 32)).collect();
    let mut scratch = ForwardScratch::new(&config, tokens);
    let mut hidden = base.clone();
    g.bench_function("mini_640tok_scratch", |bencher| {
        bencher.iter(|| {
            hidden.data_mut().copy_from_slice(base.data());
            forward_layer_with(&config, &weights, 0, &mut hidden, &ranges, &mut scratch).unwrap();
        });
    });
    g.bench_function("mini_640tok_scratch_q4", |bencher| {
        bencher.iter(|| {
            hidden.data_mut().copy_from_slice(base.data());
            forward_layer_with(&config, &qweights, 0, &mut hidden, &ranges, &mut scratch).unwrap();
        });
    });
    g.finish();
}

fn bench_rowq_codec(c: &mut Criterion) {
    use prism_tensor::rowq;
    let mut g = c.benchmark_group("rowq");
    // One paper-mini spilled chunk (128 rows x 256 cols) and one
    // test-scale chunk (40 rows x 16 cols).
    for &(rows, cols) in &[(40_usize, 16_usize), (128, 256)] {
        let src = mat(rows, cols, 0.019);
        let mut codes = vec![0_u8; rows * cols];
        let mut mins = vec![0.0_f32; rows];
        let mut scales = vec![0.0_f32; rows];
        g.throughput(Throughput::Elements((rows * cols) as u64));
        g.bench_with_input(
            BenchmarkId::new("encode", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| {
                bencher.iter(|| {
                    for r in 0..rows {
                        let (min, scale) = rowq::encode_row(
                            std::hint::black_box(&src.data()[r * cols..(r + 1) * cols]),
                            &mut codes[r * cols..(r + 1) * cols],
                        )
                        .unwrap();
                        mins[r] = min;
                        scales[r] = scale;
                    }
                });
            },
        );
        let mut back = vec![0.0_f32; rows * cols];
        g.bench_with_input(
            BenchmarkId::new("decode", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| {
                bencher.iter(|| {
                    for r in 0..rows {
                        rowq::decode_row(
                            std::hint::black_box(&codes[r * cols..(r + 1) * cols]),
                            mins[r],
                            scales[r],
                            &mut back[r * cols..(r + 1) * cols],
                        )
                        .unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_matmul, bench_quant_matmul, bench_strided_attention_kernels,
        bench_rowwise_ops, bench_forward_layer, bench_rowq_codec
}
criterion_main!(benches);
