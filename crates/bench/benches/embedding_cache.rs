//! Embedding-cache bench: hit/miss throughput on Zipf-skewed lookups at
//! the paper's 10% capacity point versus a generous 50% cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_storage::{Container, ContainerWriter, DiskRowSource, EmbeddingCache, Throttle};
use prism_tensor::Tensor;
use prism_workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(vocab: usize, dim: usize) -> (std::path::PathBuf, Container) {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "prism-bench-embcache-{}-{vocab}.prsm",
        std::process::id()
    ));
    let table = Tensor::from_fn(vocab, dim, |r, c| ((r * dim + c) as f32 * 0.001).sin());
    let mut w = ContainerWriter::create(&path);
    w.add_f32("embedding", &table);
    w.finish().expect("write");
    let c = Container::open(&path).expect("open");
    (path, c)
}

fn bench_cache(c: &mut Criterion) {
    let vocab = 4096;
    let dim = 64;
    let (path, container) = setup(vocab, dim);
    let mut g = c.benchmark_group("embedding_cache");

    for &capacity_pct in &[10_usize, 50] {
        let source =
            DiskRowSource::new(&container, "embedding", Throttle::unlimited()).expect("source");
        let mut cache = EmbeddingCache::new(source, vocab * capacity_pct / 100);
        let zipf = ZipfSampler::new(vocab, 1.05);
        let mut rng = StdRng::seed_from_u64(5);
        let tokens: Vec<u32> = (0..512).map(|_| zipf.sample(&mut rng) as u32).collect();
        // Warm up.
        let mut buf = vec![0.0_f32; dim];
        for &t in &tokens {
            cache.lookup_into(t, &mut buf).unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("zipf_lookup_512", capacity_pct),
            &capacity_pct,
            |bencher, _| {
                bencher.iter(|| {
                    for &t in &tokens {
                        cache
                            .lookup_into(std::hint::black_box(t), &mut buf)
                            .unwrap();
                    }
                });
            },
        );
    }
    g.finish();
    std::fs::remove_file(&path).ok();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cache
}
criterion_main!(benches);
