//! End-to-end engine bench: PRISM (pruned, streamed, cached) versus the
//! vanilla resident baseline on a real test-scale model.

use criterion::{criterion_group, criterion_main, Criterion};
use prism_baselines::{HfVanilla, Reranker};
use prism_core::{EngineOptions, PrismEngine, RequestOptions, SpillPrecision};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::WorkloadGenerator;

struct Fixture {
    model: Model,
    path: std::path::PathBuf,
    batch: SequenceBatch,
}

fn fixture() -> Fixture {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-bench-engine-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batch = SequenceBatch::new(&gen.request(0, 20).sequences()).expect("batch");
    Fixture { model, path, batch }
}

fn bench_systems(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("rerank_top5_of_20");
    g.sample_size(20);

    g.bench_function("hf_vanilla", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let mut hf =
            HfVanilla::new(&container, fx.model.config.clone(), 8, MemoryMeter::new()).expect("hf");
        bencher.iter(|| hf.rerank(std::hint::black_box(&fx.batch), 5).unwrap());
    });

    g.bench_function("prism_default", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let engine = PrismEngine::new(
            container,
            fx.model.config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )
        .expect("engine");
        bencher.iter(|| {
            engine
                .select_top_k(std::hint::black_box(&fx.batch), 5)
                .unwrap()
        });
    });

    g.bench_function("prism_no_pruning", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let options = EngineOptions {
            pruning: false,
            ..Default::default()
        };
        let engine = PrismEngine::new(
            container,
            fx.model.config.clone(),
            options,
            MemoryMeter::new(),
        )
        .expect("engine");
        bencher.iter(|| {
            engine
                .select_top_k(std::hint::black_box(&fx.batch), 5)
                .unwrap()
        });
    });

    // The perf-trajectory acceptance configuration: all weights resident,
    // pruning on, chunked execution across the parallel worker pool.
    g.bench_function("prism_resident_pruned", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let options = EngineOptions {
            streaming: false,
            embed_cache: false,
            ..Default::default()
        };
        let engine = PrismEngine::new(
            container,
            fx.model.config.clone(),
            options,
            MemoryMeter::new(),
        )
        .expect("engine");
        bencher.iter(|| {
            engine
                .select_top_k(std::hint::black_box(&fx.batch), 5)
                .unwrap()
        });
    });

    g.finish();
    std::fs::remove_file(&fx.path).ok();
}

/// Paper-mini scale: the bge-m3 mini twin (24 layers, hidden 32) over 20
/// candidates — the geometry `repro perf` tracks in `BENCH_kernels.json`.
fn bench_paper_mini(c: &mut Criterion) {
    let config = prism_model::ModelConfig::bge_m3().mini_twin();
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!(
        "prism-bench-engine-mini-{}.prsm",
        std::process::id()
    ));
    model.write_container(&path).expect("container");
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batch = SequenceBatch::new(&gen.request(0, 20).sequences()).expect("batch");

    let mut g = c.benchmark_group("rerank_top5_of_20_paper_mini");
    g.sample_size(10);
    for (name, quant) in [
        ("prism_resident_pruned", false),
        ("prism_resident_q4", true),
    ] {
        let run_path = if quant {
            let mut qp = std::env::temp_dir();
            qp.push(format!(
                "prism-bench-engine-mini-q4-{}.prsm",
                std::process::id()
            ));
            model
                .quantized()
                .expect("quantize")
                .write_container(&qp)
                .expect("quant container");
            qp
        } else {
            path.clone()
        };
        g.bench_function(name, |bencher| {
            let container = Container::open(&run_path).expect("open");
            let options = EngineOptions {
                streaming: false,
                embed_cache: false,
                ..Default::default()
            };
            let engine = PrismEngine::new(container, config.clone(), options, MemoryMeter::new())
                .expect("engine");
            bencher.iter(|| {
                engine
                    .select_top_k(std::hint::black_box(&batch), 5)
                    .unwrap()
            });
        });
        if quant {
            std::fs::remove_file(&run_path).ok();
        }
    }
    g.finish();
    std::fs::remove_file(&path).ok();
}

/// The §4.3 offload regime on the emulated 16 MB/s SSD: synchronous
/// raw-f32 spilling (the frozen baseline) versus the overlapped pipeline
/// with the int8 slot format (the default engine).
fn bench_offload_regime(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("offload_regime_top5_of_20");
    g.sample_size(10);
    for (name, pipelined, precision) in [
        ("sync_f32", false, SpillPrecision::F32),
        ("pipelined_int8", true, SpillPrecision::Int8),
    ] {
        g.bench_function(name, |bencher| {
            let engine = PrismEngine::new(
                Container::open(&fx.path).expect("open"),
                fx.model.config.clone(),
                EngineOptions {
                    streaming: false,
                    embed_cache: false,
                    hidden_offload: true,
                    chunk_candidates: Some(2),
                    spill_pipeline: pipelined,
                    stream_throttle: Some(16_000_000),
                    ..Default::default()
                },
                MemoryMeter::new(),
            )
            .expect("engine");
            let options = RequestOptions::tagged(5, 1).with_spill_precision(precision);
            bencher.iter(|| {
                engine
                    .select_with(std::hint::black_box(&fx.batch), options.clone())
                    .unwrap()
            });
        });
    }
    g.finish();
    std::fs::remove_file(&fx.path).ok();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_systems, bench_paper_mini, bench_offload_regime
}
criterion_main!(benches);
