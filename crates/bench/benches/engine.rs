//! End-to-end engine bench: PRISM (pruned, streamed, cached) versus the
//! vanilla resident baseline on a real test-scale model.

use criterion::{criterion_group, criterion_main, Criterion};
use prism_baselines::{HfVanilla, Reranker};
use prism_core::{EngineOptions, PrismEngine};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::WorkloadGenerator;

struct Fixture {
    model: Model,
    path: std::path::PathBuf,
    batch: SequenceBatch,
}

fn fixture() -> Fixture {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-bench-engine-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batch = SequenceBatch::new(&gen.request(0, 20).sequences()).expect("batch");
    Fixture { model, path, batch }
}

fn bench_systems(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("rerank_top5_of_20");
    g.sample_size(20);

    g.bench_function("hf_vanilla", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let mut hf =
            HfVanilla::new(&container, fx.model.config.clone(), 8, MemoryMeter::new()).expect("hf");
        bencher.iter(|| hf.rerank(std::hint::black_box(&fx.batch), 5).unwrap());
    });

    g.bench_function("prism_default", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let mut engine = PrismEngine::new(
            container,
            fx.model.config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )
        .expect("engine");
        bencher.iter(|| {
            engine
                .select_top_k(std::hint::black_box(&fx.batch), 5)
                .unwrap()
        });
    });

    g.bench_function("prism_no_pruning", |bencher| {
        let container = Container::open(&fx.path).expect("open");
        let options = EngineOptions {
            pruning: false,
            ..Default::default()
        };
        let mut engine = PrismEngine::new(
            container,
            fx.model.config.clone(),
            options,
            MemoryMeter::new(),
        )
        .expect("engine");
        bencher.iter(|| {
            engine
                .select_top_k(std::hint::black_box(&fx.batch), 5)
                .unwrap()
        });
    });

    g.finish();
    std::fs::remove_file(&fx.path).ok();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_systems
}
criterion_main!(benches);
