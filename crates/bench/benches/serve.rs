//! Serving-path benches: request-at-a-time vs the coalescing scheduler vs
//! session-cache replay, on a streamed test-scale engine.

use criterion::{criterion_group, criterion_main, Criterion};
use prism_core::{EngineOptions, PrismEngine, RequestOptions, RequestSpec};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{PrismServer, ServeConfig, ServeRequest};
use prism_storage::Container;
use prism_workload::WorkloadGenerator;

struct Fixture {
    config: ModelConfig,
    path: std::path::PathBuf,
    batches: Vec<SequenceBatch>,
}

fn fixture() -> Fixture {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 12);
    let model = Model::generate(config.clone(), 7).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-bench-serve-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    let profile = prism_workload::dataset::dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 3);
    let batches = (0..8)
        .map(|i| SequenceBatch::new(&gen.request(i, 12).sequences()).expect("batch"))
        .collect();
    Fixture {
        config,
        path,
        batches,
    }
}

fn streamed_engine(fx: &Fixture) -> PrismEngine {
    let container = Container::open(&fx.path).expect("open");
    PrismEngine::new(
        container,
        fx.config.clone(),
        EngineOptions {
            embed_cache: false,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .expect("engine")
}

fn bench_batched_selection(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("serve_batching");
    g.sample_size(10);

    // 8 requests answered one at a time: 8 streamed weight passes.
    g.bench_function("select_8_sequential", |bencher| {
        let engine = streamed_engine(&fx);
        bencher.iter(|| {
            for (i, b) in fx.batches.iter().enumerate() {
                engine
                    .select_with(b, RequestOptions::tagged(4, i as u64 + 1))
                    .unwrap();
            }
        });
    });

    // The same 8 requests coalesced: one streamed weight pass.
    g.bench_function("select_8_coalesced", |bencher| {
        let engine = streamed_engine(&fx);
        bencher.iter(|| {
            let specs: Vec<RequestSpec<'_>> = fx
                .batches
                .iter()
                .enumerate()
                .map(|(i, b)| RequestSpec {
                    batch: b,
                    options: RequestOptions::tagged(4, i as u64 + 1),
                })
                .collect();
            engine.select_batch(&specs).unwrap();
        });
    });
    g.finish();
}

fn bench_server_round_trip(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("serve_round_trip");
    g.sample_size(10);

    // Full server loop: submit 8, wait 8 (coalescing on).
    g.bench_function("server_8_requests", |bencher| {
        let server = PrismServer::start(
            streamed_engine(&fx),
            ServeConfig {
                workers: 1,
                max_batch_requests: 8,
                session_cache_capacity: 0,
                ..Default::default()
            },
        )
        .expect("server");
        bencher.iter(|| {
            let handles: Vec<_> = fx
                .batches
                .iter()
                .map(|b| {
                    server
                        .submit(ServeRequest::new("bench", b.clone(), 4))
                        .unwrap()
                })
                .collect();
            for h in handles {
                h.wait().unwrap();
            }
        });
    });

    // Exact repeats against a warm session cache: replay, no execution.
    g.bench_function("server_8_requests_cached", |bencher| {
        let server = PrismServer::start(
            streamed_engine(&fx),
            ServeConfig {
                workers: 1,
                max_batch_requests: 8,
                ..Default::default()
            },
        )
        .expect("server");
        // One session per corpus: the cache keeps a session's latest
        // corpus, so repeats must come from the owning session.
        let submit_all = || {
            let handles: Vec<_> = fx
                .batches
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    server
                        .submit(
                            ServeRequest::new(format!("bench-{i}"), b.clone(), 4)
                                .with_options(RequestOptions::tagged(4, 77)),
                        )
                        .unwrap()
                })
                .collect();
            for h in handles {
                h.wait().unwrap();
            }
        };
        submit_all(); // Warm the cache.
        bencher.iter(submit_all);
    });
    g.finish();
}

criterion_group!(benches, bench_batched_selection, bench_server_round_trip);
criterion_main!(benches);
