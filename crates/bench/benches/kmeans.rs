//! Criterion bench validating the paper's "~1 ms" clustering claim: the
//! per-gate cost of CV + 1-D K-Means on realistic candidate counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_cluster::{coefficient_of_variation, kmeans_1d, kmeans_auto};

fn scores(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let band = i % 3;
            0.15 + band as f32 * 0.3 + ((i * 37) % 11) as f32 * 0.006
        })
        .collect()
}

fn bench_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("pruning_gate");
    for &n in &[20_usize, 60, 200] {
        let s = scores(n);
        g.bench_with_input(BenchmarkId::new("cv", n), &n, |bencher, _| {
            bencher.iter(|| coefficient_of_variation(std::hint::black_box(&s)));
        });
        g.bench_with_input(BenchmarkId::new("kmeans_k3", n), &n, |bencher, _| {
            bencher.iter(|| kmeans_1d(std::hint::black_box(&s), 3, 7));
        });
        g.bench_with_input(BenchmarkId::new("kmeans_auto", n), &n, |bencher, _| {
            bencher.iter(|| kmeans_auto(std::hint::black_box(&s), 5, 7));
        });
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let s = scores(20);
    c.bench_function("route_candidates_20", |bencher| {
        bencher
            .iter(|| prism_core::route_candidates(std::hint::black_box(&s), 10, 0.1, true, 5, 3));
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gate, bench_routing
}
criterion_main!(benches);
