//! Criterion benches for the integer GEMM path: u8×i8 micro-kernels
//! against their f32 twins, at the gate shapes `repro perf` times, plus
//! the int8 layer forward.

use criterion::{criterion_group, criterion_main, Criterion};
use prism_tensor::{igemm, ops, Tensor};

fn mat(rows: usize, cols: usize, seed: f32) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) as f32 * seed).sin() * 0.5
    })
}

fn bench_igemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("igemm");
    // The perf-suite gate shape: 1024 activation rows x 256-wide
    // projection (k = 256, a multiple of 4, so the packed VNNI tiling
    // is live on machines that have it).
    let x = mat(1024, 256, 0.005);
    let w = mat(256, 256, 0.003);
    let qw = igemm::Int8Matrix::quantize(&w).unwrap();
    let mut block = igemm::RowQuantBlock::new();
    block.encode_into(&x).unwrap();
    let mut out = Tensor::zeros(0, 0);

    g.bench_function("f32_transb_1024x256x256", |bencher| {
        bencher.iter(|| ops::matmul_transb(std::hint::black_box(&x), &w).unwrap());
    });
    // Steady-state kernel cost: activations already rowq-encoded, the
    // shape a spilled hidden state arrives in.
    g.bench_function("int8_rowq_1024x256x256", |bencher| {
        bencher.iter(|| {
            qw.matmul_rowq_into(std::hint::black_box(&block), &mut out)
                .unwrap();
        });
    });
    // End-to-end cost including the encode, what the engine pays when
    // the activation starts as f32.
    let mut scratch = igemm::RowQuantBlock::new();
    g.bench_function("int8_encode_plus_gemm_1024x256x256", |bencher| {
        bencher.iter(|| {
            scratch.encode_into(std::hint::black_box(&x)).unwrap();
            qw.matmul_rowq_into(&scratch, &mut out).unwrap();
        });
    });
    // Odd k keeps the packed tiling empty: the madd fallback path.
    let x_odd = mat(1024, 255, 0.005);
    let w_odd = mat(256, 255, 0.003);
    let qw_odd = igemm::Int8Matrix::quantize(&w_odd).unwrap();
    let mut block_odd = igemm::RowQuantBlock::new();
    block_odd.encode_into(&x_odd).unwrap();
    g.bench_function("int8_rowq_unpacked_1024x255x256", |bencher| {
        bencher.iter(|| {
            qw_odd
                .matmul_rowq_into(std::hint::black_box(&block_odd), &mut out)
                .unwrap();
        });
    });
    g.finish();
}

fn bench_forward_layer_int8(c: &mut Criterion) {
    use prism_model::layer::{forward_layer_int8, forward_layer_with, ForwardScratch};
    use prism_model::{Int8LayerWeights, LayerWeights, ModelConfig};

    let mut g = c.benchmark_group("forward_layer_int8");
    // Same hidden-256 single layer the perf suite gates: wide enough
    // for the integer kernels' vector bodies (mini's hidden 32 is not).
    let config = ModelConfig {
        hidden_dim: 256,
        num_heads: 8,
        ffn_dim: 512,
        ..ModelConfig::bge_m3().mini_twin()
    };
    let weights = LayerWeights::generate(&config, 0, 11);
    let iweights = Int8LayerWeights::from_layer(&weights).unwrap();
    let tokens = 20 * 32;
    let base = Tensor::from_fn(tokens, config.hidden_dim, |r, c| {
        ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
    });
    let ranges: Vec<(usize, usize)> = (0..20).map(|i| (i * 32, (i + 1) * 32)).collect();
    let mut scratch = ForwardScratch::new(&config, tokens);
    let mut hidden = base.clone();
    g.bench_function("f32_h256_640tok", |bencher| {
        bencher.iter(|| {
            hidden.data_mut().copy_from_slice(base.data());
            forward_layer_with(&config, &weights, 0, &mut hidden, &ranges, &mut scratch).unwrap();
        });
    });
    g.bench_function("int8_h256_640tok", |bencher| {
        bencher.iter(|| {
            hidden.data_mut().copy_from_slice(base.data());
            forward_layer_int8(&config, &iweights, 0, &mut hidden, &ranges, &mut scratch).unwrap();
        });
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_igemm, bench_forward_layer_int8
}
criterion_main!(benches);
