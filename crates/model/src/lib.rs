//! From-scratch transformer cross-encoder rerankers.
//!
//! This crate implements the models the paper evaluates (Table 1) as real
//! `f32` transformers with a *layer-at-a-time* forward API — the property
//! monolithic forwarding depends on. Two scales exist for every
//! architecture:
//!
//! * **paper-scale** configs carry the true dimensions of
//!   Qwen3-Reranker-0.6B/4B/8B, BGE-Reranker-v2-MiniCPM and
//!   BGE-Reranker-v2-M3; they are used for byte/FLOP accounting by
//!   `prism-device` and are never materialized as weights,
//! * **mini-scale** configs keep the layer count (the axis pruning and
//!   streaming care about) while shrinking widths so real forward passes
//!   run on a laptop CPU.
//!
//! Weights are generated deterministically with a *planted semantic
//! structure* (see [`semantics`] and DESIGN.md §6): candidate relevance is
//! recoverable from hidden states by the classifier head, score
//! trajectories converge across depth, and nearby candidates resolve later
//! than distant ones — the sequence-level sparsity the paper exploits,
//! produced by ordinary tensor computation.

pub mod classifier;
pub mod config;
pub mod layer;
pub mod model;
pub mod semantics;
pub mod weights;

pub use classifier::Pooling;
pub use config::{ModelArch, ModelConfig, Scale};
pub use model::{Model, SequenceBatch};
pub use weights::{HeadWeights, Int8LayerWeights, LayerWeights, MatRef, ModelWeights};

/// Convenient result alias (model errors are storage or tensor errors).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by model construction and forward passes.
#[derive(Debug)]
pub enum Error {
    /// Tensor kernel error (shape mismatch etc.).
    Tensor(prism_tensor::TensorError),
    /// Storage error while loading/saving weights.
    Storage(prism_storage::StorageError),
    /// Configuration is internally inconsistent.
    Config(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor: {e}"),
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Config(s) => write!(f, "config: {s}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<prism_tensor::TensorError> for Error {
    fn from(e: prism_tensor::TensorError) -> Self {
        Error::Tensor(e)
    }
}

impl From<prism_storage::StorageError> for Error {
    fn from(e: prism_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}
