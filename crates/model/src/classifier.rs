//! Pooling and the lightweight classifier head.
//!
//! The paper computes intermediate candidate scores by applying "the
//! model's original classifier" to any layer's hidden states (§4.1) — so
//! scoring is a pure function of `(head weights, hidden, ranges)` that the
//! engine can invoke at every layer boundary.

use prism_tensor::{ops, Tensor};

use crate::layer::apply_norm;
use crate::{HeadWeights, ModelArch, ModelConfig, Result};

/// How per-token hidden states collapse into one vector per sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// Mean over tokens (encoder-only models).
    Mean,
    /// Last token (decoder-only models — the position that has attended to
    /// the full pair under the causal mask).
    LastToken,
}

impl Pooling {
    /// The pooling an architecture uses.
    pub fn for_arch(arch: ModelArch) -> Pooling {
        match arch {
            ModelArch::EncoderOnly => Pooling::Mean,
            ModelArch::DecoderOnly => Pooling::LastToken,
        }
    }
}

/// Pools packed hidden states into `[num_sequences, D]`.
///
/// Fills the output rows directly from the packed buffer — no per-sequence
/// slice copies. This runs at every layer boundary (once per chunk), so it
/// sits on the engine's scoring hot path.
pub fn pool(hidden: &Tensor, ranges: &[(usize, usize)], pooling: Pooling) -> Result<Tensor> {
    let cols = hidden.cols();
    let mut out = Tensor::zeros(ranges.len(), cols);
    for (i, &(start, end)) in ranges.iter().enumerate() {
        if start >= end || end > hidden.rows() {
            return Err(prism_tensor::TensorError::IndexOutOfBounds {
                index: end,
                bound: hidden.rows(),
            }
            .into());
        }
        let dst = out.row_mut(i)?;
        match pooling {
            Pooling::Mean => {
                for r in start..end {
                    for (o, &x) in dst.iter_mut().zip(hidden.row(r)?) {
                        *o += x;
                    }
                }
                let inv = 1.0 / (end - start) as f32;
                for o in dst.iter_mut() {
                    *o *= inv;
                }
            }
            Pooling::LastToken => dst.copy_from_slice(hidden.row(end - 1)?),
        }
    }
    Ok(out)
}

/// Scores every sequence: final norm → pooled projection → sigmoid.
///
/// Returns one relevance score in `(0, 1)` per range, usable at any layer
/// boundary (this is the intermediate-score probe of Fig. 2a).
pub fn score_sequences(
    config: &ModelConfig,
    head: &HeadWeights,
    hidden: &Tensor,
    ranges: &[(usize, usize)],
) -> Result<Vec<f32>> {
    let pooling = Pooling::for_arch(config.arch);
    let mut pooled = pool(hidden, ranges, pooling)?;
    apply_norm(config, &mut pooled, &head.norm_gain, &head.norm_bias)?;
    let mut scores = Vec::with_capacity(ranges.len());
    for r in 0..pooled.rows() {
        let logit = ops::dot(pooled.row(r)?, &head.w)? + head.bias;
        scores.push(sigmoid(logit));
    }
    Ok(scores)
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn pooling_selection_matches_arch() {
        assert_eq!(Pooling::for_arch(ModelArch::EncoderOnly), Pooling::Mean);
        assert_eq!(
            Pooling::for_arch(ModelArch::DecoderOnly),
            Pooling::LastToken
        );
    }

    #[test]
    fn mean_pool_averages() {
        let h = Tensor::from_vec(4, 2, vec![1., 2., 3., 4., 10., 20., 30., 40.]).unwrap();
        let p = pool(&h, &[(0, 2), (2, 4)], Pooling::Mean).unwrap();
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.row(0).unwrap(), &[2.0, 3.0]);
        assert_eq!(p.row(1).unwrap(), &[20.0, 30.0]);
    }

    #[test]
    fn last_token_pool_takes_final_row() {
        let h = Tensor::from_vec(3, 2, vec![1., 1., 2., 2., 9., 9.]).unwrap();
        let p = pool(&h, &[(0, 3)], Pooling::LastToken).unwrap();
        assert_eq!(p.row(0).unwrap(), &[9.0, 9.0]);
    }

    #[test]
    fn scores_are_probabilities_and_monotone_in_signal() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 2);
        let head = HeadWeights::generate(&config, 3);
        let d = config.hidden_dim;
        // Two single-token "sequences": one with strong positive signal,
        // one with strong negative signal in the signal dimension.
        let mut h = Tensor::zeros(2, d);
        *h.at_mut(0, crate::semantics::SIGNAL_DIM) = 3.0;
        *h.at_mut(1, crate::semantics::SIGNAL_DIM) = -3.0;
        let scores = score_sequences(&config, &head, &h, &[(0, 1), (1, 2)]).unwrap();
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(scores[0] > 0.5);
        assert!(scores[1] < 0.5);
        assert!(scores[0] > scores[1] + 0.3);
    }

    #[test]
    fn bad_range_is_reported() {
        let h = Tensor::zeros(3, 4);
        assert!(pool(&h, &[(0, 5)], Pooling::Mean).is_err());
    }
}
