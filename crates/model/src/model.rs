//! The assembled reranker model and its packed-batch API.

use std::path::Path;

use prism_storage::{Container, ContainerWriter, SectionKind};
use prism_tensor::Tensor;

use crate::classifier::score_sequences;
use crate::layer::{forward_layer_with, ForwardScratch};
use crate::semantics::{SIGNAL_DIM, SOURCE_DIM};
use crate::weights::{HeadWeights, LayerWeights, ModelWeights};
use crate::{Error, ModelConfig, Result};

/// Container section name of the embedding table.
pub const SECTION_EMBEDDING: &str = "embedding";
/// Container section name of the classifier head.
pub const SECTION_HEAD: &str = "head";

/// Container section name of transformer layer `i`.
pub fn layer_section(i: usize) -> String {
    format!("layer.{i}")
}

/// A batch of token sequences packed into one flat buffer.
///
/// This is the unit monolithic forwarding operates on: all candidates of a
/// request live in one `SequenceBatch`, and pruning produces sub-batches
/// via [`SequenceBatch::gather`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceBatch {
    tokens: Vec<u32>,
    ranges: Vec<(usize, usize)>,
}

impl SequenceBatch {
    /// Packs independent sequences into a batch (empty sequences rejected).
    pub fn new(sequences: &[Vec<u32>]) -> Result<Self> {
        let mut tokens = Vec::new();
        let mut ranges = Vec::with_capacity(sequences.len());
        for s in sequences {
            if s.is_empty() {
                return Err(Error::Config("empty sequence in batch".into()));
            }
            let start = tokens.len();
            tokens.extend_from_slice(s);
            ranges.push((start, tokens.len()));
        }
        Ok(SequenceBatch { tokens, ranges })
    }

    /// Number of sequences.
    pub fn num_sequences(&self) -> usize {
        self.ranges.len()
    }

    /// Total packed tokens.
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Longest sequence length.
    pub fn max_seq_len(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).max().unwrap_or(0)
    }

    /// The flat token buffer.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Per-sequence `[start, end)` ranges into the flat buffer.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Tokens of sequence `i`.
    pub fn sequence(&self, i: usize) -> &[u32] {
        let (s, e) = self.ranges[i];
        &self.tokens[s..e]
    }

    /// Largest total token count of any window of `micro_batch`
    /// consecutive sequences — the capacity a scratch workspace needs to
    /// serve every micro-batch of this batch without reallocating.
    pub fn max_micro_batch_tokens(&self, micro_batch: usize) -> usize {
        self.ranges
            .chunks(micro_batch.max(1))
            .map(|w| w.iter().map(|(s, e)| e - s).sum::<usize>())
            .max()
            .unwrap_or(0)
    }

    /// Builds a new batch holding only the given sequences (in order).
    pub fn gather(&self, indices: &[usize]) -> Result<SequenceBatch> {
        let seqs: Vec<Vec<u32>> = indices
            .iter()
            .map(|&i| {
                if i >= self.ranges.len() {
                    Err(Error::Config(format!("sequence index {i} out of range")))
                } else {
                    Ok(self.sequence(i).to_vec())
                }
            })
            .collect::<Result<_>>()?;
        SequenceBatch::new(&seqs)
    }
}

/// A reranker: configuration plus resident weights.
#[derive(Debug, Clone)]
pub struct Model {
    /// Model configuration.
    pub config: ModelConfig,
    /// Weights (dense or quantized layers).
    pub weights: ModelWeights,
}

impl Model {
    /// Deterministically generates a model (see [`crate::semantics`]).
    pub fn generate(config: ModelConfig, seed: u64) -> Result<Model> {
        let weights = ModelWeights::generate(&config, seed)?;
        Ok(Model { config, weights })
    }

    /// Returns a W4A16 variant: every layer matrix quantized to 4-bit.
    pub fn quantized(&self) -> Result<Model> {
        Ok(Model {
            config: self.config.clone(),
            weights: self.weights.quantize()?,
        })
    }

    /// Embeds a packed batch: table lookup plus sinusoidal positions.
    ///
    /// Positions skip the signal dimension so the planted relevance channel
    /// is not position-biased (see DESIGN.md §6).
    pub fn embed(&self, batch: &SequenceBatch) -> Result<Tensor> {
        let d = self.config.hidden_dim;
        let mut hidden = Tensor::zeros(batch.total_tokens(), d);
        for &(start, end) in batch.ranges() {
            for (pos, t) in (start..end).enumerate() {
                let token = batch.tokens()[t] as usize;
                if token >= self.config.vocab_size {
                    return Err(Error::Config(format!(
                        "token {token} outside vocabulary {}",
                        self.config.vocab_size
                    )));
                }
                let dst = hidden.row_mut(t)?;
                dst.copy_from_slice(self.weights.embedding.row(token)?);
                add_position(dst, pos, d);
            }
        }
        Ok(hidden)
    }

    /// Applies transformer layer `layer_idx` in place.
    pub fn forward_layer(
        &self,
        layer_idx: usize,
        hidden: &mut Tensor,
        ranges: &[(usize, usize)],
    ) -> Result<()> {
        let mut scratch = ForwardScratch::new(&self.config, hidden.rows());
        self.forward_layer_with(layer_idx, hidden, ranges, &mut scratch)
    }

    /// Applies transformer layer `layer_idx` in place through a reused
    /// scratch workspace (the allocation-free hot path).
    pub fn forward_layer_with(
        &self,
        layer_idx: usize,
        hidden: &mut Tensor,
        ranges: &[(usize, usize)],
        scratch: &mut ForwardScratch,
    ) -> Result<()> {
        let w = self
            .weights
            .layers
            .get(layer_idx)
            .ok_or_else(|| Error::Config(format!("layer {layer_idx} out of range")))?;
        forward_layer_with(&self.config, w, layer_idx, hidden, ranges, scratch)
    }

    /// Scores every sequence from the current hidden states.
    pub fn score(&self, hidden: &Tensor, ranges: &[(usize, usize)]) -> Result<Vec<f32>> {
        score_sequences(&self.config, &self.weights.head, hidden, ranges)
    }

    /// Reference full forward pass: embed → all layers → score.
    ///
    /// This is the ground-truth path baselines use and PRISM's pruned
    /// results are compared against.
    pub fn forward_full(&self, batch: &SequenceBatch) -> Result<Vec<f32>> {
        let mut hidden = self.embed(batch)?;
        let mut scratch = ForwardScratch::new(&self.config, hidden.rows());
        for l in 0..self.config.num_layers {
            self.forward_layer_with(l, &mut hidden, batch.ranges(), &mut scratch)?;
        }
        self.score(&hidden, batch.ranges())
    }

    /// Scores after *every* layer (the Fig. 2a probe): returns
    /// `num_layers + 1` score vectors, index 0 = post-embedding.
    pub fn layer_score_trace(&self, batch: &SequenceBatch) -> Result<Vec<Vec<f32>>> {
        let mut hidden = self.embed(batch)?;
        let mut scratch = ForwardScratch::new(&self.config, hidden.rows());
        let mut trace = Vec::with_capacity(self.config.num_layers + 1);
        trace.push(self.score(&hidden, batch.ranges())?);
        for l in 0..self.config.num_layers {
            self.forward_layer_with(l, &mut hidden, batch.ranges(), &mut scratch)?;
            trace.push(self.score(&hidden, batch.ranges())?);
        }
        Ok(trace)
    }

    /// Writes the model into a `PRSM` container: `embedding` (f32),
    /// `layer.N` blobs and `head`.
    pub fn write_container(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut w = ContainerWriter::create(path);
        w.add_f32(SECTION_EMBEDDING, &self.weights.embedding);
        for (i, layer) in self.weights.layers.iter().enumerate() {
            let blob = layer.to_bytes();
            w.add_raw(&layer_section(i), SectionKind::Raw, 0, 0, blob);
        }
        w.add_raw(
            SECTION_HEAD,
            SectionKind::Raw,
            0,
            0,
            self.weights.head.to_bytes(),
        );
        w.finish()?;
        Ok(())
    }

    /// Loads a model from a container written by
    /// [`Model::write_container`]; the caller supplies the matching config.
    pub fn load_container(config: ModelConfig, container: &Container) -> Result<Model> {
        config.validate()?;
        let embedding = container.read_f32(SECTION_EMBEDDING)?;
        if embedding.shape() != (config.vocab_size, config.hidden_dim) {
            return Err(Error::Config(format!(
                "embedding shape {:?} does not match config",
                embedding.shape()
            )));
        }
        let mut layers = Vec::with_capacity(config.num_layers);
        let mut blob = Vec::new();
        for i in 0..config.num_layers {
            container.read_section_into(&layer_section(i), &mut blob)?;
            layers.push(LayerWeights::from_bytes(&config, &blob)?);
        }
        container.read_section_into(SECTION_HEAD, &mut blob)?;
        let head = HeadWeights::from_bytes(&config, &blob)?;
        Ok(Model {
            config,
            weights: ModelWeights {
                embedding,
                layers,
                head,
            },
        })
    }

    /// Section names in streaming order: `layer.0 .. layer.{L-1}`.
    pub fn layer_sections(&self) -> Vec<String> {
        (0..self.config.num_layers).map(layer_section).collect()
    }
}

/// Adds the sinusoidal position encoding for position `pos` to an embedded
/// token row (10% amplitude, skipping the planted signal channel).
///
/// Exposed so runtimes that source embedding rows from a cache (PRISM's
/// §4.4 path) produce bit-identical hidden states to [`Model::embed`].
pub fn add_position(row: &mut [f32], pos: usize, d: usize) {
    // inv_freq(i) = 10000^(-2*(i/2)/d), advanced multiplicatively every
    // dimension pair — one `powf` per row instead of one per element.
    let step = 10_000_f32.powf(-2.0 / d as f32);
    let mut inv_freq = 1.0_f32;
    for (i, x) in row.iter_mut().enumerate() {
        if i % 2 == 0 && i > 0 {
            inv_freq *= step;
        }
        if i == SIGNAL_DIM || i == SOURCE_DIM {
            continue;
        }
        let rate = (pos as f32) * inv_freq;
        *x += 0.1 * if i % 2 == 0 { rate.sin() } else { rate.cos() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{anti_topic_token_range, background_token_range, topic_token_range};
    use crate::ModelArch;

    fn test_model(arch: ModelArch, layers: usize) -> Model {
        Model::generate(ModelConfig::test_config(arch, layers), 7).unwrap()
    }

    /// Builds a candidate whose fraction of on-topic tokens is `relevance`.
    fn candidate(relevance: f32, len: usize, vocab: usize, salt: u64) -> Vec<u32> {
        let (t0, t1) = topic_token_range(vocab);
        let (a0, a1) = anti_topic_token_range(vocab);
        let (b0, b1) = background_token_range(vocab);
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..len)
            .map(|_| {
                let r = next();
                let u = (r >> 11) as f64 / (1_u64 << 53) as f64;
                if (u as f32) < relevance {
                    t0 + (next() % u64::from(t1 - t0)) as u32
                } else if u < 0.75 {
                    b0 + (next() % u64::from(b1 - b0)) as u32
                } else {
                    a0 + (next() % u64::from(a1 - a0)) as u32
                }
            })
            .collect()
    }

    #[test]
    fn batch_packing_and_gather() {
        let b = SequenceBatch::new(&[vec![1, 2, 3], vec![4, 5]]).unwrap();
        assert_eq!(b.num_sequences(), 2);
        assert_eq!(b.total_tokens(), 5);
        assert_eq!(b.max_seq_len(), 3);
        assert_eq!(b.sequence(1), &[4, 5]);
        assert_eq!(b.ranges(), &[(0, 3), (3, 5)]);
        let g = b.gather(&[1]).unwrap();
        assert_eq!(g.num_sequences(), 1);
        assert_eq!(g.sequence(0), &[4, 5]);
        assert!(b.gather(&[2]).is_err());
        assert!(SequenceBatch::new(&[vec![]]).is_err());
    }

    #[test]
    fn forward_full_is_deterministic() {
        let m = test_model(ModelArch::DecoderOnly, 4);
        let b =
            SequenceBatch::new(&[candidate(0.8, 12, 256, 1), candidate(0.2, 12, 256, 2)]).unwrap();
        let s1 = m.forward_full(&b).unwrap();
        let s2 = m.forward_full(&b).unwrap();
        assert_eq!(s1, s2);
        assert!(s1.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn relevant_candidates_score_higher() {
        for arch in [ModelArch::DecoderOnly, ModelArch::EncoderOnly] {
            let m = test_model(arch, 6);
            let seqs: Vec<Vec<u32>> = vec![
                candidate(0.9, 16, 256, 10),
                candidate(0.6, 16, 256, 20),
                candidate(0.3, 16, 256, 30),
                candidate(0.05, 16, 256, 40),
            ];
            let b = SequenceBatch::new(&seqs).unwrap();
            let scores = m.forward_full(&b).unwrap();
            assert!(
                scores[0] > scores[2] && scores[0] > scores[3],
                "{arch:?} scores {scores:?}"
            );
            assert!(scores[1] > scores[3], "{arch:?} scores {scores:?}");
        }
    }

    #[test]
    fn score_trace_converges_with_depth() {
        let m = test_model(ModelArch::DecoderOnly, 8);
        let seqs: Vec<Vec<u32>> = (0..6)
            .map(|i| candidate(0.1 + 0.15 * i as f32, 16, 256, i as u64))
            .collect();
        let b = SequenceBatch::new(&seqs).unwrap();
        let trace = m.layer_score_trace(&b).unwrap();
        assert_eq!(trace.len(), 9);
        let final_scores = trace.last().unwrap();
        // Per-layer score movement must shrink with depth (sequence-level
        // sparsity's mechanical cause).
        let movement = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>()
        };
        let early: f32 = (1..4).map(|l| movement(&trace[l - 1], &trace[l])).sum();
        let late: f32 = (6..9).map(|l| movement(&trace[l - 1], &trace[l])).sum();
        assert!(late < early, "early {early} late {late}");
        // Mid-depth ranking already close to final ranking.
        let mid = &trace[5];
        let gamma = prism_metrics_gamma(mid, final_scores);
        assert!(gamma > 0.5, "gamma {gamma}");
    }

    /// Local γ implementation to avoid a circular dev-dependency.
    fn prism_metrics_gamma(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len();
        let (mut c, mut d) = (0_i64, 0_i64);
        for i in 0..n {
            for j in (i + 1)..n {
                let x = a[i] - a[j];
                let y = b[i] - b[j];
                if x == 0.0 || y == 0.0 {
                    continue;
                }
                if (x > 0.0) == (y > 0.0) {
                    c += 1;
                } else {
                    d += 1;
                }
            }
        }
        if c + d == 0 {
            1.0
        } else {
            (c - d) as f64 / (c + d) as f64
        }
    }

    #[test]
    fn container_round_trip_dense() {
        let m = test_model(ModelArch::DecoderOnly, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("prism-model-rt-{}", std::process::id()));
        m.write_container(&path).unwrap();
        let c = Container::open(&path).unwrap();
        let loaded = Model::load_container(m.config.clone(), &c).unwrap();
        assert_eq!(loaded.weights, m.weights);
        // Scores agree exactly.
        let b = SequenceBatch::new(&[candidate(0.5, 10, 256, 3)]).unwrap();
        assert_eq!(
            m.forward_full(&b).unwrap(),
            loaded.forward_full(&b).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn container_round_trip_quantized() {
        let m = test_model(ModelArch::EncoderOnly, 3).quantized().unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("prism-model-rtq-{}", std::process::id()));
        m.write_container(&path).unwrap();
        let c = Container::open(&path).unwrap();
        let loaded = Model::load_container(m.config.clone(), &c).unwrap();
        assert_eq!(loaded.weights, m.weights);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_config_rejected_on_load() {
        let m = test_model(ModelArch::DecoderOnly, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("prism-model-wrong-{}", std::process::id()));
        m.write_container(&path).unwrap();
        let c = Container::open(&path).unwrap();
        let mut bad = m.config.clone();
        bad.hidden_dim = 32;
        bad.num_heads = 4;
        assert!(Model::load_container(bad, &c).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quantized_model_preserves_ranking_mostly() {
        let m = test_model(ModelArch::DecoderOnly, 6);
        let q = m.quantized().unwrap();
        let seqs: Vec<Vec<u32>> = vec![
            candidate(0.9, 16, 256, 1),
            candidate(0.5, 16, 256, 2),
            candidate(0.1, 16, 256, 3),
        ];
        let b = SequenceBatch::new(&seqs).unwrap();
        let sd = m.forward_full(&b).unwrap();
        let sq = q.forward_full(&b).unwrap();
        // Top candidate unchanged between dense and quantized.
        let top_d = sd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let top_q = sq
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top_d, top_q);
    }

    #[test]
    fn out_of_vocab_token_rejected() {
        let m = test_model(ModelArch::DecoderOnly, 2);
        let b = SequenceBatch::new(&[vec![9999]]).unwrap();
        assert!(m.embed(&b).is_err());
    }
}
