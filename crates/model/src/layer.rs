//! Per-layer transformer forward pass over a batch of packed sequences.
//!
//! Sequences are packed vertically into one `[total_tokens, D]` hidden
//! tensor with explicit `(start, end)` row ranges; attention is computed
//! per sequence (no cross-candidate attention — each query–candidate pair
//! is an independent input, they merely share the batch). This function is
//! deliberately free-standing: the PRISM engine calls it with *streamed*
//! weights it owns for exactly one layer at a time.

use prism_tensor::{ops, Tensor};

use crate::{LayerWeights, ModelArch, ModelConfig, Result};

/// Applies transformer layer `layer_idx` in place on `hidden`.
///
/// `ranges` lists each sequence's `[start, end)` rows in `hidden`. The
/// residual update is scaled by the config's per-layer `α` (DESIGN.md §6),
/// which is what makes score trajectories converge across depth.
pub fn forward_layer(
    config: &ModelConfig,
    weights: &LayerWeights,
    layer_idx: usize,
    hidden: &mut Tensor,
    ranges: &[(usize, usize)],
) -> Result<()> {
    let alpha = config.alpha_at(layer_idx);

    // ---- Attention block (pre-norm) ----
    let mut normed = hidden.clone();
    apply_norm(
        config,
        &mut normed,
        &weights.norm1_gain,
        &weights.norm1_bias,
    )?;
    let q = weights.wq.apply(&normed)?;
    let k = weights.wk.apply(&normed)?;
    let v = weights.wv.apply(&normed)?;
    let attn = multi_head_attention(config, &q, &k, &v, ranges)?;
    let attn_out = weights.wo.apply(&attn)?;
    ops::axpy_inplace(hidden, alpha, &attn_out)?;

    // ---- FFN block (pre-norm, gated) ----
    let mut normed2 = hidden.clone();
    apply_norm(
        config,
        &mut normed2,
        &weights.norm2_gain,
        &weights.norm2_bias,
    )?;
    let mut gate = weights.w_gate.apply(&normed2)?;
    let up = weights.w_up.apply(&normed2)?;
    match config.arch {
        ModelArch::DecoderOnly => ops::silu_inplace(&mut gate),
        ModelArch::EncoderOnly => ops::gelu_inplace(&mut gate),
    }
    ops::hadamard_inplace(&mut gate, &up)?;
    let ffn_out = weights.w_down.apply(&gate)?;
    ops::axpy_inplace(hidden, alpha, &ffn_out)?;
    Ok(())
}

/// Applies the architecture's normalization in place.
pub fn apply_norm(config: &ModelConfig, x: &mut Tensor, gain: &[f32], bias: &[f32]) -> Result<()> {
    match config.arch {
        ModelArch::DecoderOnly => ops::rms_norm_inplace(x, gain, 1e-6)?,
        ModelArch::EncoderOnly => ops::layer_norm_inplace(x, gain, bias, 1e-6)?,
    }
    Ok(())
}

fn multi_head_attention(
    config: &ModelConfig,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    ranges: &[(usize, usize)],
) -> Result<Tensor> {
    let d = config.hidden_dim;
    let heads = config.num_heads;
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut out = Tensor::zeros(q.rows(), d);
    for &(start, end) in ranges {
        let q_seq = q.slice_rows(start, end)?;
        let k_seq = k.slice_rows(start, end)?;
        let v_seq = v.slice_rows(start, end)?;
        let mut seq_out = Tensor::zeros(end - start, d);
        for h in 0..heads {
            let c0 = h * hd;
            let c1 = c0 + hd;
            let qh = q_seq.slice_cols(c0, c1)?;
            let kh = k_seq.slice_cols(c0, c1)?;
            let vh = v_seq.slice_cols(c0, c1)?;
            let mut logits = ops::matmul_transb(&qh, &kh)?;
            ops::scale_inplace(&mut logits, scale);
            match config.arch {
                ModelArch::DecoderOnly => ops::causal_softmax_inplace(&mut logits)?,
                ModelArch::EncoderOnly => ops::softmax_rows_inplace(&mut logits)?,
            }
            let oh = ops::matmul(&logits, &vh)?;
            seq_out.set_cols(c0, &oh)?;
        }
        // Copy the per-sequence result into the packed output.
        for (i, r) in (start..end).enumerate() {
            let row = seq_out.row(i)?.to_vec();
            out.row_mut(r)?.copy_from_slice(&row);
        }
    }
    Ok(out)
}

/// Transient intermediate-tensor bytes needed to run one layer over
/// `total_tokens` packed tokens with maximum sequence length `max_seq`.
///
/// Counts the live set of the implementation above: normed copy, Q/K/V,
/// per-sequence attention logits, attention output, FFN gate/up. This is
/// the quantity chunked execution (§4.3) bounds.
pub fn intermediate_bytes(config: &ModelConfig, total_tokens: usize, max_seq: usize) -> u64 {
    let d = config.hidden_dim as u64;
    let f = config.ffn_dim as u64;
    let t = total_tokens as u64;
    let s = max_seq as u64;
    let act = config.activation_dtype_bytes as u64;
    // normed + q + k + v + attn_concat + attn_out ~ 6 T*D, logits S*S per
    // head (peak one head at a time) + gate/up 2 T*F.
    (6 * t * d + s * s + 2 * t * f) * act
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerWeights, ModelArch, ModelConfig};

    fn setup(arch: ModelArch) -> (ModelConfig, LayerWeights, Tensor, Vec<(usize, usize)>) {
        let config = ModelConfig::test_config(arch, 2);
        let w = LayerWeights::generate(&config, 0, 11);
        let hidden = Tensor::from_fn(12, config.hidden_dim, |r, c| {
            ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
        });
        let ranges = vec![(0, 5), (5, 12)];
        (config, w, hidden, ranges)
    }

    #[test]
    fn forward_changes_hidden_finite() {
        for arch in [ModelArch::DecoderOnly, ModelArch::EncoderOnly] {
            let (config, w, mut hidden, ranges) = setup(arch);
            let before = hidden.clone();
            forward_layer(&config, &w, 0, &mut hidden, &ranges).unwrap();
            assert!(hidden.max_abs_diff(&before).unwrap() > 1e-4);
            assert!(hidden.data().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sequences_are_independent() {
        // Forwarding two sequences together must equal forwarding them
        // separately: no information may leak across candidates.
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        let mut joint = hidden.clone();
        forward_layer(&config, &w, 0, &mut joint, &ranges).unwrap();

        let mut first = hidden.slice_rows(0, 5).unwrap();
        forward_layer(&config, &w, 0, &mut first, &[(0, 5)]).unwrap();
        let mut second = hidden.slice_rows(5, 12).unwrap();
        forward_layer(&config, &w, 0, &mut second, &[(0, 7)]).unwrap();

        let sep = Tensor::vcat(&[&first, &second]).unwrap();
        assert!(joint.max_abs_diff(&sep).unwrap() < 1e-4);
    }

    #[test]
    fn causal_masking_blocks_future_influence() {
        // For decoder models, perturbing the last token must not change
        // earlier tokens' outputs.
        let (config, w, hidden, _) = setup(ModelArch::DecoderOnly);
        let ranges = vec![(0, 12)];
        let mut a = hidden.clone();
        forward_layer(&config, &w, 0, &mut a, &ranges).unwrap();

        let mut perturbed = hidden.clone();
        for c in 0..config.hidden_dim {
            *perturbed.at_mut(11, c) += 1.0;
        }
        let mut b = perturbed.clone();
        forward_layer(&config, &w, 0, &mut b, &ranges).unwrap();

        let a_prefix = a.slice_rows(0, 11).unwrap();
        let b_prefix = b.slice_rows(0, 11).unwrap();
        assert!(a_prefix.max_abs_diff(&b_prefix).unwrap() < 1e-5);
    }

    #[test]
    fn bidirectional_attention_propagates_everywhere() {
        // For encoder models, perturbing the last token must change earlier
        // tokens' outputs.
        let (config, w, hidden, _) = setup(ModelArch::EncoderOnly);
        let ranges = vec![(0, 12)];
        let mut a = hidden.clone();
        forward_layer(&config, &w, 0, &mut a, &ranges).unwrap();
        let mut perturbed = hidden.clone();
        // A single-dimension bump: LayerNorm is shift-invariant, so a
        // uniform bump across all dims would be normalized away.
        *perturbed.at_mut(11, 3) += 2.0;
        let mut b = perturbed.clone();
        forward_layer(&config, &w, 0, &mut b, &ranges).unwrap();
        let a_prefix = a.slice_rows(0, 11).unwrap();
        let b_prefix = b.slice_rows(0, 11).unwrap();
        assert!(a_prefix.max_abs_diff(&b_prefix).unwrap() > 1e-5);
    }

    #[test]
    fn residual_decay_shrinks_updates() {
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        // Same weights at layer 0 vs layer 8: the deeper application must
        // change hidden strictly less (alpha decays).
        let mut early = hidden.clone();
        forward_layer(&config, &w, 0, &mut early, &ranges).unwrap();
        let mut late = hidden.clone();
        forward_layer(&config, &w, 8, &mut late, &ranges).unwrap();
        let delta_early = early.max_abs_diff(&hidden).unwrap();
        let delta_late = late.max_abs_diff(&hidden).unwrap();
        assert!(
            delta_late < delta_early * 0.5,
            "early {delta_early} late {delta_late}"
        );
    }

    #[test]
    fn quantized_layer_close_to_dense() {
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        let wq = w.quantize().unwrap();
        let mut dense = hidden.clone();
        forward_layer(&config, &w, 0, &mut dense, &ranges).unwrap();
        let mut quant = hidden.clone();
        forward_layer(&config, &wq, 0, &mut quant, &ranges).unwrap();
        let diff = dense.max_abs_diff(&quant).unwrap();
        assert!(diff < 0.15, "quantization divergence {diff}");
    }

    #[test]
    fn intermediate_bytes_scales_linearly_in_tokens() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 2);
        let one = intermediate_bytes(&config, 100, 50);
        let ten = intermediate_bytes(&config, 1000, 50);
        // Linear in tokens up to the fixed per-sequence logits term.
        assert!(ten > one * 8, "one {one} ten {ten}");
        assert!(ten < one * 10);
    }
}
