//! Per-layer transformer forward pass over a batch of packed sequences.
//!
//! Sequences are packed vertically into one `[total_tokens, D]` hidden
//! tensor with explicit `(start, end)` row ranges; attention is computed
//! per sequence (no cross-candidate attention — each query–candidate pair
//! is an independent input, they merely share the batch). This function is
//! deliberately free-standing: the PRISM engine calls it with *streamed*
//! weights it owns for exactly one layer at a time.
//!
//! The hot path is [`forward_layer_with`], which threads a reusable
//! [`ForwardScratch`] workspace through the layer so steady-state
//! execution performs **zero heap allocations**: projections land in
//! preallocated buffers via the `_into` kernels, and attention reads
//! per-head Q/K/V column slices and writes its output through strided
//! GEMMs instead of slicing, concatenating and re-copying tensors.

use prism_tensor::{ops, rowq, Tensor, TensorError};

use crate::weights::Int8LayerWeights;
use crate::{LayerWeights, ModelArch, ModelConfig, Result};

/// Reusable per-worker workspace for [`forward_layer_with`].
///
/// Holds every intermediate the layer needs — the normed copy, Q/K/V,
/// the attention output, the projection result, FFN gate/up and the
/// per-sequence logits — sized once (typically from the engine's chunk
/// geometry) and re-dressed per call with [`Tensor::resize`], which never
/// reallocates while shapes stay within the original capacity. One
/// scratch serves one worker thread; parallel chunk execution gives each
/// worker its own.
#[derive(Debug)]
pub struct ForwardScratch {
    normed: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Tensor,
    proj: Tensor,
    gate: Tensor,
    up: Tensor,
    logits: Vec<f32>,
    // Int8 lane: rowq codes of the activation block feeding the next
    // projection(s), plus the per-row affines. One code buffer serves
    // both widths (`D` for attention/FFN inputs, `F` for the down
    // projection) because each encode is fully consumed before the next.
    codes: Vec<u8>,
    row_mins: Vec<f32>,
    row_scales: Vec<f32>,
}

impl ForwardScratch {
    /// Allocates a workspace able to forward up to `max_tokens` packed
    /// tokens (and sequences up to `config.max_seq`) without reallocating.
    pub fn new(config: &ModelConfig, max_tokens: usize) -> Self {
        let d = config.hidden_dim;
        let f = config.ffn_dim;
        let s = config.max_seq;
        ForwardScratch {
            normed: Tensor::zeros(max_tokens, d),
            q: Tensor::zeros(max_tokens, d),
            k: Tensor::zeros(max_tokens, d),
            v: Tensor::zeros(max_tokens, d),
            attn: Tensor::zeros(max_tokens, d),
            proj: Tensor::zeros(max_tokens, d),
            gate: Tensor::zeros(max_tokens, f),
            up: Tensor::zeros(max_tokens, f),
            logits: vec![0.0; s * s],
            codes: vec![0; max_tokens * d.max(f)],
            row_mins: vec![0.0; max_tokens],
            row_scales: vec![0.0; max_tokens],
        }
    }

    /// Re-dresses the buffers for `tokens` packed rows with longest
    /// sequence `max_seq`; grows (allocating) only when a request exceeds
    /// the capacity chosen at construction.
    fn prepare(&mut self, config: &ModelConfig, tokens: usize, max_seq: usize) {
        let d = config.hidden_dim;
        let f = config.ffn_dim;
        self.normed.resize(tokens, d);
        self.q.resize(tokens, d);
        self.k.resize(tokens, d);
        self.v.resize(tokens, d);
        self.attn.resize(tokens, d);
        self.proj.resize(tokens, d);
        self.gate.resize(tokens, f);
        self.up.resize(tokens, f);
        if self.logits.len() < max_seq * max_seq {
            self.logits.resize(max_seq * max_seq, 0.0);
        }
        if self.codes.len() < tokens * d.max(f) {
            self.codes.resize(tokens * d.max(f), 0);
        }
        if self.row_mins.len() < tokens {
            self.row_mins.resize(tokens, 0.0);
            self.row_scales.resize(tokens, 0.0);
        }
    }

    /// Resident bytes of the workspace at its current shape.
    pub fn size_bytes(&self) -> usize {
        self.normed.size_bytes()
            + self.q.size_bytes()
            + self.k.size_bytes()
            + self.v.size_bytes()
            + self.attn.size_bytes()
            + self.proj.size_bytes()
            + self.gate.size_bytes()
            + self.up.size_bytes()
            + self.logits.len() * std::mem::size_of::<f32>()
            + self.codes.len()
            + (self.row_mins.len() + self.row_scales.len()) * std::mem::size_of::<f32>()
    }
}

/// Rowq-encodes every row of `src` into the scratch int8 lane (codes +
/// per-row affines). Free function so callers can borrow `src` from one
/// scratch field while writing the lane fields.
fn encode_rows_into(
    src: &Tensor,
    codes: &mut [u8],
    mins: &mut [f32],
    scales: &mut [f32],
) -> Result<()> {
    let cols = src.cols();
    for r in 0..src.rows() {
        let (min, scale) = rowq::encode_row(src.row(r)?, &mut codes[r * cols..][..cols])?;
        mins[r] = min;
        scales[r] = scale;
    }
    Ok(())
}

/// Applies transformer layer `layer_idx` in place on `hidden`.
///
/// Convenience wrapper over [`forward_layer_with`] that allocates a
/// throwaway [`ForwardScratch`]; callers on a hot path (the engine, the
/// baselines) keep a scratch alive across layers and chunks instead.
pub fn forward_layer(
    config: &ModelConfig,
    weights: &LayerWeights,
    layer_idx: usize,
    hidden: &mut Tensor,
    ranges: &[(usize, usize)],
) -> Result<()> {
    let mut scratch = ForwardScratch::new(config, hidden.rows());
    forward_layer_with(config, weights, layer_idx, hidden, ranges, &mut scratch)
}

/// Applies transformer layer `layer_idx` in place on `hidden`, using a
/// caller-provided scratch workspace (zero heap allocations in steady
/// state).
///
/// `ranges` lists each sequence's `[start, end)` rows in `hidden`. The
/// residual update is scaled by the config's per-layer `α` (DESIGN.md §6),
/// which is what makes score trajectories converge across depth.
pub fn forward_layer_with(
    config: &ModelConfig,
    weights: &LayerWeights,
    layer_idx: usize,
    hidden: &mut Tensor,
    ranges: &[(usize, usize)],
    scratch: &mut ForwardScratch,
) -> Result<()> {
    if hidden.cols() != config.hidden_dim {
        return Err(TensorError::ShapeMismatch {
            op: "forward_layer",
            lhs: hidden.shape(),
            rhs: (hidden.rows(), config.hidden_dim),
        }
        .into());
    }
    let max_seq = ranges
        .iter()
        .map(|&(s, e)| e.saturating_sub(s))
        .max()
        .unwrap_or(0);
    scratch.prepare(config, hidden.rows(), max_seq);
    let alpha = config.alpha_at(layer_idx);

    // ---- Attention block (pre-norm) ----
    scratch.normed.data_mut().copy_from_slice(hidden.data());
    apply_norm(
        config,
        &mut scratch.normed,
        &weights.norm1_gain,
        &weights.norm1_bias,
    )?;
    weights.wq.apply_into(&scratch.normed, &mut scratch.q)?;
    weights.wk.apply_into(&scratch.normed, &mut scratch.k)?;
    weights.wv.apply_into(&scratch.normed, &mut scratch.v)?;
    multi_head_attention_into(
        config,
        &scratch.q,
        &scratch.k,
        &scratch.v,
        ranges,
        &mut scratch.attn,
        &mut scratch.logits,
    )?;
    weights.wo.apply_into(&scratch.attn, &mut scratch.proj)?;
    ops::axpy_inplace(hidden, alpha, &scratch.proj)?;

    // ---- FFN block (pre-norm, gated) ----
    scratch.normed.data_mut().copy_from_slice(hidden.data());
    apply_norm(
        config,
        &mut scratch.normed,
        &weights.norm2_gain,
        &weights.norm2_bias,
    )?;
    weights
        .w_gate
        .apply_into(&scratch.normed, &mut scratch.gate)?;
    weights.w_up.apply_into(&scratch.normed, &mut scratch.up)?;
    match config.arch {
        ModelArch::DecoderOnly => ops::silu_inplace(&mut scratch.gate),
        ModelArch::EncoderOnly => ops::gelu_inplace(&mut scratch.gate),
    }
    ops::hadamard_inplace(&mut scratch.gate, &scratch.up)?;
    weights
        .w_down
        .apply_into(&scratch.gate, &mut scratch.proj)?;
    ops::axpy_inplace(hidden, alpha, &scratch.proj)?;
    Ok(())
}

/// Applies transformer layer `layer_idx` in place on `hidden` using the
/// **integer compute path**: every projection runs as a u8×i8 GEMM over
/// rowq-encoded activations and per-row-quantized weights, rescaled once
/// into the f32 scratch buffers.
///
/// The structure mirrors [`forward_layer_with`] exactly — pre-norm
/// attention, then the gated FFN — but each `apply_into` is replaced by
/// an encode + [`prism_tensor::igemm`] multiply. Attention itself
/// (softmax over logits, the V aggregation) and the residual stream stay
/// f32: they are cheap relative to the projections and precision-critical.
/// Four activation blocks are encoded per layer: the attention input
/// (feeding Q/K/V), the attention output (feeding `wo`), the FFN input
/// (feeding gate/up) and the activated gate (feeding `w_down`).
pub fn forward_layer_int8(
    config: &ModelConfig,
    weights: &Int8LayerWeights,
    layer_idx: usize,
    hidden: &mut Tensor,
    ranges: &[(usize, usize)],
    scratch: &mut ForwardScratch,
) -> Result<()> {
    if hidden.cols() != config.hidden_dim {
        return Err(TensorError::ShapeMismatch {
            op: "forward_layer_int8",
            lhs: hidden.shape(),
            rhs: (hidden.rows(), config.hidden_dim),
        }
        .into());
    }
    let max_seq = ranges
        .iter()
        .map(|&(s, e)| e.saturating_sub(s))
        .max()
        .unwrap_or(0);
    let tokens = hidden.rows();
    scratch.prepare(config, tokens, max_seq);
    let alpha = config.alpha_at(layer_idx);

    // ---- Attention block (pre-norm) ----
    scratch.normed.data_mut().copy_from_slice(hidden.data());
    apply_norm(
        config,
        &mut scratch.normed,
        &weights.norm1_gain,
        &weights.norm1_bias,
    )?;
    encode_rows_into(
        &scratch.normed,
        &mut scratch.codes,
        &mut scratch.row_mins,
        &mut scratch.row_scales,
    )?;
    for (w, out) in [
        (&weights.wq, &mut scratch.q),
        (&weights.wk, &mut scratch.k),
        (&weights.wv, &mut scratch.v),
    ] {
        w.matmul_codes_into(
            &scratch.codes,
            &scratch.row_mins,
            &scratch.row_scales,
            tokens,
            out.data_mut(),
        )?;
    }
    multi_head_attention_into(
        config,
        &scratch.q,
        &scratch.k,
        &scratch.v,
        ranges,
        &mut scratch.attn,
        &mut scratch.logits,
    )?;
    encode_rows_into(
        &scratch.attn,
        &mut scratch.codes,
        &mut scratch.row_mins,
        &mut scratch.row_scales,
    )?;
    weights.wo.matmul_codes_into(
        &scratch.codes,
        &scratch.row_mins,
        &scratch.row_scales,
        tokens,
        scratch.proj.data_mut(),
    )?;
    ops::axpy_inplace(hidden, alpha, &scratch.proj)?;

    // ---- FFN block (pre-norm, gated) ----
    scratch.normed.data_mut().copy_from_slice(hidden.data());
    apply_norm(
        config,
        &mut scratch.normed,
        &weights.norm2_gain,
        &weights.norm2_bias,
    )?;
    encode_rows_into(
        &scratch.normed,
        &mut scratch.codes,
        &mut scratch.row_mins,
        &mut scratch.row_scales,
    )?;
    for (w, out) in [
        (&weights.w_gate, &mut scratch.gate),
        (&weights.w_up, &mut scratch.up),
    ] {
        w.matmul_codes_into(
            &scratch.codes,
            &scratch.row_mins,
            &scratch.row_scales,
            tokens,
            out.data_mut(),
        )?;
    }
    match config.arch {
        ModelArch::DecoderOnly => ops::silu_inplace(&mut scratch.gate),
        ModelArch::EncoderOnly => ops::gelu_inplace(&mut scratch.gate),
    }
    ops::hadamard_inplace(&mut scratch.gate, &scratch.up)?;
    encode_rows_into(
        &scratch.gate,
        &mut scratch.codes,
        &mut scratch.row_mins,
        &mut scratch.row_scales,
    )?;
    weights.w_down.matmul_codes_into(
        &scratch.codes,
        &scratch.row_mins,
        &scratch.row_scales,
        tokens,
        scratch.proj.data_mut(),
    )?;
    ops::axpy_inplace(hidden, alpha, &scratch.proj)?;
    Ok(())
}

/// Applies the architecture's normalization in place.
pub fn apply_norm(config: &ModelConfig, x: &mut Tensor, gain: &[f32], bias: &[f32]) -> Result<()> {
    match config.arch {
        ModelArch::DecoderOnly => ops::rms_norm_inplace(x, gain, 1e-6)?,
        ModelArch::EncoderOnly => ops::layer_norm_inplace(x, gain, bias, 1e-6)?,
    }
    Ok(())
}

/// Multi-head attention over packed sequences, written directly into
/// `out` through strided GEMMs.
///
/// Per-head Q/K/V column blocks are read in place from the packed
/// `[tokens, D]` buffers (row stride `D`), logits live in the scratch
/// `logits` slice, and each head's output lands in its own column block
/// of `out` — no per-head copies, no per-row shuffles.
fn multi_head_attention_into(
    config: &ModelConfig,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    ranges: &[(usize, usize)],
    out: &mut Tensor,
    logits: &mut [f32],
) -> Result<()> {
    let d = config.hidden_dim;
    let heads = config.num_heads;
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let total = q.rows();
    // Rows not covered by any range must stay zero (pre-scratch
    // behavior); when the ranges tile the buffer end to end — the engine
    // always packs them that way — every row is overwritten and the
    // clear can be skipped.
    let contiguous = ranges
        .iter()
        .try_fold(0_usize, |at, &(s, e)| (s == at && e >= s).then_some(e))
        == Some(total);
    if !contiguous {
        out.data_mut().fill(0.0);
    }
    for &(start, end) in ranges {
        if start > end || end > total {
            return Err(TensorError::IndexOutOfBounds {
                index: end,
                bound: total,
            }
            .into());
        }
        let s = end - start;
        if s == 0 {
            continue;
        }
        let lg = &mut logits[..s * s];
        for h in 0..heads {
            let c0 = h * hd;
            ops::gemm_transb_strided(
                &q.data()[start * d + c0..],
                d,
                &k.data()[start * d + c0..],
                d,
                lg,
                s,
                s,
                hd,
                s,
            );
            for (r, row) in lg.chunks_mut(s).enumerate() {
                if config.arch == ModelArch::DecoderOnly {
                    // Causal: position r attends to 0..=r. Softmax of the
                    // valid prefix plus explicit zeros is bit-identical to
                    // masking the tail with -inf (whose exp flushes to 0)
                    // and halves the softmax work.
                    ops::softmax_scaled_in_place(&mut row[..=r], scale);
                    row[r + 1..].fill(0.0);
                } else {
                    ops::softmax_scaled_in_place(row, scale);
                }
            }
            ops::gemm_strided(
                lg,
                s,
                &v.data()[start * d + c0..],
                d,
                &mut out.data_mut()[start * d + c0..],
                d,
                s,
                s,
                hd,
            );
        }
    }
    Ok(())
}

/// Transient intermediate-tensor bytes needed to run one layer over
/// `total_tokens` packed tokens with maximum sequence length `max_seq`.
///
/// Counts the [`ForwardScratch`] working set — which is now *actually
/// resident* for the whole layer: normed copy, Q/K/V, attention output,
/// projection buffer (6 `T x D` tensors), FFN gate/up (2 `T x F`) and the
/// `S x S` logits buffer. This is the quantity chunked execution (§4.3)
/// bounds.
pub fn intermediate_bytes(config: &ModelConfig, total_tokens: usize, max_seq: usize) -> u64 {
    let d = config.hidden_dim as u64;
    let f = config.ffn_dim as u64;
    let t = total_tokens as u64;
    let s = max_seq as u64;
    let act = config.activation_dtype_bytes as u64;
    (6 * t * d + s * s + 2 * t * f) * act
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerWeights, ModelArch, ModelConfig};

    fn setup(arch: ModelArch) -> (ModelConfig, LayerWeights, Tensor, Vec<(usize, usize)>) {
        let config = ModelConfig::test_config(arch, 2);
        let w = LayerWeights::generate(&config, 0, 11);
        let hidden = Tensor::from_fn(12, config.hidden_dim, |r, c| {
            ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
        });
        let ranges = vec![(0, 5), (5, 12)];
        (config, w, hidden, ranges)
    }

    #[test]
    fn forward_changes_hidden_finite() {
        for arch in [ModelArch::DecoderOnly, ModelArch::EncoderOnly] {
            let (config, w, mut hidden, ranges) = setup(arch);
            let before = hidden.clone();
            forward_layer(&config, &w, 0, &mut hidden, &ranges).unwrap();
            assert!(hidden.max_abs_diff(&before).unwrap() > 1e-4);
            assert!(hidden.data().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sequences_are_independent() {
        // Forwarding two sequences together must equal forwarding them
        // separately: no information may leak across candidates.
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        let mut joint = hidden.clone();
        forward_layer(&config, &w, 0, &mut joint, &ranges).unwrap();

        let mut first = hidden.slice_rows(0, 5).unwrap();
        forward_layer(&config, &w, 0, &mut first, &[(0, 5)]).unwrap();
        let mut second = hidden.slice_rows(5, 12).unwrap();
        forward_layer(&config, &w, 0, &mut second, &[(0, 7)]).unwrap();

        let sep = Tensor::vcat(&[&first, &second]).unwrap();
        assert!(joint.max_abs_diff(&sep).unwrap() < 1e-4);
    }

    #[test]
    fn causal_masking_blocks_future_influence() {
        // For decoder models, perturbing the last token must not change
        // earlier tokens' outputs.
        let (config, w, hidden, _) = setup(ModelArch::DecoderOnly);
        let ranges = vec![(0, 12)];
        let mut a = hidden.clone();
        forward_layer(&config, &w, 0, &mut a, &ranges).unwrap();

        let mut perturbed = hidden.clone();
        for c in 0..config.hidden_dim {
            *perturbed.at_mut(11, c) += 1.0;
        }
        let mut b = perturbed.clone();
        forward_layer(&config, &w, 0, &mut b, &ranges).unwrap();

        let a_prefix = a.slice_rows(0, 11).unwrap();
        let b_prefix = b.slice_rows(0, 11).unwrap();
        assert!(a_prefix.max_abs_diff(&b_prefix).unwrap() < 1e-5);
    }

    #[test]
    fn bidirectional_attention_propagates_everywhere() {
        // For encoder models, perturbing the last token must change earlier
        // tokens' outputs.
        let (config, w, hidden, _) = setup(ModelArch::EncoderOnly);
        let ranges = vec![(0, 12)];
        let mut a = hidden.clone();
        forward_layer(&config, &w, 0, &mut a, &ranges).unwrap();
        let mut perturbed = hidden.clone();
        // A single-dimension bump: LayerNorm is shift-invariant, so a
        // uniform bump across all dims would be normalized away.
        *perturbed.at_mut(11, 3) += 2.0;
        let mut b = perturbed.clone();
        forward_layer(&config, &w, 0, &mut b, &ranges).unwrap();
        let a_prefix = a.slice_rows(0, 11).unwrap();
        let b_prefix = b.slice_rows(0, 11).unwrap();
        assert!(a_prefix.max_abs_diff(&b_prefix).unwrap() > 1e-5);
    }

    #[test]
    fn residual_decay_shrinks_updates() {
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        // Same weights at layer 0 vs layer 8: the deeper application must
        // change hidden strictly less (alpha decays).
        let mut early = hidden.clone();
        forward_layer(&config, &w, 0, &mut early, &ranges).unwrap();
        let mut late = hidden.clone();
        forward_layer(&config, &w, 8, &mut late, &ranges).unwrap();
        let delta_early = early.max_abs_diff(&hidden).unwrap();
        let delta_late = late.max_abs_diff(&hidden).unwrap();
        assert!(
            delta_late < delta_early * 0.5,
            "early {delta_early} late {delta_late}"
        );
    }

    #[test]
    fn quantized_layer_close_to_dense() {
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        let wq = w.quantize().unwrap();
        let mut dense = hidden.clone();
        forward_layer(&config, &w, 0, &mut dense, &ranges).unwrap();
        let mut quant = hidden.clone();
        forward_layer(&config, &wq, 0, &mut quant, &ranges).unwrap();
        let diff = dense.max_abs_diff(&quant).unwrap();
        assert!(diff < 0.15, "quantization divergence {diff}");
    }

    #[test]
    fn int8_layer_close_to_dense() {
        // The integer compute path quantizes both operands of every
        // projection (u8 activations, i8 weights); per layer that stays
        // within the same error envelope as the W4 weight quantization.
        for arch in [ModelArch::DecoderOnly, ModelArch::EncoderOnly] {
            let (config, w, hidden, ranges) = setup(arch);
            let w8 = crate::weights::Int8LayerWeights::from_layer(&w).unwrap();
            let mut dense = hidden.clone();
            forward_layer(&config, &w, 0, &mut dense, &ranges).unwrap();
            let mut int8 = hidden.clone();
            let mut scratch = ForwardScratch::new(&config, int8.rows());
            forward_layer_int8(&config, &w8, 0, &mut int8, &ranges, &mut scratch).unwrap();
            let diff = dense.max_abs_diff(&int8).unwrap();
            assert!(diff < 0.15, "{arch:?}: int8 divergence {diff}");
            assert!(int8.data().iter().all(|x| x.is_finite()));
            // And it must actually have moved the hidden state.
            assert!(int8.max_abs_diff(&hidden).unwrap() > 1e-4);
        }
    }

    #[test]
    fn int8_layer_reuses_scratch_across_shapes() {
        // A scratch sized for the larger batch must serve a smaller one
        // without corrupting results (stale codes beyond the new token
        // count must not leak into the GEMMs).
        let (config, w, hidden, ranges) = setup(ModelArch::DecoderOnly);
        let w8 = crate::weights::Int8LayerWeights::from_layer(&w).unwrap();
        let mut scratch = ForwardScratch::new(&config, hidden.rows());
        let mut big = hidden.clone();
        forward_layer_int8(&config, &w8, 0, &mut big, &ranges, &mut scratch).unwrap();

        let mut small = hidden.slice_rows(0, 5).unwrap();
        forward_layer_int8(&config, &w8, 0, &mut small, &[(0, 5)], &mut scratch).unwrap();
        let mut fresh = hidden.slice_rows(0, 5).unwrap();
        let mut fresh_scratch = ForwardScratch::new(&config, 5);
        forward_layer_int8(&config, &w8, 0, &mut fresh, &[(0, 5)], &mut fresh_scratch).unwrap();
        assert_eq!(
            small.data(),
            fresh.data(),
            "scratch reuse changed int8 results"
        );
    }

    #[test]
    fn intermediate_bytes_scales_linearly_in_tokens() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 2);
        let one = intermediate_bytes(&config, 100, 50);
        let ten = intermediate_bytes(&config, 1000, 50);
        // Linear in tokens up to the fixed per-sequence logits term.
        assert!(ten > one * 8, "one {one} ten {ten}");
        assert!(ten < one * 10);
    }
}
