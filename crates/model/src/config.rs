//! Model configurations: the paper's Table 1 catalog at two scales.

use serde::{Deserialize, Serialize};

/// Transformer architecture family (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelArch {
    /// Bidirectional self-attention with mean pooling and LayerNorm
    /// (BERT-style; BGE-Reranker-v2-M3).
    EncoderOnly,
    /// Causal self-attention with last-token pooling and RMSNorm
    /// (GPT-style; Qwen3 rerankers, BGE-Reranker-v2-MiniCPM).
    DecoderOnly,
}

/// Whether a config carries true (paper) dimensions or the executable mini
/// dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// True checkpoint dimensions — byte/FLOP accounting only.
    Paper,
    /// Shrunk widths, same depth — actually executed.
    Mini,
    /// Tiny dimensions for fast unit tests.
    Test,
}

/// Full configuration of a reranker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (matches the paper's Table 1 where applicable).
    pub name: String,
    /// Architecture family.
    pub arch: ModelArch,
    /// Which scale this config represents.
    pub scale: Scale,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Attention heads (`hidden_dim % num_heads == 0`).
    pub num_heads: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length the model accepts.
    pub max_seq: usize,
    /// Bytes per weight element as stored/loaded (2 = bf16 checkpoints at
    /// paper scale, 4 = f32 for executable scales).
    pub weight_dtype_bytes: usize,
    /// Bytes per activation element.
    pub activation_dtype_bytes: usize,
    /// Residual scale of the first layer (`α₀` in DESIGN.md §6).
    pub residual_alpha: f32,
    /// Per-layer geometric decay of the residual scale (`ρ`).
    pub residual_decay: f32,
}

impl ModelConfig {
    /// Residual scale applied at layer `l`.
    pub fn alpha_at(&self, layer: usize) -> f32 {
        self.residual_alpha * self.residual_decay.powi(layer as i32)
    }

    /// Parameters in one transformer layer (attention + FFN + norms).
    pub fn layer_params(&self) -> u64 {
        let d = self.hidden_dim as u64;
        let f = self.ffn_dim as u64;
        // Q, K, V, O projections + gate/up/down FFN + two norm gains/biases.
        4 * d * d + 3 * d * f + 4 * d
    }

    /// Bytes of one layer's weights at the configured dtype.
    pub fn layer_bytes(&self) -> u64 {
        self.layer_params() * self.weight_dtype_bytes as u64
    }

    /// Bytes of one layer's weights after 4-bit quantization (4.5 bits per
    /// weight including block metadata, matching `prism-tensor`'s format).
    pub fn layer_bytes_q4(&self) -> u64 {
        (self.layer_params() * 9).div_ceil(16)
    }

    /// Parameters in the embedding table.
    pub fn embedding_params(&self) -> u64 {
        self.vocab_size as u64 * self.hidden_dim as u64
    }

    /// Bytes of the embedding table at the configured dtype.
    pub fn embedding_bytes(&self) -> u64 {
        self.embedding_params() * self.weight_dtype_bytes as u64
    }

    /// Parameters of the classifier head (final norm + projection).
    pub fn head_params(&self) -> u64 {
        3 * self.hidden_dim as u64 + 1
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.embedding_params() + self.num_layers as u64 * self.layer_params() + self.head_params()
    }

    /// Total weight bytes at the configured dtype.
    pub fn total_weight_bytes(&self) -> u64 {
        (self.embedding_params()
            + self.num_layers as u64 * self.layer_params()
            + self.head_params())
            * self.weight_dtype_bytes as u64
    }

    /// Multiply-accumulate operations for one layer over a batch of
    /// sequences with `total_tokens` tokens and `seq_len` average length.
    ///
    /// Attention: 4 projections (`T·D²`) plus logits/weighted-sum
    /// (`2·T·S·D`); FFN: gate/up/down (`3·T·D·F`).
    pub fn layer_macs(&self, total_tokens: u64, seq_len: u64) -> u64 {
        let d = self.hidden_dim as u64;
        let f = self.ffn_dim as u64;
        4 * total_tokens * d * d + 2 * total_tokens * seq_len * d + 3 * total_tokens * d * f
    }

    /// MACs for embedding lookup (row copies — negligible, counted as D per
    /// token) plus classifier head per candidate.
    pub fn head_macs(&self, candidates: u64) -> u64 {
        candidates * self.hidden_dim as u64
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        if self.hidden_dim == 0 || self.num_layers == 0 || self.vocab_size == 0 {
            return Err(crate::Error::Config("zero-sized dimension".into()));
        }
        if !self.hidden_dim.is_multiple_of(self.num_heads) {
            return Err(crate::Error::Config(format!(
                "hidden_dim {} not divisible by num_heads {}",
                self.hidden_dim, self.num_heads
            )));
        }
        if !(0.0..=1.5).contains(&self.residual_decay) {
            return Err(crate::Error::Config("residual_decay out of range".into()));
        }
        Ok(())
    }

    // ----- Paper-scale catalog (Table 1) -----

    /// Qwen3-Reranker-0.6B: 28 decoder layers, hidden 1024.
    pub fn qwen3_0_6b() -> Self {
        ModelConfig {
            name: "Qwen3-Reranker-0.6B".into(),
            arch: ModelArch::DecoderOnly,
            scale: Scale::Paper,
            num_layers: 28,
            hidden_dim: 1024,
            num_heads: 16,
            ffn_dim: 3072,
            vocab_size: 151_669,
            max_seq: 512,
            weight_dtype_bytes: 2,
            activation_dtype_bytes: 2,
            residual_alpha: 0.8,
            residual_decay: 0.90,
        }
    }

    /// Qwen3-Reranker-4B: 36 decoder layers, hidden 2560.
    pub fn qwen3_4b() -> Self {
        ModelConfig {
            name: "Qwen3-Reranker-4B".into(),
            arch: ModelArch::DecoderOnly,
            scale: Scale::Paper,
            num_layers: 36,
            hidden_dim: 2560,
            num_heads: 32,
            ffn_dim: 9728,
            vocab_size: 151_669,
            max_seq: 512,
            weight_dtype_bytes: 2,
            activation_dtype_bytes: 2,
            residual_alpha: 0.8,
            residual_decay: 0.92,
        }
    }

    /// Qwen3-Reranker-8B: 36 decoder layers, hidden 4096.
    pub fn qwen3_8b() -> Self {
        ModelConfig {
            name: "Qwen3-Reranker-8B".into(),
            arch: ModelArch::DecoderOnly,
            scale: Scale::Paper,
            num_layers: 36,
            hidden_dim: 4096,
            num_heads: 32,
            ffn_dim: 12288,
            vocab_size: 151_669,
            max_seq: 512,
            weight_dtype_bytes: 2,
            activation_dtype_bytes: 2,
            residual_alpha: 0.8,
            residual_decay: 0.92,
        }
    }

    /// BGE-Reranker-v2-MiniCPM: 40 decoder layers, hidden 2304.
    pub fn bge_minicpm() -> Self {
        ModelConfig {
            name: "Bge-Reranker-v2-MiniCPM".into(),
            arch: ModelArch::DecoderOnly,
            scale: Scale::Paper,
            num_layers: 40,
            hidden_dim: 2304,
            num_heads: 36,
            ffn_dim: 5760,
            vocab_size: 122_753,
            max_seq: 512,
            weight_dtype_bytes: 2,
            activation_dtype_bytes: 2,
            residual_alpha: 0.8,
            residual_decay: 0.90,
        }
    }

    /// BGE-Reranker-v2-M3: 24 encoder layers, hidden 1024 (XLM-R large).
    pub fn bge_m3() -> Self {
        ModelConfig {
            name: "Bge-Reranker-v2-M3".into(),
            arch: ModelArch::EncoderOnly,
            scale: Scale::Paper,
            num_layers: 24,
            hidden_dim: 1024,
            num_heads: 16,
            ffn_dim: 4096,
            vocab_size: 250_002,
            max_seq: 512,
            weight_dtype_bytes: 2,
            activation_dtype_bytes: 2,
            residual_alpha: 0.8,
            residual_decay: 0.88,
        }
    }

    /// All five paper-scale configs in Table 1 order.
    pub fn paper_catalog() -> Vec<ModelConfig> {
        vec![
            Self::qwen3_0_6b(),
            Self::qwen3_4b(),
            Self::qwen3_8b(),
            Self::bge_minicpm(),
            Self::bge_m3(),
        ]
    }

    /// The executable mini-scale twin of this config: same depth,
    /// architecture and residual schedule; shrunk widths and vocabulary.
    pub fn mini_twin(&self) -> ModelConfig {
        ModelConfig {
            name: format!("{}-mini", self.name),
            arch: self.arch,
            scale: Scale::Mini,
            num_layers: self.num_layers,
            hidden_dim: 32,
            num_heads: 4,
            ffn_dim: 64,
            vocab_size: 2048,
            max_seq: 64,
            weight_dtype_bytes: 4,
            activation_dtype_bytes: 4,
            residual_alpha: self.residual_alpha,
            residual_decay: self.residual_decay,
        }
    }

    /// A tiny config for unit tests: `layers` deep, everything else small.
    pub fn test_config(arch: ModelArch, layers: usize) -> ModelConfig {
        ModelConfig {
            name: format!("test-{layers}l"),
            arch,
            scale: Scale::Test,
            num_layers: layers,
            hidden_dim: 16,
            num_heads: 2,
            ffn_dim: 32,
            vocab_size: 256,
            max_seq: 32,
            weight_dtype_bytes: 4,
            activation_dtype_bytes: 4,
            residual_alpha: 0.8,
            residual_decay: 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_matches_table1() {
        let cat = ModelConfig::paper_catalog();
        assert_eq!(cat.len(), 5);
        let qwen06 = &cat[0];
        assert_eq!(qwen06.num_layers, 28);
        assert_eq!(qwen06.arch, ModelArch::DecoderOnly);
        // Paper: "28 Transformer layers (15 M weights each layer)".
        let per_layer_m = qwen06.layer_params() as f64 / 1e6;
        assert!(
            (13.0..18.0).contains(&per_layer_m),
            "per-layer {per_layer_m} M"
        );
        // Paper: 0.6 B total.
        let total_b = qwen06.total_params() as f64 / 1e9;
        assert!((0.5..0.75).contains(&total_b), "total {total_b} B");
        // Paper §4.4: embedding table ~296 MB at bf16.
        let emb_mb = qwen06.embedding_bytes() as f64 / (1024.0 * 1024.0);
        assert!((280.0..320.0).contains(&emb_mb), "embedding {emb_mb} MiB");
        // Layers dominate weights (paper: >70%).
        let layer_frac = (qwen06.num_layers as u64 * qwen06.layer_params()) as f64
            / qwen06.total_params() as f64;
        assert!(layer_frac > 0.7, "layer fraction {layer_frac}");
    }

    #[test]
    fn model_sizes_scale_as_expected() {
        let b4 = ModelConfig::qwen3_4b().total_params() as f64 / 1e9;
        let b8 = ModelConfig::qwen3_8b().total_params() as f64 / 1e9;
        let b2 = ModelConfig::bge_minicpm().total_params() as f64 / 1e9;
        let m3 = ModelConfig::bge_m3().total_params() as f64 / 1e9;
        assert!((3.2..5.0).contains(&b4), "4B got {b4}");
        assert!((6.5..9.5).contains(&b8), "8B got {b8}");
        assert!((1.8..3.2).contains(&b2), "MiniCPM got {b2}");
        assert!((0.4..0.8).contains(&m3), "M3 got {m3}");
    }

    #[test]
    fn q4_bytes_much_smaller_than_dense() {
        let c = ModelConfig::qwen3_0_6b();
        // bf16 -> q4 should be roughly 3.5x smaller (16 bits -> 4.5 bits).
        let ratio = c.layer_bytes() as f64 / c.layer_bytes_q4() as f64;
        assert!((3.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alpha_decays_geometrically() {
        let c = ModelConfig::test_config(ModelArch::DecoderOnly, 4);
        assert!(c.alpha_at(0) > c.alpha_at(1));
        let r1 = c.alpha_at(1) / c.alpha_at(0);
        let r2 = c.alpha_at(2) / c.alpha_at(1);
        assert!((r1 - r2).abs() < 1e-6);
        assert!((r1 - c.residual_decay).abs() < 1e-6);
    }

    #[test]
    fn mini_twin_keeps_depth_and_arch() {
        let paper = ModelConfig::bge_minicpm();
        let mini = paper.mini_twin();
        assert_eq!(mini.num_layers, paper.num_layers);
        assert_eq!(mini.arch, paper.arch);
        assert_eq!(mini.scale, Scale::Mini);
        assert!(mini.total_weight_bytes() < paper.total_weight_bytes() / 100);
        mini.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = ModelConfig::test_config(ModelArch::EncoderOnly, 2);
        c.validate().unwrap();
        c.num_heads = 3;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::test_config(ModelArch::EncoderOnly, 2);
        c.hidden_dim = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::test_config(ModelArch::EncoderOnly, 2);
        c.residual_decay = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn layer_macs_scale_with_tokens() {
        let c = ModelConfig::qwen3_0_6b();
        let one = c.layer_macs(500, 500);
        let twenty = c.layer_macs(20 * 500, 500);
        assert_eq!(twenty, 20 * one);
        // FFN + projections dominate at seq 500 (paper: compute-bound).
        let d = c.hidden_dim as u64;
        let proj_ffn = 4 * 500 * d * d + 3 * 500 * d * c.ffn_dim as u64;
        assert!(proj_ffn as f64 / one as f64 > 0.7);
    }

    #[test]
    fn test_config_is_valid_and_tiny() {
        for arch in [ModelArch::EncoderOnly, ModelArch::DecoderOnly] {
            let c = ModelConfig::test_config(arch, 6);
            c.validate().unwrap();
            assert_eq!(c.num_layers, 6);
            assert!(c.total_weight_bytes() < 1 << 20);
        }
    }
}
