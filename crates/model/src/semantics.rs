//! The planted semantic convention shared by weight generation and the
//! workload generator.
//!
//! Real rerankers learn to map token content to relevance. Without trained
//! checkpoints we *plant* that mapping (DESIGN.md §2, §6): every vocabulary
//! id carries a deterministic scalar signal; the candidate generator
//! composes token sequences whose mean signal equals the intended
//! relevance, and generated model weights amplify the signal dimension so
//! the classifier can read it back. Both sides must agree on the
//! convention, which is exactly what this module pins down.

/// Hidden-state dimension the classifier reads (the *readout*). It starts
/// at zero in the embedding and accumulates relevance evidence across
/// layers, so scores begin homogeneous and progressively diverge —
/// Fig. 2a's shape.
pub const SIGNAL_DIM: usize = 0;

/// Hidden-state dimension holding the raw token signal (the *source*
/// reservoir). Planted at embedding time and kept stable across layers;
/// attention averaging over it denoises token noise toward the
/// candidate's mean relevance, and the value/output projections feed it
/// into the readout with a per-layer gain. The source never feeds itself,
/// so the dynamics are convergent rather than explosive.
pub const SOURCE_DIM: usize = 1;

/// Fraction of the vocabulary that is strongly on-topic (signal `+1`).
pub const TOPIC_FRACTION: f64 = 0.10;

/// Fraction of the vocabulary that is strongly off-topic (signal `-1`).
pub const ANTI_TOPIC_FRACTION: f64 = 0.10;

/// Scale applied to the signal when planted into the source dimension of
/// embedding rows.
pub const EMBED_SIGNAL_SCALE: f32 = 0.10;

/// Per-layer gain of the source→readout path planted into the attention
/// value/output projections (`Wo[SIGNAL_DIM][SOURCE_DIM] · Wv[SOURCE_DIM][SOURCE_DIM]`).
pub const LAYER_SIGNAL_GAIN: f32 = 1.0;

/// Magnitude of the per-token hash noise planted into the readout
/// dimension of embedding rows. This is what makes stabilization
/// *progressive* (coarse-to-fine): initial rankings are noise-dominated,
/// and a candidate pair stays in flux until the accumulated relevance
/// signal exceeds its noise gap — wide-gap pairs resolve in early layers,
/// fine-gap pairs only deep in the stack (Fig. 2a).
pub const EMBED_READOUT_NOISE: f32 = 0.02;

/// Scale of the FFN's random contribution to the readout dimension —
/// the per-layer "flux" that keeps close candidates reordering. It decays
/// with the residual α, so rankings progressively stabilize; raising it
/// pushes stabilization deeper into the stack.
pub const READOUT_DRIFT_SCALE: f32 = 1.5;

/// Deterministic per-token readout noise in `[-EMBED_READOUT_NOISE,
/// EMBED_READOUT_NOISE]`.
pub fn token_readout_noise(token: u32) -> f32 {
    let mut x = u64::from(token).wrapping_mul(0xD134_2543_DE82_EF95);
    x ^= x >> 29;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 32;
    let unit = (x >> 11) as f64 / (1_u64 << 53) as f64;
    ((unit * 2.0 - 1.0) as f32) * EMBED_READOUT_NOISE
}

/// Deterministic token signal in `[-1, 1]`.
///
/// Ids in the first [`TOPIC_FRACTION`] of the vocabulary are fully
/// on-topic, the next [`ANTI_TOPIC_FRACTION`] fully off-topic, and the rest
/// carry a small hash-derived residual signal so "background" text is noisy
/// rather than neutral.
pub fn token_signal(token: u32, vocab_size: usize) -> f32 {
    let v = vocab_size.max(1) as u64;
    let t = u64::from(token) % v;
    let topic_end = (v as f64 * TOPIC_FRACTION) as u64;
    let anti_end = topic_end + (v as f64 * ANTI_TOPIC_FRACTION) as u64;
    if t < topic_end.max(1) {
        1.0
    } else if t < anti_end {
        -1.0
    } else {
        // splitmix64-style hash -> [-0.3, 0.3].
        let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        let unit = (x >> 11) as f64 / (1_u64 << 53) as f64; // [0, 1)
        ((unit * 2.0 - 1.0) * 0.3) as f32
    }
}

/// First token id that is on-topic (always 0) and one-past-the-last.
pub fn topic_token_range(vocab_size: usize) -> (u32, u32) {
    let v = vocab_size.max(1) as f64;
    (0, (v * TOPIC_FRACTION).max(1.0) as u32)
}

/// Range of off-topic token ids.
pub fn anti_topic_token_range(vocab_size: usize) -> (u32, u32) {
    let (_, topic_end) = topic_token_range(vocab_size);
    let v = vocab_size.max(1) as f64;
    (topic_end, topic_end + (v * ANTI_TOPIC_FRACTION) as u32)
}

/// Range of background token ids (hash-signal residual).
pub fn background_token_range(vocab_size: usize) -> (u32, u32) {
    let (_, anti_end) = anti_topic_token_range(vocab_size);
    (anti_end, vocab_size as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_consistent() {
        let v = 1000;
        let (t0, t1) = topic_token_range(v);
        let (a0, a1) = anti_topic_token_range(v);
        let (b0, b1) = background_token_range(v);
        assert_eq!(t0, 0);
        assert_eq!(t1, a0);
        assert_eq!(a1, b0);
        assert_eq!(b1, v as u32);
        assert_eq!(t1, 100);
        assert_eq!(a1, 200);
    }

    #[test]
    fn signals_match_bands() {
        let v = 1000;
        assert_eq!(token_signal(5, v), 1.0);
        assert_eq!(token_signal(99, v), 1.0);
        assert_eq!(token_signal(150, v), -1.0);
        let bg = token_signal(500, v);
        assert!(bg.abs() <= 0.3);
    }

    #[test]
    fn signal_is_deterministic() {
        for t in [0_u32, 17, 250, 999] {
            assert_eq!(token_signal(t, 1000), token_signal(t, 1000));
        }
    }

    #[test]
    fn background_signal_averages_near_zero() {
        let v = 4096;
        let (b0, b1) = background_token_range(v);
        let mean: f32 = (b0..b1).map(|t| token_signal(t, v)).sum::<f32>() / (b1 - b0) as f32;
        assert!(mean.abs() < 0.02, "background mean {mean}");
    }

    #[test]
    fn tiny_vocab_does_not_panic() {
        assert_eq!(token_signal(0, 1), 1.0);
        let (t0, t1) = topic_token_range(1);
        assert!(t1 > t0);
    }
}
