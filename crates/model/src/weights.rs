//! Weight containers, deterministic generation and (de)serialization.
//!
//! Weight matrices are stored output-major (`[out, in]`) and applied as
//! `y = x · Wᵀ`, matching checkpoint conventions. A [`MatRef`] is either a
//! dense `f32` tensor or a 4-bit [`QuantMatrix`], so one forward path
//! serves both the full-precision and the W4A16 models.

use prism_tensor::igemm::Int8Matrix;
use prism_tensor::{ops, QuantMatrix, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::semantics::{
    EMBED_SIGNAL_SCALE, LAYER_SIGNAL_GAIN, READOUT_DRIFT_SCALE, SIGNAL_DIM, SOURCE_DIM,
};
use crate::{Error, ModelConfig, Result};

/// Dense or quantized weight matrix, output-major.
#[derive(Debug, Clone, PartialEq)]
pub enum MatRef {
    /// Full-precision matrix `[out, in]`.
    Dense(Tensor),
    /// 4-bit block-quantized matrix `[out, in]`.
    Quant(QuantMatrix),
}

impl MatRef {
    /// Applies the matrix: `x · Wᵀ` for `x: [n, in] -> [n, out]`.
    pub fn apply(&self, x: &Tensor) -> Result<Tensor> {
        match self {
            MatRef::Dense(w) => Ok(ops::matmul_transb(x, w)?),
            MatRef::Quant(q) => Ok(q.matmul_transb(x)?),
        }
    }

    /// Applies the matrix into a caller-owned output tensor, reusing its
    /// allocation (the zero-allocation path [`crate::layer::forward_layer_with`]
    /// runs on). Quantized matrices take the fused nibble-decode kernel.
    pub fn apply_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        match self {
            MatRef::Dense(w) => Ok(ops::matmul_transb_into(x, w, out)?),
            MatRef::Quant(q) => Ok(q.matmul_transb_into(x, out)?),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            MatRef::Dense(w) => w.rows(),
            MatRef::Quant(q) => q.rows(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        match self {
            MatRef::Dense(w) => w.cols(),
            MatRef::Quant(q) => q.cols(),
        }
    }

    /// Resident bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            MatRef::Dense(w) => w.size_bytes(),
            MatRef::Quant(q) => q.size_bytes(),
        }
    }

    /// Quantizes a dense matrix (no-op if already quantized).
    pub fn quantized(&self) -> Result<MatRef> {
        match self {
            MatRef::Dense(w) => Ok(MatRef::Quant(QuantMatrix::quantize(w)?)),
            MatRef::Quant(q) => Ok(MatRef::Quant(q.clone())),
        }
    }

    /// Re-quantizes to the per-row symmetric i8 form the integer GEMM
    /// path consumes (4-bit matrices go through their dequantized
    /// values, so the int8 codes calibrate to what the f32 path would
    /// actually have multiplied).
    pub fn to_int8(&self) -> Result<Int8Matrix> {
        match self {
            MatRef::Dense(w) => Ok(Int8Matrix::quantize(w)?),
            MatRef::Quant(q) => Ok(Int8Matrix::from_quant(q)?),
        }
    }
}

/// One transformer layer's weights (pre-norm attention + gated FFN).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Pre-attention norm gain (`[D]`).
    pub norm1_gain: Vec<f32>,
    /// Pre-attention norm bias (`[D]`, zeros for RMSNorm models).
    pub norm1_bias: Vec<f32>,
    /// Query projection `[D, D]`.
    pub wq: MatRef,
    /// Key projection `[D, D]`.
    pub wk: MatRef,
    /// Value projection `[D, D]`.
    pub wv: MatRef,
    /// Output projection `[D, D]`.
    pub wo: MatRef,
    /// Pre-FFN norm gain (`[D]`).
    pub norm2_gain: Vec<f32>,
    /// Pre-FFN norm bias (`[D]`).
    pub norm2_bias: Vec<f32>,
    /// FFN gate projection `[F, D]`.
    pub w_gate: MatRef,
    /// FFN up projection `[F, D]`.
    pub w_up: MatRef,
    /// FFN down projection `[D, F]`.
    pub w_down: MatRef,
}

fn uniform_tensor(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push((rng.gen::<f32>() * 2.0 - 1.0) * scale);
    }
    Tensor::from_vec(rows, cols, data).expect("sized to shape")
}

impl LayerWeights {
    /// Deterministically generates a dense layer with the planted signal
    /// gain (see [`crate::semantics`]).
    pub fn generate(config: &ModelConfig, layer_idx: usize, seed: u64) -> Self {
        let d = config.hidden_dim;
        let f = config.ffn_dim;
        let mut rng = StdRng::seed_from_u64(
            seed ^ (layer_idx as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
        );
        let proj_scale = 0.8 / (d as f32).sqrt();
        let mut wv = uniform_tensor(&mut rng, d, d, proj_scale * 0.5);
        let mut wo = uniform_tensor(&mut rng, d, d, proj_scale * 0.5);
        // Plant the source→readout path. Attention averages the value
        // vectors, denoising per-token signals toward the candidate's mean
        // relevance; the output projection deposits that average into the
        // readout dimension with a per-layer gain. Crucially, neither the
        // source nor the readout feeds itself, so the readout accumulates
        // a convergent sum (the residual α decays per layer) instead of a
        // runaway feedback loop.
        let gain_jitter = 1.0 + (rng.gen::<f32>() - 0.5) * 0.2;
        *wv.at_mut(SOURCE_DIM, SOURCE_DIM) = 1.0;
        *wo.at_mut(SIGNAL_DIM, SOURCE_DIM) = LAYER_SIGNAL_GAIN * gain_jitter;
        *wo.at_mut(SIGNAL_DIM, SIGNAL_DIM) = 0.0;
        // The attention block never writes the source dimension: it is a
        // stable reservoir.
        for c in 0..d {
            *wo.at_mut(SOURCE_DIM, c) = 0.0;
        }
        LayerWeights {
            norm1_gain: vec![1.0; d],
            norm1_bias: vec![0.0; d],
            wq: MatRef::Dense(uniform_tensor(&mut rng, d, d, proj_scale)),
            wk: MatRef::Dense(uniform_tensor(&mut rng, d, d, proj_scale)),
            wv: MatRef::Dense(wv),
            wo: MatRef::Dense(wo),
            norm2_gain: vec![1.0; d],
            norm2_bias: vec![0.0; d],
            w_gate: MatRef::Dense(uniform_tensor(&mut rng, f, d, proj_scale)),
            w_up: MatRef::Dense(uniform_tensor(&mut rng, f, d, proj_scale)),
            w_down: MatRef::Dense({
                let mut w_down = uniform_tensor(&mut rng, d, f, 0.4 / (f as f32).sqrt());
                // The FFN adds decaying drift to the readout (the "flux"
                // that keeps close candidates swapping in early layers)
                // but must not erode the source reservoir.
                for c in 0..f {
                    *w_down.at_mut(SIGNAL_DIM, c) *= READOUT_DRIFT_SCALE;
                    *w_down.at_mut(SOURCE_DIM, c) = 0.0;
                }
                w_down
            }),
        }
    }

    /// Resident bytes of all tensors in the layer.
    pub fn size_bytes(&self) -> usize {
        (self.norm1_gain.len()
            + self.norm1_bias.len()
            + self.norm2_gain.len()
            + self.norm2_bias.len())
            * 4
            + self.wq.size_bytes()
            + self.wk.size_bytes()
            + self.wv.size_bytes()
            + self.wo.size_bytes()
            + self.w_gate.size_bytes()
            + self.w_up.size_bytes()
            + self.w_down.size_bytes()
    }

    /// Quantizes every matrix to 4-bit (norms stay `f32`).
    pub fn quantize(&self) -> Result<LayerWeights> {
        Ok(LayerWeights {
            norm1_gain: self.norm1_gain.clone(),
            norm1_bias: self.norm1_bias.clone(),
            wq: self.wq.quantized()?,
            wk: self.wk.quantized()?,
            wv: self.wv.quantized()?,
            wo: self.wo.quantized()?,
            norm2_gain: self.norm2_gain.clone(),
            norm2_bias: self.norm2_bias.clone(),
            w_gate: self.w_gate.quantized()?,
            w_up: self.w_up.quantized()?,
            w_down: self.w_down.quantized()?,
        })
    }

    /// Serializes into the on-disk layer blob (dense or q4 depending on the
    /// matrices held).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() + 64);
        push_f32s(&mut out, &self.norm1_gain);
        push_f32s(&mut out, &self.norm1_bias);
        push_f32s(&mut out, &self.norm2_gain);
        push_f32s(&mut out, &self.norm2_bias);
        for m in [
            &self.wq,
            &self.wk,
            &self.wv,
            &self.wo,
            &self.w_gate,
            &self.w_up,
            &self.w_down,
        ] {
            match m {
                MatRef::Dense(t) => {
                    out.push(0);
                    let blob_len = t.len() * 4;
                    out.extend_from_slice(&(blob_len as u32).to_le_bytes());
                    push_f32s(&mut out, t.data());
                }
                MatRef::Quant(q) => {
                    out.push(1);
                    let blob = q.to_bytes();
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(&blob);
                }
            }
        }
        out
    }

    /// Deserializes a blob written by [`LayerWeights::to_bytes`].
    pub fn from_bytes(config: &ModelConfig, bytes: &[u8]) -> Result<Self> {
        let d = config.hidden_dim;
        let f = config.ffn_dim;
        let mut cur = Cursor { bytes, off: 0 };
        let norm1_gain = cur.take_f32s(d)?;
        let norm1_bias = cur.take_f32s(d)?;
        let norm2_gain = cur.take_f32s(d)?;
        let norm2_bias = cur.take_f32s(d)?;
        let shapes = [(d, d), (d, d), (d, d), (d, d), (f, d), (f, d), (d, f)];
        let mut mats = Vec::with_capacity(7);
        for (rows, cols) in shapes {
            mats.push(cur.take_mat(rows, cols)?);
        }
        if cur.off != bytes.len() {
            return Err(Error::Config(format!(
                "layer blob has {} trailing bytes",
                bytes.len() - cur.off
            )));
        }
        let mut it = mats.into_iter();
        Ok(LayerWeights {
            norm1_gain,
            norm1_bias,
            wq: it.next().expect("7 matrices"),
            wk: it.next().expect("7 matrices"),
            wv: it.next().expect("7 matrices"),
            wo: it.next().expect("7 matrices"),
            norm2_gain,
            norm2_bias,
            w_gate: it.next().expect("7 matrices"),
            w_up: it.next().expect("7 matrices"),
            w_down: it.next().expect("7 matrices"),
        })
    }
}

/// One layer's weights re-quantized for the integer compute path: every
/// projection as a per-row symmetric [`Int8Matrix`], norms kept `f32`.
///
/// Derived at runtime from a [`LayerWeights`] (dense or W4) — never
/// serialized, because the i8 codes are a calibration artifact of
/// whatever weights are already on disk. The engine builds these once
/// per layer (cached for resident models, per-acquisition for streamed
/// ones) when a request opts into `Int8` compute.
#[derive(Debug, Clone)]
pub struct Int8LayerWeights {
    /// Pre-attention norm gain (`[D]`).
    pub norm1_gain: Vec<f32>,
    /// Pre-attention norm bias (`[D]`).
    pub norm1_bias: Vec<f32>,
    /// Query projection `[D, D]`.
    pub wq: Int8Matrix,
    /// Key projection `[D, D]`.
    pub wk: Int8Matrix,
    /// Value projection `[D, D]`.
    pub wv: Int8Matrix,
    /// Output projection `[D, D]`.
    pub wo: Int8Matrix,
    /// Pre-FFN norm gain (`[D]`).
    pub norm2_gain: Vec<f32>,
    /// Pre-FFN norm bias (`[D]`).
    pub norm2_bias: Vec<f32>,
    /// FFN gate projection `[F, D]`.
    pub w_gate: Int8Matrix,
    /// FFN up projection `[F, D]`.
    pub w_up: Int8Matrix,
    /// FFN down projection `[D, F]`.
    pub w_down: Int8Matrix,
}

impl Int8LayerWeights {
    /// Re-quantizes every projection of `layer` to per-row i8.
    pub fn from_layer(layer: &LayerWeights) -> Result<Self> {
        Ok(Int8LayerWeights {
            norm1_gain: layer.norm1_gain.clone(),
            norm1_bias: layer.norm1_bias.clone(),
            wq: layer.wq.to_int8()?,
            wk: layer.wk.to_int8()?,
            wv: layer.wv.to_int8()?,
            wo: layer.wo.to_int8()?,
            norm2_gain: layer.norm2_gain.clone(),
            norm2_bias: layer.norm2_bias.clone(),
            w_gate: layer.w_gate.to_int8()?,
            w_up: layer.w_up.to_int8()?,
            w_down: layer.w_down.to_int8()?,
        })
    }

    /// Resident bytes of the i8 codes plus per-row metadata and norms.
    pub fn size_bytes(&self) -> usize {
        (self.norm1_gain.len()
            + self.norm1_bias.len()
            + self.norm2_gain.len()
            + self.norm2_bias.len())
            * 4
            + self.wq.size_bytes()
            + self.wk.size_bytes()
            + self.wv.size_bytes()
            + self.wo.size_bytes()
            + self.w_gate.size_bytes()
            + self.w_up.size_bytes()
            + self.w_down.size_bytes()
    }
}

/// Classifier head: final norm plus a scalar projection.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadWeights {
    /// Final norm gain (`[D]`).
    pub norm_gain: Vec<f32>,
    /// Final norm bias (`[D]`).
    pub norm_bias: Vec<f32>,
    /// Projection vector (`[D]`).
    pub w: Vec<f32>,
    /// Scalar bias.
    pub bias: f32,
}

impl HeadWeights {
    /// Generates the planted classifier: it reads the signal dimension.
    pub fn generate(config: &ModelConfig, seed: u64) -> Self {
        let d = config.hidden_dim;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF);
        let mut w = vec![0.0_f32; d];
        for (i, x) in w.iter_mut().enumerate() {
            *x = if i == SIGNAL_DIM {
                1.0
            } else {
                (rng.gen::<f32>() * 2.0 - 1.0) * 0.02
            };
        }
        HeadWeights {
            norm_gain: vec![1.0; d],
            norm_bias: vec![0.0; d],
            w,
            bias: 0.0,
        }
    }

    /// Resident bytes.
    pub fn size_bytes(&self) -> usize {
        (self.norm_gain.len() + self.norm_bias.len() + self.w.len() + 1) * 4
    }

    /// Serializes the head blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_f32s(&mut out, &self.norm_gain);
        push_f32s(&mut out, &self.norm_bias);
        push_f32s(&mut out, &self.w);
        out.extend_from_slice(&self.bias.to_le_bytes());
        out
    }

    /// Deserializes a blob written by [`HeadWeights::to_bytes`].
    pub fn from_bytes(config: &ModelConfig, bytes: &[u8]) -> Result<Self> {
        let d = config.hidden_dim;
        let mut cur = Cursor { bytes, off: 0 };
        let norm_gain = cur.take_f32s(d)?;
        let norm_bias = cur.take_f32s(d)?;
        let w = cur.take_f32s(d)?;
        let bias = cur.take_f32s(1)?[0];
        if cur.off != bytes.len() {
            return Err(Error::Config("head blob has trailing bytes".into()));
        }
        Ok(HeadWeights {
            norm_gain,
            norm_bias,
            w,
            bias,
        })
    }
}

/// A full model's weights, resident in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// Embedding table `[vocab, D]` with the planted signal in
    /// `SIGNAL_DIM`.
    pub embedding: Tensor,
    /// Transformer layers, bottom to top.
    pub layers: Vec<LayerWeights>,
    /// Classifier head.
    pub head: HeadWeights,
}

impl ModelWeights {
    /// Deterministically generates a complete model.
    pub fn generate(config: &ModelConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let d = config.hidden_dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut embedding = uniform_tensor(&mut rng, config.vocab_size, d, 0.3);
        for t in 0..config.vocab_size {
            let signal = crate::semantics::token_signal(t as u32, config.vocab_size);
            *embedding.at_mut(t, SOURCE_DIM) = signal * EMBED_SIGNAL_SCALE;
            // The readout starts as small per-token noise: early rankings
            // are noise-dominated and progressively yield to accumulated
            // relevance evidence (coarse-to-fine, Fig. 2a).
            *embedding.at_mut(t, SIGNAL_DIM) = crate::semantics::token_readout_noise(t as u32);
        }
        let layers = (0..config.num_layers)
            .map(|l| LayerWeights::generate(config, l, seed))
            .collect();
        Ok(ModelWeights {
            embedding,
            layers,
            head: HeadWeights::generate(config, seed),
        })
    }

    /// Quantizes all layer matrices to 4-bit (embedding and head stay
    /// dense, as in W4A16 checkpoints).
    pub fn quantize(&self) -> Result<ModelWeights> {
        Ok(ModelWeights {
            embedding: self.embedding.clone(),
            layers: self
                .layers
                .iter()
                .map(LayerWeights::quantize)
                .collect::<Result<_>>()?,
            head: self.head.clone(),
        })
    }

    /// Total resident bytes.
    pub fn size_bytes(&self) -> usize {
        self.embedding.size_bytes()
            + self
                .layers
                .iter()
                .map(LayerWeights::size_bytes)
                .sum::<usize>()
            + self.head.size_bytes()
    }
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl Cursor<'_> {
    fn take_f32s(&mut self, n: usize) -> Result<Vec<f32>> {
        let need = n * 4;
        if self.off + need > self.bytes.len() {
            return Err(Error::Config("blob truncated".into()));
        }
        let mut out = Vec::with_capacity(n);
        for chunk in self.bytes[self.off..self.off + need].chunks_exact(4) {
            out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        self.off += need;
        Ok(out)
    }

    fn take_mat(&mut self, rows: usize, cols: usize) -> Result<MatRef> {
        if self.off + 5 > self.bytes.len() {
            return Err(Error::Config("blob truncated at matrix header".into()));
        }
        let tag = self.bytes[self.off];
        let len = u32::from_le_bytes(
            self.bytes[self.off + 1..self.off + 5]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        self.off += 5;
        if self.off + len > self.bytes.len() {
            return Err(Error::Config("blob truncated in matrix payload".into()));
        }
        let payload = &self.bytes[self.off..self.off + len];
        self.off += len;
        match tag {
            0 => {
                if len != rows * cols * 4 {
                    return Err(Error::Config(format!(
                        "dense matrix payload {len} != {rows}x{cols}x4"
                    )));
                }
                let mut data = Vec::with_capacity(rows * cols);
                for chunk in payload.chunks_exact(4) {
                    data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
                }
                Ok(MatRef::Dense(Tensor::from_vec(rows, cols, data)?))
            }
            1 => {
                let q = QuantMatrix::from_bytes(payload)?;
                if q.rows() != rows || q.cols() != cols {
                    return Err(Error::Config("quant matrix shape mismatch".into()));
                }
                Ok(MatRef::Quant(q))
            }
            other => Err(Error::Config(format!("unknown matrix tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelArch;

    fn cfg() -> ModelConfig {
        ModelConfig::test_config(ModelArch::DecoderOnly, 3)
    }

    #[test]
    fn generation_is_deterministic() {
        let c = cfg();
        let a = ModelWeights::generate(&c, 42).unwrap();
        let b = ModelWeights::generate(&c, 42).unwrap();
        assert_eq!(a, b);
        let c2 = ModelWeights::generate(&c, 43).unwrap();
        assert_ne!(a, c2);
    }

    #[test]
    fn planted_signal_in_embedding() {
        let c = cfg();
        let w = ModelWeights::generate(&c, 1).unwrap();
        // Topic tokens carry +scale, anti-topic -scale in the source dim;
        // the readout dim starts at zero.
        let (t0, t1) = crate::semantics::topic_token_range(c.vocab_size);
        let (a0, _) = crate::semantics::anti_topic_token_range(c.vocab_size);
        assert!((w.embedding.at(t0 as usize, SOURCE_DIM) - EMBED_SIGNAL_SCALE).abs() < 1e-6);
        assert!((w.embedding.at((t1 - 1) as usize, SOURCE_DIM) - EMBED_SIGNAL_SCALE).abs() < 1e-6);
        assert!((w.embedding.at(a0 as usize, SOURCE_DIM) + EMBED_SIGNAL_SCALE).abs() < 1e-6);
        // The readout dim carries only small planted noise.
        assert!(
            w.embedding.at(t0 as usize, SIGNAL_DIM).abs() <= crate::semantics::EMBED_READOUT_NOISE
        );
    }

    #[test]
    fn planted_gain_in_value_path() {
        let c = cfg();
        let w = LayerWeights::generate(&c, 0, 9);
        let (MatRef::Dense(wv), MatRef::Dense(wo)) = (&w.wv, &w.wo) else {
            panic!("generated weights are dense")
        };
        assert!((wv.at(SOURCE_DIM, SOURCE_DIM) - 1.0).abs() < 1e-6);
        assert!(wo.at(SIGNAL_DIM, SOURCE_DIM) > 0.5, "source feeds readout");
        assert_eq!(
            wo.at(SIGNAL_DIM, SIGNAL_DIM),
            0.0,
            "no readout self-feedback"
        );
        // Nothing writes the source reservoir through attention.
        for cidx in 0..c.hidden_dim {
            assert_eq!(wo.at(SOURCE_DIM, cidx), 0.0);
        }
    }

    #[test]
    fn layer_blob_round_trip_dense() {
        let c = cfg();
        let w = LayerWeights::generate(&c, 1, 7);
        let bytes = w.to_bytes();
        let back = LayerWeights::from_bytes(&c, &bytes).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn layer_blob_round_trip_quant() {
        let c = cfg();
        let w = LayerWeights::generate(&c, 1, 7).quantize().unwrap();
        let bytes = w.to_bytes();
        let back = LayerWeights::from_bytes(&c, &bytes).unwrap();
        assert_eq!(w, back);
        // Quantized blob is much smaller than dense.
        let dense_bytes = LayerWeights::generate(&c, 1, 7).to_bytes();
        assert!(bytes.len() * 2 < dense_bytes.len());
    }

    #[test]
    fn truncated_blob_rejected() {
        let c = cfg();
        let bytes = LayerWeights::generate(&c, 0, 3).to_bytes();
        assert!(LayerWeights::from_bytes(&c, &bytes[..bytes.len() - 3]).is_err());
        assert!(LayerWeights::from_bytes(&c, &bytes[..10]).is_err());
        // Trailing garbage also rejected.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert!(LayerWeights::from_bytes(&c, &long).is_err());
    }

    #[test]
    fn head_round_trip_and_planted_reader() {
        let c = cfg();
        let h = HeadWeights::generate(&c, 5);
        assert!((h.w[SIGNAL_DIM] - 1.0).abs() < 1e-6);
        assert!(h.w.iter().skip(1).all(|&x| x.abs() < 0.05));
        let back = HeadWeights::from_bytes(&c, &h.to_bytes()).unwrap();
        assert_eq!(h, back);
        assert!(HeadWeights::from_bytes(&c, &h.to_bytes()[..7]).is_err());
    }

    #[test]
    fn matref_apply_matches_dense_math() {
        let w = Tensor::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.1).sin());
        let x = Tensor::from_fn(3, 6, |r, c| ((r + c) as f32 * 0.2).cos());
        let dense = MatRef::Dense(w.clone());
        let quant = dense.quantized().unwrap();
        let yd = dense.apply(&x).unwrap();
        let yq = quant.apply(&x).unwrap();
        assert_eq!(yd.shape(), (3, 4));
        assert_eq!(dense.out_dim(), 4);
        assert_eq!(dense.in_dim(), 6);
        assert_eq!(quant.out_dim(), 4);
        // Quantized result close to dense.
        assert!(yd.max_abs_diff(&yq).unwrap() < 0.2);
    }

    #[test]
    fn size_bytes_accounts_everything() {
        let c = cfg();
        let w = ModelWeights::generate(&c, 2).unwrap();
        let expected_emb = c.vocab_size * c.hidden_dim * 4;
        assert!(w.size_bytes() > expected_emb);
        let q = w.quantize().unwrap();
        assert!(q.size_bytes() < w.size_bytes());
        // Embedding unchanged by quantization.
        assert_eq!(q.embedding, w.embedding);
    }
}
