//! Proves the scratch-based forward path performs zero heap allocations
//! in steady state.
//!
//! A counting global allocator wraps the system allocator for this test
//! binary only; after one warm-up call sizes every scratch buffer, further
//! `forward_layer_with` calls must not touch the allocator at all — no
//! matter the architecture, dense or quantized weights.
//!
//! The count is **per thread**: libtest runs tests on parallel threads
//! and the harness itself allocates (result reporting), so a process-
//! global counter would flakily attribute foreign allocations to a
//! test's measuring window. Each test only ever reads its own thread's
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use prism_model::layer::{forward_layer_with, ForwardScratch};
use prism_model::{LayerWeights, ModelArch, ModelConfig};
use prism_tensor::Tensor;

struct CountingAllocator;

std::thread_local! {
    // Const-initialized and destructor-free, so counting from inside the
    // allocator can neither allocate nor recurse.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

// SAFETY: delegates every operation to `System`, only counting calls.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn steady_state_alloc_count(arch: ModelArch, quantized: bool) -> u64 {
    let config = ModelConfig::test_config(arch, 2);
    let mut weights = LayerWeights::generate(&config, 0, 11);
    if quantized {
        weights = weights.quantize().unwrap();
    }
    let hidden0 = Tensor::from_fn(12, config.hidden_dim, |r, c| {
        ((r * 7 + c * 3) as f32 * 0.13).sin() * 0.5
    });
    let ranges = [(0_usize, 5_usize), (5, 12)];
    let mut scratch = ForwardScratch::new(&config, hidden0.rows());
    let mut hidden = hidden0.clone();
    // Warm-up: dresses every scratch buffer to its steady-state shape.
    forward_layer_with(&config, &weights, 0, &mut hidden, &ranges, &mut scratch).unwrap();

    let before = thread_allocations();
    for layer_idx in 0..4 {
        hidden.data_mut().copy_from_slice(hidden0.data());
        forward_layer_with(
            &config,
            &weights,
            layer_idx,
            &mut hidden,
            &ranges,
            &mut scratch,
        )
        .unwrap();
    }
    thread_allocations() - before
}

#[test]
fn forward_layer_steady_state_is_allocation_free() {
    for arch in [ModelArch::DecoderOnly, ModelArch::EncoderOnly] {
        for quantized in [false, true] {
            let allocs = steady_state_alloc_count(arch, quantized);
            assert_eq!(
                allocs, 0,
                "{arch:?} (quantized: {quantized}): forward_layer_with allocated \
                 {allocs} times in steady state"
            );
        }
    }
}

#[test]
fn scratch_grows_only_beyond_capacity() {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 2);
    let weights = LayerWeights::generate(&config, 0, 11);
    let mut scratch = ForwardScratch::new(&config, 32);
    // A smaller batch than capacity must not allocate after warm-up.
    let base = Tensor::from_fn(8, config.hidden_dim, |r, c| ((r + c) as f32 * 0.1).cos());
    let mut hidden = base.clone();
    forward_layer_with(&config, &weights, 0, &mut hidden, &[(0, 8)], &mut scratch).unwrap();
    let before = thread_allocations();
    let mut hidden = base.clone();
    let after_clone = thread_allocations();
    forward_layer_with(&config, &weights, 0, &mut hidden, &[(0, 8)], &mut scratch).unwrap();
    assert_eq!(
        thread_allocations() - after_clone,
        0,
        "smaller-than-capacity forward must reuse the scratch"
    );
    assert!(after_clone > before, "the clone itself allocates (sanity)");
}
