//! Property-based tests for 1-D K-Means and dispersion statistics.

use prism_cluster::{coefficient_of_variation, kmeans_1d, kmeans_auto};
use proptest::prelude::*;

fn values_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0_f32..10.0, 1..48)
}

proptest! {
    /// Every point is assigned to its nearest centroid (Lloyd fixpoint).
    #[test]
    fn assignments_are_nearest_centroid(values in values_strategy(), k in 1_usize..6) {
        let c = kmeans_1d(&values, k, 42);
        for (i, &v) in values.iter().enumerate() {
            let assigned = c.centroids[c.assignments[i]];
            let d_assigned = (v - assigned).abs();
            for &cen in &c.centroids {
                prop_assert!(
                    d_assigned <= (v - cen).abs() + 1e-4,
                    "point {v} assigned to {assigned} but {cen} is closer"
                );
            }
        }
    }

    /// Inertia equals the sum of squared distances to assigned centroids.
    #[test]
    fn inertia_is_consistent(values in values_strategy(), k in 1_usize..6) {
        let c = kmeans_1d(&values, k, 3);
        let expect: f32 = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let d = v - c.centroids[c.assignments[i]];
                d * d
            })
            .sum();
        prop_assert!((c.inertia - expect).abs() <= expect.abs() * 1e-3 + 1e-4);
    }

    /// kmeans_auto returns a valid clustering whose k never exceeds the cap.
    #[test]
    fn auto_k_is_bounded(values in values_strategy(), max_k in 2_usize..7) {
        let c = kmeans_auto(&values, max_k, 1);
        prop_assert!(c.k() <= max_k.max(1));
        prop_assert_eq!(c.assignments.len(), values.len());
        for &a in &c.assignments {
            prop_assert!(a < c.k().max(1));
        }
    }

    /// CV is non-negative, finite, and scale-invariant.
    #[test]
    fn cv_properties(values in prop::collection::vec(0.05_f32..10.0, 2..32), scale in 0.5_f32..20.0) {
        let cv = coefficient_of_variation(&values);
        prop_assert!(cv.is_finite() && cv >= 0.0);
        let scaled: Vec<f32> = values.iter().map(|v| v * scale).collect();
        let cv2 = coefficient_of_variation(&scaled);
        prop_assert!((cv - cv2).abs() < 0.05 * cv.max(0.01), "cv {cv} vs scaled {cv2}");
    }

    /// Cluster means lie within the range of their members' values.
    #[test]
    fn cluster_means_within_member_range(values in values_strategy(), k in 1_usize..5) {
        let c = kmeans_1d(&values, k, 9);
        for cluster in 0..c.k() {
            let members = c.members(cluster);
            if members.is_empty() {
                continue;
            }
            let lo = members.iter().map(|&i| values[i]).fold(f32::INFINITY, f32::min);
            let hi = members.iter().map(|&i| values[i]).fold(f32::NEG_INFINITY, f32::max);
            let mean = c.cluster_mean(&values, cluster);
            prop_assert!(mean >= lo - 1e-4 && mean <= hi + 1e-4);
        }
    }
}
