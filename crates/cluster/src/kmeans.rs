//! 1-D K-Means with k-means++ seeding and silhouette-based model selection.
//!
//! Scores at a layer boundary are a handful of scalars (tens of candidates),
//! so exact Lloyd iterations converge in a few steps. [`kmeans_1d`] clusters
//! for a fixed `k`; [`kmeans_auto`] scans `k = 2..=max_k` and keeps the best
//! mean silhouette, which is how the engine finds "statistically distinct
//! clusters" without a tuned `k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of clustering scalar values.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster id per input value (`0..k`).
    pub assignments: Vec<usize>,
    /// Cluster centroids, ascending order not guaranteed.
    pub centroids: Vec<f32>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f32,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Members of cluster `c` (input indices).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Mean of the input values assigned to cluster `c`.
    pub fn cluster_mean(&self, values: &[f32], c: usize) -> f32 {
        let mut sum = 0.0;
        let mut n = 0_usize;
        for (i, &a) in self.assignments.iter().enumerate() {
            if a == c {
                sum += values[i];
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f32
        }
    }

    /// Mean silhouette coefficient over all points, in `[-1, 1]`.
    ///
    /// Exploits the 1-D setting: distances are absolute differences.
    /// Returns `0.0` when any cluster is empty or `k < 2`.
    pub fn silhouette(&self, values: &[f32]) -> f32 {
        let k = self.k();
        if k < 2 || values.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for (i, &v) in values.iter().enumerate() {
            let own = self.assignments[i];
            // Mean intra-cluster distance (excluding self).
            let mut a_sum = 0.0;
            let mut a_n = 0_usize;
            let mut b_best = f32::INFINITY;
            for c in 0..k {
                let mut sum = 0.0;
                let mut n = 0_usize;
                for (j, &w) in values.iter().enumerate() {
                    if self.assignments[j] == c && j != i {
                        sum += (v - w).abs();
                        n += 1;
                    }
                }
                if c == own {
                    a_sum = sum;
                    a_n = n;
                } else if n > 0 {
                    b_best = b_best.min(sum / n as f32);
                }
            }
            if a_n == 0 || !b_best.is_finite() {
                continue; // Singleton cluster contributes 0.
            }
            let a = a_sum / a_n as f32;
            let denom = a.max(b_best);
            if denom > 0.0 {
                total += (b_best - a) / denom;
            }
        }
        total / values.len() as f32
    }
}

/// Runs Lloyd's algorithm on scalars with k-means++ seeding.
///
/// `k` is clamped to `values.len()`; an empty input yields an empty
/// clustering. Deterministic for a given `seed`.
///
/// # Examples
///
/// ```
/// use prism_cluster::kmeans_1d;
/// let scores = [0.9, 0.88, 0.1, 0.12];
/// let c = kmeans_1d(&scores, 2, 7);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
pub fn kmeans_1d(values: &[f32], k: usize, seed: u64) -> Clustering {
    let n = values.len();
    if n == 0 || k == 0 {
        return Clustering {
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Vec::with_capacity(k);
    centroids.push(values[rng.gen_range(0..n)]);
    let mut dist2 = vec![0.0_f32; n];
    while centroids.len() < k {
        let mut total = 0.0_f32;
        for (i, &v) in values.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|&c| (v - c) * (v - c))
                .fold(f32::INFINITY, f32::min);
            dist2[i] = d;
            total += d;
        }
        if total <= f32::EPSILON {
            // All remaining points coincide with existing centroids; pad by
            // duplicating (clusters may end up empty and get repaired below).
            centroids.push(values[rng.gen_range(0..n)]);
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = n - 1;
        for (i, &d) in dist2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(values[chosen]);
    }

    let mut assignments = vec![0_usize; n];
    let mut inertia = 0.0_f32;
    for _iter in 0..64 {
        // Assign.
        inertia = 0.0;
        for (i, &v) in values.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, &cen) in centroids.iter().enumerate() {
                let d = (v - cen) * (v - cen);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
            inertia += best_d;
        }
        // Update.
        let mut sums = vec![0.0_f32; k];
        let mut counts = vec![0_usize; k];
        for (i, &v) in values.iter().enumerate() {
            sums[assignments[i]] += v;
            counts[assignments[i]] += 1;
        }
        let mut moved = false;
        for c in 0..k {
            if counts[c] == 0 {
                // Repair empty cluster: move its centroid to the point
                // farthest from its assignment.
                if let Some((idx, _)) = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i, (v - centroids[assignments[i]]).abs()))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    centroids[c] = values[idx];
                    moved = true;
                }
                continue;
            }
            let new = sums[c] / counts[c] as f32;
            if (new - centroids[c]).abs() > 1e-7 {
                centroids[c] = new;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    Clustering {
        assignments,
        centroids,
        inertia,
    }
}

/// Result of clustering d-dimensional points.
///
/// Centroids are stored flat row-major (`k × dim`), matching the input
/// layout of [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringNd {
    /// Point dimensionality.
    pub dim: usize,
    /// Cluster id per input point (`0..k`).
    pub assignments: Vec<usize>,
    /// Flat row-major centroid matrix (`k × dim`).
    pub centroids: Vec<f32>,
    /// Sum of squared Euclidean distances to assigned centroids.
    pub inertia: f32,
}

impl ClusteringNd {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Centroid `c` as a slice of length `dim`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Members of cluster `c` (input point indices).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Index of the centroid nearest to `point` (squared Euclidean).
    /// Ties break toward the lower cluster id, so lookups are
    /// deterministic. Returns `None` for an empty clustering.
    pub fn nearest(&self, point: &[f32]) -> Option<usize> {
        let k = self.k();
        if k == 0 {
            return None;
        }
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            let d = dist2_nd(point, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        Some(best)
    }
}

/// Squared Euclidean distance between two equal-length vectors.
fn dist2_nd(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
}

/// Runs Lloyd's algorithm on d-dimensional points with k-means++
/// seeding — the [`kmeans_1d`] recipe generalized for the semantic
/// cache's embedding index (`prism-semcache`), where bucket summaries
/// are centroids over mean-pooled candidate embeddings.
///
/// `points` is flat row-major (`n × dim`); `k` is clamped to `n`; an
/// empty input or `dim == 0` yields an empty clustering. Same contract
/// as the 1-D twin: k-means++ seeding, at most 64 Lloyd iterations,
/// empty-cluster repair (centroid jumps to the farthest point), and a
/// `1e-7` per-coordinate movement epsilon. Deterministic for a given
/// `seed` — identical inputs produce identical assignments, centroids
/// and inertia bit for bit.
///
/// # Panics
///
/// Panics when `points.len()` is not a multiple of `dim`.
///
/// # Examples
///
/// ```
/// use prism_cluster::kmeans;
/// // Two obvious groups in 2-D.
/// let pts = [0.0, 0.0, 0.1, 0.0, 5.0, 5.0, 5.1, 5.0];
/// let c = kmeans(&pts, 2, 2, 7);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
pub fn kmeans(points: &[f32], dim: usize, k: usize, seed: u64) -> ClusteringNd {
    if dim == 0 || points.is_empty() || k == 0 {
        assert!(
            dim == 0 || points.len().is_multiple_of(dim),
            "points length {} is not a multiple of dim {dim}",
            points.len()
        );
        return ClusteringNd {
            dim,
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }
    assert!(
        points.len().is_multiple_of(dim),
        "points length {} is not a multiple of dim {dim}",
        points.len()
    );
    let n = points.len() / dim;
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let point = |i: usize| &points[i * dim..(i + 1) * dim];

    // k-means++ seeding, exactly the 1-D walk over squared distances.
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    centroids.extend_from_slice(point(rng.gen_range(0..n)));
    let mut dist2 = vec![0.0_f32; n];
    while centroids.len() < k * dim {
        let placed = centroids.len() / dim;
        let mut total = 0.0_f32;
        for (i, d) in dist2.iter_mut().enumerate() {
            *d = (0..placed)
                .map(|c| dist2_nd(point(i), &centroids[c * dim..(c + 1) * dim]))
                .fold(f32::INFINITY, f32::min);
            total += *d;
        }
        if total <= f32::EPSILON {
            // All remaining points coincide with existing centroids; pad
            // by duplicating (empty clusters get repaired below).
            centroids.extend_from_slice(point(rng.gen_range(0..n)));
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = n - 1;
        for (i, &d) in dist2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.extend_from_slice(point(chosen));
    }

    let mut assignments = vec![0_usize; n];
    let mut inertia = 0.0_f32;
    for _iter in 0..64 {
        // Assign.
        inertia = 0.0;
        for (i, a) in assignments.iter_mut().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = dist2_nd(point(i), &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *a = best;
            inertia += best_d;
        }
        // Update.
        let mut sums = vec![0.0_f32; k * dim];
        let mut counts = vec![0_usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(point(i)) {
                *s += v;
            }
            counts[a] += 1;
        }
        let mut moved = false;
        for c in 0..k {
            if counts[c] == 0 {
                // Repair empty cluster: move its centroid to the point
                // farthest from its current assignment.
                if let Some((idx, _)) = (0..n)
                    .map(|i| {
                        let a = assignments[i];
                        (i, dist2_nd(point(i), &centroids[a * dim..(a + 1) * dim]))
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(point(idx));
                    moved = true;
                }
                continue;
            }
            for j in 0..dim {
                let new = sums[c * dim + j] / counts[c] as f32;
                if (new - centroids[c * dim + j]).abs() > 1e-7 {
                    centroids[c * dim + j] = new;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }

    ClusteringNd {
        dim,
        assignments,
        centroids,
        inertia,
    }
}

/// Clusters with the best `k ∈ 2..=max_k` by mean silhouette.
///
/// Falls back to `k = 1` when fewer than three values exist or every
/// candidate `k` produces a degenerate silhouette (all values identical).
pub fn kmeans_auto(values: &[f32], max_k: usize, seed: u64) -> Clustering {
    let n = values.len();
    if n < 3 || max_k < 2 {
        return kmeans_1d(values, 1.min(n), seed);
    }
    let spread = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
        - values.iter().cloned().fold(f32::INFINITY, f32::min);
    if spread <= f32::EPSILON {
        return kmeans_1d(values, 1, seed);
    }
    let mut best: Option<(f32, Clustering)> = None;
    for k in 2..=max_k.min(n) {
        let c = kmeans_1d(
            values,
            k,
            seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let s = c.silhouette(values);
        match &best {
            Some((bs, _)) if s <= *bs => {}
            _ => best = Some((s, c)),
        }
    }
    best.map(|(_, c)| c)
        .unwrap_or_else(|| kmeans_1d(values, 1, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_groups() {
        let values = [0.1_f32, 0.12, 0.11, 0.9, 0.91, 0.88];
        let c = kmeans_1d(&values, 2, 7);
        assert_eq!(c.k(), 2);
        let a = c.assignments[0];
        assert!(c.assignments[..3].iter().all(|&x| x == a));
        assert!(c.assignments[3..].iter().all(|&x| x != a));
        assert!(c.inertia < 0.01);
    }

    #[test]
    fn auto_finds_three_groups() {
        let values = [0.0_f32, 0.02, 0.01, 0.5, 0.52, 0.49, 1.0, 0.98, 1.02];
        let c = kmeans_auto(&values, 5, 3);
        assert_eq!(c.k(), 3, "assignments {:?}", c.assignments);
        // Groups are internally consistent.
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[3], c.assignments[5]);
        assert_eq!(c.assignments[6], c.assignments[8]);
        assert_ne!(c.assignments[0], c.assignments[3]);
        assert_ne!(c.assignments[3], c.assignments[6]);
    }

    #[test]
    fn identical_values_fall_back_to_one_cluster() {
        let values = [0.5_f32; 8];
        let c = kmeans_auto(&values, 4, 1);
        assert_eq!(c.k(), 1);
        assert!(c.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn k_clamped_to_n() {
        let values = [1.0_f32, 2.0];
        let c = kmeans_1d(&values, 10, 0);
        assert_eq!(c.k(), 2);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn empty_and_k_zero() {
        let c = kmeans_1d(&[], 3, 0);
        assert_eq!(c.k(), 0);
        assert!(c.assignments.is_empty());
        let c = kmeans_1d(&[1.0], 0, 0);
        assert_eq!(c.k(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let values: Vec<f32> = (0..32).map(|i| ((i * 37) % 13) as f32 * 0.1).collect();
        let a = kmeans_1d(&values, 4, 42);
        let b = kmeans_1d(&values, 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn members_and_cluster_mean() {
        let values = [0.0_f32, 0.1, 1.0, 1.1];
        let c = kmeans_1d(&values, 2, 9);
        let low_cluster = c.assignments[0];
        let members = c.members(low_cluster);
        assert!(members.contains(&0) && members.contains(&1));
        let m = c.cluster_mean(&values, low_cluster);
        assert!((m - 0.05).abs() < 1e-6);
        // Empty cluster id yields 0 mean.
        assert_eq!(c.cluster_mean(&values, 99), 0.0);
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let values = [0.0_f32, 0.01, 0.02, 0.98, 0.99, 1.0];
        let two = kmeans_1d(&values, 2, 5);
        let four = kmeans_1d(&values, 4, 5);
        assert!(two.silhouette(&values) > four.silhouette(&values));
    }

    #[test]
    fn singletons_do_not_poison_silhouette() {
        let values = [0.0_f32, 1.0, 2.0];
        let c = kmeans_1d(&values, 3, 2);
        let s = c.silhouette(&values);
        assert!(s.is_finite());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let values: Vec<f32> = (0..24).map(|i| (i as f32 * 0.77).sin()).collect();
        let k2 = kmeans_1d(&values, 2, 11);
        let k6 = kmeans_1d(&values, 6, 11);
        assert!(k6.inertia <= k2.inertia + 1e-5);
    }

    /// `n` points in `dim` dimensions around `groups` well-separated
    /// anchors, deterministic in `seed`.
    fn blob_points(n: usize, dim: usize, groups: usize, seed: u64) -> (Vec<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % groups;
            labels.push(g);
            for j in 0..dim {
                // Anchor at 10·g along every axis plus small jitter.
                let anchor = 10.0 * g as f32 + j as f32 * 0.01;
                pts.push(anchor + (rng.gen::<f32>() - 0.5) * 0.2);
            }
        }
        (pts, labels)
    }

    #[test]
    fn nd_separates_obvious_groups() {
        let (pts, labels) = blob_points(30, 8, 3, 42);
        let c = kmeans(&pts, 8, 3, 7);
        assert_eq!(c.k(), 3);
        assert_eq!(c.assignments.len(), 30);
        // Every point with the same ground-truth label lands in the same
        // cluster, and different labels land in different clusters.
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                assert_eq!(
                    li == lj,
                    c.assignments[i] == c.assignments[j],
                    "points {i} and {j}"
                );
            }
        }
        // Tight blobs: inertia is the jitter, not the anchor spacing.
        assert!(c.inertia < 30.0 * 8.0 * 0.01, "inertia {}", c.inertia);
    }

    #[test]
    fn nd_is_deterministic_for_seed() {
        let (pts, _) = blob_points(40, 16, 4, 3);
        let a = kmeans(&pts, 16, 4, 42);
        let b = kmeans(&pts, 16, 4, 42);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        // Bit-identical includes the centroid floats.
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn nd_converges_to_blob_means() {
        // With one cluster per blob, the converged centroid is the blob
        // mean (Lloyd's fixed point): assignment then update changes
        // nothing, so inertia equals the within-blob scatter.
        let (pts, labels) = blob_points(24, 4, 2, 9);
        let c = kmeans(&pts, 4, 2, 1);
        for g in 0..2 {
            // Compute the ground-truth blob mean.
            let members: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter_map(|(i, &l)| (l == g).then_some(i))
                .collect();
            let mut mean = vec![0.0_f32; 4];
            for &i in &members {
                for j in 0..4 {
                    mean[j] += pts[i * 4 + j];
                }
            }
            for m in &mut mean {
                *m /= members.len() as f32;
            }
            // Some centroid sits at that mean (within float tolerance).
            let hit = (0..c.k()).any(|cid| {
                c.centroid(cid)
                    .iter()
                    .zip(&mean)
                    .all(|(a, b)| (a - b).abs() < 1e-4)
            });
            assert!(hit, "no centroid at blob {g} mean {mean:?}");
        }
    }

    #[test]
    fn nd_k_clamped_and_degenerate_inputs() {
        let pts = [1.0_f32, 2.0, 3.0, 4.0];
        // k clamped to n = 2 points of dim 2.
        let c = kmeans(&pts, 2, 10, 0);
        assert_eq!(c.k(), 2);
        assert_ne!(c.assignments[0], c.assignments[1]);
        // Empty input / k = 0 / dim = 0 are empty clusterings.
        assert_eq!(kmeans(&[], 4, 3, 0).k(), 0);
        assert_eq!(kmeans(&pts, 2, 0, 0).k(), 0);
        assert_eq!(kmeans(&[], 0, 3, 0).k(), 0);
    }

    #[test]
    fn nd_identical_points_collapse() {
        let pts: Vec<f32> = std::iter::repeat_n([0.5_f32, -0.25, 1.0], 6)
            .flatten()
            .collect();
        let c = kmeans(&pts, 3, 3, 5);
        // All points identical: every assignment maps to one real
        // centroid (the duplicated pads are repaired or coincide).
        assert!(c.inertia < 1e-9);
        let first = c.assignments[0];
        assert!(c.assignments.iter().all(|&a| a == first));
    }

    #[test]
    fn nd_nearest_matches_assignments() {
        let (pts, _) = blob_points(20, 6, 2, 17);
        let c = kmeans(&pts, 6, 2, 2);
        for i in 0..20 {
            let p = &pts[i * 6..(i + 1) * 6];
            assert_eq!(c.nearest(p), Some(c.assignments[i]), "point {i}");
        }
        let empty = kmeans(&[], 3, 2, 0);
        assert_eq!(empty.nearest(&[0.0, 0.0, 0.0]), None);
    }

    #[test]
    fn nd_matches_1d_grouping() {
        // dim = 1 must group like the specialized scalar path (the
        // seeding RNG draws differ, so compare the partition, not ids).
        let values = [0.1_f32, 0.12, 0.11, 0.9, 0.91, 0.88];
        let c = kmeans(&values, 1, 2, 7);
        assert_eq!(c.k(), 2);
        let a = c.assignments[0];
        assert!(c.assignments[..3].iter().all(|&x| x == a));
        assert!(c.assignments[3..].iter().all(|&x| x != a));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn nd_rejects_ragged_input() {
        kmeans(&[1.0, 2.0, 3.0], 2, 1, 0);
    }
}
