//! Dispersion statistics for the pruning gate.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population standard deviation; `0.0` for fewer than two values.
pub fn std_dev(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32;
    var.sqrt()
}

/// Coefficient of variation `|std / mean|` used as PRISM's dispersion gate.
///
/// The paper triggers clustering when this exceeds the *dispersion
/// threshold*. A near-zero mean would make the ratio blow up even for tiny
/// absolute spreads, so the denominator is floored; the floor only matters
/// for scores that are all essentially zero, where pruning is pointless
/// anyway.
pub fn coefficient_of_variation(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values).abs().max(1e-6);
    (std_dev(values) / m).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_known_values() {
        let v = [2.0_f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-6);
        assert!((std_dev(&v) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[1.0]), 0.0);
    }

    #[test]
    fn cv_is_scale_invariant() {
        let v: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let scaled: Vec<f32> = v.iter().map(|x| x * 7.5).collect();
        let a = coefficient_of_variation(&v);
        let b = coefficient_of_variation(&scaled);
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        assert!(a > 0.0);
    }

    #[test]
    fn cv_grows_with_dispersion() {
        let tight = [0.50_f32, 0.51, 0.49, 0.50];
        let spread = [0.1_f32, 0.9, 0.2, 0.8];
        assert!(coefficient_of_variation(&spread) > coefficient_of_variation(&tight) * 5.0);
    }

    #[test]
    fn cv_near_zero_mean_is_finite() {
        let v = [-0.001_f32, 0.001, -0.002, 0.002];
        let cv = coefficient_of_variation(&v);
        assert!(cv.is_finite());
    }
}
