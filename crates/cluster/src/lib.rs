//! Clustering and dispersion statistics for progressive cluster pruning
//! (§4.1) and the semantic result cache's embedding index.
//!
//! PRISM decides *when* to prune with a coefficient-of-variation gate over
//! candidate scores and decides *what* to prune by K-Means-clustering the
//! scores and routing whole clusters relative to the boundary cluster (the
//! one containing the K-th ranked candidate). Scores are scalars, so the
//! pruning path is specialized — and fast — for the 1-D case: the paper
//! reports ~1 ms clustering overhead and our Criterion bench
//! (`kmeans` in `prism-bench`) verifies we are far below that.
//!
//! The d-dimensional [`kmeans()`] generalization serves `prism-semcache`,
//! which summarizes LSH buckets of mean-pooled candidate embeddings with
//! centroids for fast probe rejection.

pub mod kmeans;
pub mod stats;

pub use kmeans::{kmeans, kmeans_1d, kmeans_auto, Clustering, ClusteringNd};
pub use stats::{coefficient_of_variation, mean, std_dev};
