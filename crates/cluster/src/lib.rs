//! One-dimensional clustering and dispersion statistics for progressive
//! cluster pruning (§4.1).
//!
//! PRISM decides *when* to prune with a coefficient-of-variation gate over
//! candidate scores and decides *what* to prune by K-Means-clustering the
//! scores and routing whole clusters relative to the boundary cluster (the
//! one containing the K-th ranked candidate). Scores are scalars, so
//! everything here is specialized — and fast — for the 1-D case: the paper
//! reports ~1 ms clustering overhead and our Criterion bench
//! (`kmeans` in `prism-bench`) verifies we are far below that.

pub mod kmeans;
pub mod stats;

pub use kmeans::{kmeans_1d, kmeans_auto, Clustering};
pub use stats::{coefficient_of_variation, mean, std_dev};
