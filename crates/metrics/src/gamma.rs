//! Goodman and Kruskal's γ and the paper's cluster-γ (Fig. 2b).

/// Goodman and Kruskal's γ between an intermediate and a final ranking.
///
/// Computed over all candidate pairs: pairs whose relative order agrees
/// between `intermediate` and `final_scores` are concordant (`Nc`), reversed
/// pairs are discordant (`Nd`); ties in either vector are skipped.
/// `γ = (Nc − Nd) / (Nc + Nd)`; returns `1.0` when no comparable pairs
/// exist (vacuously converged).
///
/// # Examples
///
/// ```
/// use prism_metrics::goodman_kruskal_gamma;
/// let mid = [0.2_f32, 0.5, 0.8];
/// let fin = [0.1_f32, 0.6, 0.9];
/// assert_eq!(goodman_kruskal_gamma(&mid, &fin), 1.0);
/// ```
pub fn goodman_kruskal_gamma(intermediate: &[f32], final_scores: &[f32]) -> f64 {
    gamma_filtered(intermediate, final_scores, |_, _| true)
}

/// Cluster γ: γ restricted to pairs from *different* clusters.
///
/// This is the paper's direct measure of inter-cluster ranking stability;
/// it staying ≈ 1.0 across layers is the evidence that whole clusters can
/// be routed (pruned/accepted) early without precision loss.
pub fn cluster_gamma(intermediate: &[f32], final_scores: &[f32], clusters: &[usize]) -> f64 {
    gamma_filtered(intermediate, final_scores, |i, j| {
        clusters[i] != clusters[j]
    })
}

fn gamma_filtered(
    intermediate: &[f32],
    final_scores: &[f32],
    include: impl Fn(usize, usize) -> bool,
) -> f64 {
    let n = intermediate.len().min(final_scores.len());
    let mut concordant = 0_u64;
    let mut discordant = 0_u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if !include(i, j) {
                continue;
            }
            let a = intermediate[i] - intermediate[j];
            let b = final_scores[i] - final_scores[j];
            if a == 0.0 || b == 0.0 {
                continue;
            }
            if (a > 0.0) == (b > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = concordant + discordant;
    if total == 0 {
        return 1.0;
    }
    (concordant as f64 - discordant as f64) / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_give_one() {
        let s = [0.1_f32, 0.5, 0.9, 0.3];
        assert_eq!(goodman_kruskal_gamma(&s, &s), 1.0);
    }

    #[test]
    fn reversed_rankings_give_minus_one() {
        let a = [1.0_f32, 2.0, 3.0];
        let b = [3.0_f32, 2.0, 1.0];
        assert_eq!(goodman_kruskal_gamma(&a, &b), -1.0);
    }

    #[test]
    fn single_swap_partial_gamma() {
        // Rankings 1,2,3,4 vs 2,1,3,4: one discordant pair out of six.
        let a = [1.0_f32, 2.0, 3.0, 4.0];
        let b = [2.0_f32, 1.0, 3.0, 4.0];
        let g = goodman_kruskal_gamma(&a, &b);
        assert!((g - (5.0 - 1.0) / 6.0).abs() < 1e-9, "{g}");
    }

    #[test]
    fn ties_are_skipped() {
        let a = [1.0_f32, 1.0, 2.0];
        let b = [5.0_f32, 6.0, 7.0];
        // Pair (0,1) tied in a -> skipped; remaining two pairs concordant.
        assert_eq!(goodman_kruskal_gamma(&a, &b), 1.0);
    }

    #[test]
    fn no_comparable_pairs_vacuously_one() {
        assert_eq!(goodman_kruskal_gamma(&[1.0], &[1.0]), 1.0);
        assert_eq!(goodman_kruskal_gamma(&[], &[]), 1.0);
        let a = [2.0_f32, 2.0];
        assert_eq!(goodman_kruskal_gamma(&a, &[1.0, 3.0]), 1.0);
    }

    #[test]
    fn cluster_gamma_ignores_intra_cluster_swaps() {
        // Intermediate swaps candidates 0 and 1, but they share a cluster:
        // cluster-γ must stay 1.0 while plain γ drops.
        let inter = [0.55_f32, 0.50, 0.9, 0.1];
        let fin = [0.50_f32, 0.55, 0.95, 0.05];
        let clusters = [0, 0, 1, 2];
        assert!(goodman_kruskal_gamma(&inter, &fin) < 1.0);
        assert_eq!(cluster_gamma(&inter, &fin, &clusters), 1.0);
    }

    #[test]
    fn cluster_gamma_detects_inter_cluster_reversal() {
        let inter = [0.9_f32, 0.1];
        let fin = [0.1_f32, 0.9];
        let clusters = [0, 1];
        assert_eq!(cluster_gamma(&inter, &fin, &clusters), -1.0);
    }

    #[test]
    fn length_mismatch_uses_common_prefix() {
        let a = [1.0_f32, 2.0, 3.0];
        let b = [1.0_f32, 2.0];
        assert_eq!(goodman_kruskal_gamma(&a, &b), 1.0);
    }
}
