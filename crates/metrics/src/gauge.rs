//! Lock-free serving telemetry: gauges, counters and a latency histogram.
//!
//! The serving front-end (`prism-serve`) reports queue depth, coalesced
//! batch sizes and session-cache hits through these primitives. They are
//! deliberately tiny — atomics only, no background aggregation thread —
//! so a worker can bump them from the hot path without contending on the
//! [`crate::MemoryMeter`] lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

/// A current-value instrument with a high-water mark (e.g. queue depth).
///
/// Clones share state, mirroring [`crate::MemoryMeter`]'s handle model.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value, updating the peak.
    pub fn set(&self, v: u64) {
        self.inner.value.store(v, Ordering::Relaxed);
        self.inner.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `delta` to the current value, updating the peak.
    pub fn add(&self, delta: u64) {
        let v = self.inner.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.inner.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Subtracts `delta` (saturating at zero).
    pub fn sub(&self, delta: u64) {
        let mut cur = self.inner.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(delta);
            match self.inner.value.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.inner.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn inc_by(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Number of buckets in [`Histogram`]: one per power of two up to 2^63,
/// which comfortably spans nanoseconds to hours for latency recording.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` observations (typically
/// microseconds), supporting approximate quantiles.
///
/// An observation `v` lands in bucket `⌊log2(v)⌋ + 1` (zero in bucket 0),
/// so relative quantile error is bounded by 2×. Clones share state.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; BUCKETS]>,
    count: Counter,
    sum: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: Counter::new(),
            sum: Arc::new(AtomicU64::new(0)),
            max: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·n⌉`-th observation (within 2× of the true value).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0_u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1_u64 << i }.min(self.max());
            }
        }
        self.max()
    }

    /// A serializable summary with the serving percentiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::new();
        g.set(5);
        g.add(3);
        assert_eq!(g.get(), 8);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8, "peak must not decrease");
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates");
    }

    #[test]
    fn gauge_clones_share_state() {
        let g = Gauge::new();
        let g2 = g.clone();
        g2.add(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.inc_by(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.clone().get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::new();
        for v in 1..=1000_u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // True median 500; log2 bucket upper bound gives 512.
        assert!((500..=1024).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1024).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn summary_fields_ordered() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40, 50, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn histogram_concurrent_records() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000_u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
