//! Precision@K per the paper's definition (§6.1).

use std::collections::HashSet;

/// Precision@K: fraction of the top-K selection that is relevant.
///
/// When the ground-truth set is smaller than `k`, the denominator is the
/// ground-truth size (the paper: "When the ground truth is less than K, we
/// take the ratio between the number of relevant items contained in the
/// top-K and the number of ground truth"). Returns `1.0` for an empty
/// ground truth (nothing to find) and treats only the first `k` entries of
/// `selected` as the selection.
///
/// # Examples
///
/// ```
/// use prism_metrics::precision_at_k;
/// assert_eq!(precision_at_k(&[3, 1, 4], &[1, 3], 3), 1.0);
/// assert_eq!(precision_at_k(&[3, 9, 8], &[1, 3, 8], 3), 2.0 / 3.0);
/// ```
pub fn precision_at_k(selected: &[usize], relevant: &[usize], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 1.0;
    }
    let rel: HashSet<usize> = relevant.iter().copied().collect();
    let hits = selected.iter().take(k).filter(|i| rel.contains(i)).count();
    let denom = k.min(rel.len());
    hits as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_selection() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[1, 2, 3], 3), 1.0);
    }

    #[test]
    fn partial_overlap() {
        assert_eq!(precision_at_k(&[1, 9, 8], &[1, 2, 3], 3), 1.0 / 3.0);
    }

    #[test]
    fn ground_truth_smaller_than_k() {
        // 2 relevant items, K = 5, both found: precision 1.0 (paper rule).
        assert_eq!(precision_at_k(&[7, 1, 4, 2, 9], &[1, 2], 5), 1.0);
        // Only one found: 0.5.
        assert_eq!(precision_at_k(&[7, 1, 4, 8, 9], &[1, 2], 5), 0.5);
    }

    #[test]
    fn only_first_k_counted() {
        assert_eq!(precision_at_k(&[9, 8, 1, 2, 3], &[1, 2, 3], 2), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(precision_at_k(&[], &[1], 3), 0.0);
        assert_eq!(precision_at_k(&[1], &[], 3), 1.0);
        assert_eq!(precision_at_k(&[1], &[1], 0), 1.0);
    }

    #[test]
    fn duplicates_in_ground_truth_collapse() {
        assert_eq!(precision_at_k(&[1, 5], &[1, 1, 1], 2), 1.0);
    }
}
