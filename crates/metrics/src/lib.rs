//! Ranking-quality metrics and resource recorders for the PRISM evaluation.
//!
//! * [`precision`] — Precision@K as defined in §6.1 of the paper (the
//!   denominator shrinks to the ground-truth size when it is below K),
//! * [`gamma`] — Goodman and Kruskal's γ plus the paper's *cluster γ*
//!   restricted to inter-cluster pairs (Fig. 2b),
//! * [`recorder`] — a span-based latency recorder and a category-tagged
//!   [`recorder::MemoryMeter`] that tracks live bytes over time, yielding
//!   the memory-vs-time curves behind Figs. 9/11/13/15/16,
//! * [`gauge`] — atomic gauges/counters and a log₂-bucketed latency
//!   histogram for the serving front-end's queue-depth, batch-size and
//!   cache-hit telemetry.

pub mod gamma;
pub mod gauge;
pub mod precision;
pub mod recorder;

pub use gamma::{cluster_gamma, goodman_kruskal_gamma};
pub use gauge::{Counter, Gauge, Histogram, HistogramSummary};
pub use precision::precision_at_k;
pub use recorder::{LatencyRecorder, MemCategory, MemoryMeter, MemorySample, SpanSummary};
