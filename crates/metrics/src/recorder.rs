//! Latency spans and live-byte memory metering.
//!
//! [`MemoryMeter`] is the measurement backbone of the memory experiments:
//! runtime components report allocation/release of weights, activations,
//! hidden states and caches under a [`MemCategory`] tag; the meter keeps
//! current and peak totals plus a `(time, bytes)` timeline for
//! memory-over-time plots. Handles are cheap clones sharing one meter, so
//! the I/O thread and compute thread report to the same ledger.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

/// What a tracked allocation holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum MemCategory {
    /// Transformer layer weights resident in memory.
    LayerWeights,
    /// Embedding table (full or cached subset).
    Embedding,
    /// Classifier / pooling head weights.
    Head,
    /// Per-chunk transient intermediate tensors (QKV, attention, FFN).
    Intermediate,
    /// Hidden states of all live chunks.
    HiddenStates,
    /// Everything else (tokenizer tables, bookkeeping).
    Other,
}

impl MemCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [MemCategory; 6] = [
        MemCategory::LayerWeights,
        MemCategory::Embedding,
        MemCategory::Head,
        MemCategory::Intermediate,
        MemCategory::HiddenStates,
        MemCategory::Other,
    ];

    fn index(self) -> usize {
        match self {
            MemCategory::LayerWeights => 0,
            MemCategory::Embedding => 1,
            MemCategory::Head => 2,
            MemCategory::Intermediate => 3,
            MemCategory::HiddenStates => 4,
            MemCategory::Other => 5,
        }
    }
}

/// One point on the memory timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemorySample {
    /// Microseconds since the meter was created (or last reset).
    pub at_micros: u64,
    /// Total live bytes across categories at that instant.
    pub total_bytes: u64,
}

#[derive(Debug)]
struct MeterInner {
    start: Instant,
    current: [u64; 6],
    peak_total: u64,
    peak_by_cat: [u64; 6],
    timeline: Vec<MemorySample>,
    /// Byte-seconds integral for average-memory reporting.
    byte_micros: u128,
    last_change: u64,
}

impl MeterInner {
    fn total(&self) -> u64 {
        self.current.iter().sum()
    }

    fn note_change(&mut self) {
        let now = self.start.elapsed().as_micros() as u64;
        let total = self.total();
        self.byte_micros += u128::from(self.prev_total()) * u128::from(now - self.last_change);
        self.last_change = now;
        self.timeline.push(MemorySample {
            at_micros: now,
            total_bytes: total,
        });
        if total > self.peak_total {
            self.peak_total = total;
        }
        for (i, &c) in self.current.iter().enumerate() {
            if c > self.peak_by_cat[i] {
                self.peak_by_cat[i] = c;
            }
        }
    }

    fn prev_total(&self) -> u64 {
        self.timeline.last().map_or(0, |s| s.total_bytes)
    }
}

/// Shared, thread-safe memory ledger.
#[derive(Debug, Clone)]
pub struct MemoryMeter {
    inner: Arc<Mutex<MeterInner>>,
}

impl Default for MemoryMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryMeter {
    /// Creates an empty meter with its clock starting now.
    pub fn new() -> Self {
        MemoryMeter {
            inner: Arc::new(Mutex::new(MeterInner {
                start: Instant::now(),
                current: [0; 6],
                peak_total: 0,
                peak_by_cat: [0; 6],
                timeline: Vec::new(),
                byte_micros: 0,
                last_change: 0,
            })),
        }
    }

    /// Records `bytes` newly resident under `cat`.
    pub fn alloc(&self, cat: MemCategory, bytes: u64) {
        let mut g = self.inner.lock();
        g.current[cat.index()] += bytes;
        g.note_change();
    }

    /// Records `bytes` released under `cat` (saturating).
    pub fn free(&self, cat: MemCategory, bytes: u64) {
        let mut g = self.inner.lock();
        let c = &mut g.current[cat.index()];
        *c = c.saturating_sub(bytes);
        g.note_change();
    }

    /// Replaces the tracked size of `cat` (for components that resize).
    pub fn set(&self, cat: MemCategory, bytes: u64) {
        let mut g = self.inner.lock();
        g.current[cat.index()] = bytes;
        g.note_change();
    }

    /// Current live bytes across all categories.
    pub fn current_total(&self) -> u64 {
        self.inner.lock().total()
    }

    /// Current live bytes of one category.
    pub fn current(&self, cat: MemCategory) -> u64 {
        self.inner.lock().current[cat.index()]
    }

    /// Peak total live bytes observed.
    pub fn peak_total(&self) -> u64 {
        self.inner.lock().peak_total
    }

    /// Peak live bytes of one category.
    pub fn peak(&self, cat: MemCategory) -> u64 {
        self.inner.lock().peak_by_cat[cat.index()]
    }

    /// Time-weighted average of total live bytes since creation/reset.
    pub fn average_total(&self) -> u64 {
        let g = self.inner.lock();
        let now = g.start.elapsed().as_micros() as u64;
        if now == 0 {
            return g.total();
        }
        let tail = u128::from(g.prev_total()) * u128::from(now - g.last_change);
        ((g.byte_micros + tail) / u128::from(now)) as u64
    }

    /// Snapshot of the full `(time, bytes)` timeline.
    pub fn timeline(&self) -> Vec<MemorySample> {
        self.inner.lock().timeline.clone()
    }

    /// Clears totals, peaks and timeline; restarts the clock.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.start = Instant::now();
        g.current = [0; 6];
        g.peak_total = 0;
        g.peak_by_cat = [0; 6];
        g.timeline.clear();
        g.byte_micros = 0;
        g.last_change = 0;
    }
}

/// Summary of one named latency span.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of recordings.
    pub count: u64,
    /// Total microseconds across recordings.
    pub total_micros: u64,
    /// Minimum single recording.
    pub min_micros: u64,
    /// Maximum single recording.
    pub max_micros: u64,
}

impl SpanSummary {
    /// Mean microseconds per recording.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }
}

/// Accumulates named latency spans (e.g. `"embed"`, `"layer"`, `"cluster"`).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    spans: Vec<SpanSummary>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed duration under `name`.
    pub fn record(&mut self, name: &str, micros: u64) {
        if let Some(s) = self.spans.iter_mut().find(|s| s.name == name) {
            s.count += 1;
            s.total_micros += micros;
            s.min_micros = s.min_micros.min(micros);
            s.max_micros = s.max_micros.max(micros);
        } else {
            self.spans.push(SpanSummary {
                name: name.to_string(),
                count: 1,
                total_micros: micros,
                min_micros: micros,
                max_micros: micros,
            });
        }
    }

    /// Times `f` and records it under `name`, passing through its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_micros() as u64);
        out
    }

    /// Summary for one span, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans in first-recorded order.
    pub fn spans(&self) -> &[SpanSummary] {
        &self.spans
    }

    /// Total microseconds across every span.
    pub fn total_micros(&self) -> u64 {
        self.spans.iter().map(|s| s.total_micros).sum()
    }

    /// Merges another recorder's spans into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for s in &other.spans {
            if let Some(dst) = self.spans.iter_mut().find(|d| d.name == s.name) {
                dst.count += s.count;
                dst.total_micros += s.total_micros;
                dst.min_micros = dst.min_micros.min(s.min_micros);
                dst.max_micros = dst.max_micros.max(s.max_micros);
            } else {
                self.spans.push(s.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_current_and_peak() {
        let m = MemoryMeter::new();
        m.alloc(MemCategory::LayerWeights, 100);
        m.alloc(MemCategory::Intermediate, 50);
        assert_eq!(m.current_total(), 150);
        assert_eq!(m.peak_total(), 150);
        m.free(MemCategory::Intermediate, 50);
        assert_eq!(m.current_total(), 100);
        assert_eq!(m.peak_total(), 150, "peak must not decrease");
        assert_eq!(m.current(MemCategory::LayerWeights), 100);
        assert_eq!(m.peak(MemCategory::Intermediate), 50);
    }

    #[test]
    fn free_saturates() {
        let m = MemoryMeter::new();
        m.alloc(MemCategory::Other, 10);
        m.free(MemCategory::Other, 100);
        assert_eq!(m.current_total(), 0);
    }

    #[test]
    fn set_overrides() {
        let m = MemoryMeter::new();
        m.set(MemCategory::Embedding, 500);
        m.set(MemCategory::Embedding, 200);
        assert_eq!(m.current(MemCategory::Embedding), 200);
        assert_eq!(m.peak(MemCategory::Embedding), 500);
    }

    #[test]
    fn timeline_is_monotone_in_time() {
        let m = MemoryMeter::new();
        for i in 0..10 {
            m.alloc(MemCategory::HiddenStates, i * 10);
        }
        let tl = m.timeline();
        assert_eq!(tl.len(), 10);
        for w in tl.windows(2) {
            assert!(w[0].at_micros <= w[1].at_micros);
        }
        assert_eq!(
            tl.last().unwrap().total_bytes,
            (0..10).map(|i| i * 10).sum::<u64>()
        );
    }

    #[test]
    fn clones_share_ledger() {
        let m = MemoryMeter::new();
        let m2 = m.clone();
        m2.alloc(MemCategory::Head, 42);
        assert_eq!(m.current_total(), 42);
    }

    #[test]
    fn reset_clears_everything() {
        let m = MemoryMeter::new();
        m.alloc(MemCategory::Other, 7);
        m.reset();
        assert_eq!(m.current_total(), 0);
        assert_eq!(m.peak_total(), 0);
        assert!(m.timeline().is_empty());
    }

    #[test]
    fn average_reflects_holding_time() {
        let m = MemoryMeter::new();
        m.alloc(MemCategory::Other, 1000);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let avg = m.average_total();
        assert!(avg > 500, "avg {avg} should approach 1000");
        assert!(avg <= 1000);
    }

    #[test]
    fn latency_recorder_aggregates() {
        let mut r = LatencyRecorder::new();
        r.record("layer", 100);
        r.record("layer", 300);
        r.record("embed", 50);
        let s = r.span("layer").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_micros, 400);
        assert_eq!(s.min_micros, 100);
        assert_eq!(s.max_micros, 300);
        assert_eq!(s.mean_micros(), 200.0);
        assert_eq!(r.total_micros(), 450);
        assert!(r.span("missing").is_none());
    }

    #[test]
    fn time_wraps_closure() {
        let mut r = LatencyRecorder::new();
        let v = r.time("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            7
        });
        assert_eq!(v, 7);
        assert!(r.span("work").unwrap().total_micros >= 4_000);
    }

    #[test]
    fn merge_combines_spans() {
        let mut a = LatencyRecorder::new();
        a.record("x", 10);
        let mut b = LatencyRecorder::new();
        b.record("x", 30);
        b.record("y", 5);
        a.merge(&b);
        assert_eq!(a.span("x").unwrap().count, 2);
        assert_eq!(a.span("x").unwrap().max_micros, 30);
        assert_eq!(a.span("y").unwrap().count, 1);
    }
}
