//! Property-based tests for ranking metrics.

use prism_metrics::{cluster_gamma, goodman_kruskal_gamma, precision_at_k};
use proptest::prelude::*;

proptest! {
    /// γ is symmetric under exchanging the two rankings.
    #[test]
    fn gamma_is_symmetric(a in prop::collection::vec(0.0_f32..1.0, 2..24)) {
        let b: Vec<f32> = a.iter().rev().cloned().collect();
        let g1 = goodman_kruskal_gamma(&a, &b);
        let g2 = goodman_kruskal_gamma(&b, &a);
        prop_assert!((g1 - g2).abs() < 1e-12);
    }

    /// γ against itself is 1; against its negation is -1 (no ties).
    #[test]
    fn gamma_extremes(mut a in prop::collection::vec(0.0_f32..1.0, 2..24)) {
        a.sort_by(f32::total_cmp);
        a.dedup();
        prop_assume!(a.len() >= 2);
        prop_assert_eq!(goodman_kruskal_gamma(&a, &a), 1.0);
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        prop_assert_eq!(goodman_kruskal_gamma(&a, &neg), -1.0);
    }

    /// γ is bounded in [-1, 1]; cluster-γ too (any cluster labels).
    #[test]
    fn gamma_bounded(
        a in prop::collection::vec(0.0_f32..1.0, 2..24),
        seed in 0_u64..1000,
    ) {
        let b: Vec<f32> = a.iter().map(|x| (x * seed as f32).sin()).collect();
        let g = goodman_kruskal_gamma(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&g));
        let clusters: Vec<usize> = (0..a.len()).map(|i| i % 3).collect();
        let cg = cluster_gamma(&a, &b, &clusters);
        prop_assert!((-1.0..=1.0).contains(&cg));
    }

    /// precision@k is in [0, 1] and adding selected items to the ground
    /// truth never lowers it.
    #[test]
    fn precision_bounded(
        selected in prop::collection::vec(0_usize..50, 1..20),
        relevant in prop::collection::vec(0_usize..50, 0..20),
        k in 1_usize..15,
    ) {
        let p = precision_at_k(&selected, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
        let mut more: Vec<usize> = relevant.clone();
        more.extend(selected.iter().take(k));
        let p2 = precision_at_k(&selected, &more, k);
        prop_assert!(p2 >= p - 1e-12);
    }

    /// Cluster-γ over singleton clusters equals plain γ (every pair is
    /// inter-cluster).
    #[test]
    fn cluster_gamma_singletons_match_gamma(a in prop::collection::vec(0.0_f32..1.0, 2..16)) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.7 + 0.1).collect();
        let singletons: Vec<usize> = (0..a.len()).collect();
        let g = goodman_kruskal_gamma(&a, &b);
        let cg = cluster_gamma(&a, &b, &singletons);
        prop_assert!((g - cg).abs() < 1e-12);
    }
}
