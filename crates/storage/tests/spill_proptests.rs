//! Property tests for the quantized spill round trip.
//!
//! The int8 slot format trades exactness for 4x less disk traffic; these
//! properties pin down what the trade keeps: every element reconstructs
//! within half a quantization step of its row, constant rows round-trip
//! exactly, f32 slots stay bit-exact, and the overlapped pipeline
//! delivers the same bytes as the synchronous path under interleaved
//! reads, writes and releases — for empty, single-element and otherwise
//! awkward shapes included.

use prism_storage::{SpillFile, SpillPipeline, SpillPrecision, Throttle};
use prism_tensor::{rowq, Tensor};
use proptest::prelude::*;

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "prism-spill-prop-{}-{name}-{case}",
        std::process::id()
    ));
    p
}

/// A tensor whose values mix magnitudes and signs, plus degenerate rows.
fn tensor_from(rows: usize, cols: usize, seed: i64, constant_row: bool) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        if constant_row && r == 0 {
            2.5
        } else {
            let x = (r * cols + c) as f32 + seed as f32 * 0.37;
            (x * 0.91).sin() * (1.0 + (seed.unsigned_abs() % 7) as f32)
        }
    })
}

/// Per-row worst-case reconstruction bound: half a quantization step of
/// that row's value range.
fn row_bound(row: &[f32]) -> f32 {
    let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    rowq::max_row_error((hi - lo) / 255.0) + 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rowq_round_trip_error_bounded_per_row(
        cols in 1_usize..200,
        seed in -1000_i64..1000,
    ) {
        let t = tensor_from(1, cols, seed, false);
        let row = t.data();
        let mut codes = vec![0_u8; cols];
        let (min, scale) = rowq::encode_row(row, &mut codes).unwrap();
        let mut back = vec![0.0_f32; cols];
        rowq::decode_row(&codes, min, scale, &mut back).unwrap();
        let bound = row_bound(row);
        for (x, y) in row.iter().zip(&back) {
            prop_assert!((x - y).abs() <= bound, "{x} vs {y} (bound {bound})");
        }
    }

    #[test]
    fn spill_file_round_trip_at_both_precisions(
        rows in 1_usize..12,
        cols in 1_usize..48,
        seed in -500_i64..500,
        constant_flag in 0_u8..2,
        case in 0_u64..u64::MAX,
    ) {
        let constant_row = constant_flag == 1;
        let t = tensor_from(rows, cols, seed, constant_row);

        // f32 slots are bit-exact.
        let path = tmp("f32", case);
        let file = SpillFile::create(&path, 2, rows, cols, SpillPrecision::F32,
            Throttle::unlimited()).unwrap();
        file.offload(0, &t).unwrap();
        prop_assert_eq!(&file.fetch(0).unwrap(), &t);
        file.cleanup().unwrap();

        // int8 slots reconstruct within each row's half-step bound, and
        // a constant row is exact.
        let path = tmp("int8", case);
        let file = SpillFile::create(&path, 2, rows, cols, SpillPrecision::Int8,
            Throttle::unlimited()).unwrap();
        let written = file.offload(0, &t).unwrap();
        prop_assert_eq!(written, SpillPrecision::Int8.encoded_bytes(rows, cols) as u64);
        // Compression wins once the 8-byte/row metadata amortizes
        // (8r + rc <= 4rc requires c >= 3); degenerate 1-2 column
        // shapes still round-trip, they just aren't smaller.
        if cols >= 3 {
            prop_assert!(written <= SpillPrecision::F32.encoded_bytes(rows, cols) as u64);
        }
        let back = file.fetch(0).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for r in 0..rows {
            let bound = row_bound(t.row(r).unwrap());
            for (x, y) in t.row(r).unwrap().iter().zip(back.row(r).unwrap()) {
                prop_assert!((x - y).abs() <= bound, "row {r}: {x} vs {y}");
            }
        }
        if constant_row {
            prop_assert_eq!(t.row(0).unwrap(), back.row(0).unwrap());
        }
        file.cleanup().unwrap();
    }

    #[test]
    fn pipeline_matches_synchronous_under_interleaving(
        rows in 1_usize..8,
        cols in 1_usize..24,
        ops in prop::collection::vec((0_usize..4, 0_u8..3), 1..24),
        case in 0_u64..u64::MAX,
    ) {
        let slots = 4;
        let make = |tag: &str, overlapped: bool| {
            let path = tmp(tag, case);
            let file = SpillFile::create(&path, slots, rows, cols,
                SpillPrecision::Int8, Throttle::unlimited()).unwrap();
            if overlapped {
                SpillPipeline::overlapped(file).unwrap()
            } else {
                SpillPipeline::synchronous(file)
            }
        };
        let mut sync = make("sync", false);
        let mut over = make("over", true);
        // Replay the same randomized op sequence against both modes;
        // every observable result must agree.
        for (i, &(slot, op)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let t = tensor_from(rows, cols, i as i64, false);
                    sync.write_back(slot, t.clone()).unwrap();
                    over.write_back(slot, t).unwrap();
                }
                1 => {
                    let a = sync.fetch(slot);
                    let b = over.fetch(slot);
                    match (a, b) {
                        (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "sync {a:?} vs overlapped {b:?}"),
                    }
                }
                _ => {
                    sync.release(slot).unwrap();
                    over.release(slot).unwrap();
                }
            }
        }
        over.drain().unwrap();
        prop_assert_eq!(sync.stats().bytes_written, over.stats().bytes_written);
        sync.cleanup().unwrap();
        over.cleanup().unwrap();
    }
}
