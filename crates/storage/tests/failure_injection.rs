//! Failure injection: corrupted containers, truncation, concurrent access.

use prism_storage::{Container, ContainerWriter, LayerStreamer, SectionKind, Throttle};
use prism_tensor::Tensor;

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("prism-failinj-{tag}-{}", std::process::id()));
    p
}

fn write_container(path: &std::path::Path, layers: usize) {
    let mut w = ContainerWriter::create(path);
    for i in 0..layers {
        w.add_raw(
            &format!("layer.{i}"),
            SectionKind::Raw,
            0,
            0,
            vec![i as u8; 4096],
        );
    }
    w.add_f32(
        "embedding",
        &Tensor::from_fn(16, 4, |r, c| (r * 4 + c) as f32),
    );
    w.finish().unwrap();
}

#[test]
fn every_truncation_point_fails_cleanly() {
    // Truncating the file anywhere must produce an error from open or
    // read, never a panic or silent garbage.
    let path = tmp("trunc");
    write_container(&path, 3);
    let bytes = std::fs::read(&path).unwrap();
    for cut in [1, 4, 9, 16, 40, bytes.len() / 2, bytes.len() - 1] {
        let cut_path = tmp(&format!("trunc-cut{cut}"));
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        match Container::open(&cut_path) {
            Err(_) => {}
            Ok(c) => {
                // Header may fit; payload reads must then fail.
                let mut failed = false;
                let mut buf = Vec::new();
                for s in c.sections().to_vec() {
                    if c.read_section_into(&s.name, &mut buf).is_err() {
                        failed = true;
                    }
                }
                assert!(
                    failed,
                    "cut at {cut}: all reads succeeded on truncated file"
                );
            }
        }
        std::fs::remove_file(&cut_path).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bitflips_in_header_fail_cleanly() {
    let path = tmp("bitflip");
    write_container(&path, 2);
    let bytes = std::fs::read(&path).unwrap();
    for pos in [0_usize, 3, 8, 10, 13, 20] {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0xFF;
        let bad = tmp(&format!("bitflip-{pos}"));
        std::fs::write(&bad, &corrupted).unwrap();
        // Must not panic; errors are fine, and a still-parsable header is
        // also fine as long as section reads stay within bounds.
        if let Ok(c) = Container::open(&bad) {
            let mut buf = Vec::new();
            for s in c.sections().to_vec() {
                let _ = c.read_section_into(&s.name, &mut buf);
            }
        }
        std::fs::remove_file(&bad).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn streamer_surfaces_io_errors_without_hanging() {
    // Delete the file mid-stream: next() must eventually error or finish,
    // not deadlock (page cache may serve some reads).
    let path = tmp("delete-mid");
    write_container(&path, 8);
    let c = Container::open(&path).unwrap();
    let names: Vec<String> = (0..8).map(|i| format!("layer.{i}")).collect();
    let mut s = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    let first = s.next().unwrap().expect("first section");
    s.recycle(first).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Unix keeps the inode alive through the open fd; the stream should
    // complete (or error) — either way, terminate.
    let mut delivered = 1;
    while let Ok(Some(sec)) = s.next() {
        delivered += 1;
        if s.recycle(sec).is_err() {
            break;
        }
    }
    assert!(delivered >= 1);
}

#[test]
fn concurrent_streamers_share_one_container_file() {
    // Two streamers over the same file must not interfere (independent
    // handles, positioned reads).
    let path = tmp("concurrent");
    write_container(&path, 6);
    let c = Container::open(&path).unwrap();
    let names: Vec<String> = (0..6).map(|i| format!("layer.{i}")).collect();
    let mut s1 = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    let mut s2 = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    for i in 0..6 {
        let a = s1.next().unwrap().unwrap();
        let b = s2.next().unwrap().unwrap();
        assert_eq!(a.bytes, b.bytes, "section {i} diverged across streamers");
        s1.recycle(a).unwrap();
        s2.recycle(b).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}
