//! Failure injection: corrupted containers, truncation, concurrent
//! access — and the spill tier: torn writes, truncation and bit-flips
//! against `SpillFile`/`SpillPipeline` must surface as typed errors or
//! quarantine-and-recompute, never a panic or silently wrong data.

use prism_storage::{
    fault, Container, ContainerWriter, LayerStreamer, SectionKind, SpillFile, SpillPipeline,
    SpillPrecision, StorageError, Throttle,
};
use prism_tensor::{RowQuantBlock, Tensor};

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("prism-failinj-{tag}-{}", std::process::id()));
    p
}

fn write_container(path: &std::path::Path, layers: usize) {
    let mut w = ContainerWriter::create(path);
    for i in 0..layers {
        w.add_raw(
            &format!("layer.{i}"),
            SectionKind::Raw,
            0,
            0,
            vec![i as u8; 4096],
        );
    }
    w.add_f32(
        "embedding",
        &Tensor::from_fn(16, 4, |r, c| (r * 4 + c) as f32),
    );
    w.finish().unwrap();
}

#[test]
fn every_truncation_point_fails_cleanly() {
    // Truncating the file anywhere must produce an error from open or
    // read, never a panic or silent garbage.
    let path = tmp("trunc");
    write_container(&path, 3);
    let bytes = std::fs::read(&path).unwrap();
    for cut in [1, 4, 9, 16, 40, bytes.len() / 2, bytes.len() - 1] {
        let cut_path = tmp(&format!("trunc-cut{cut}"));
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        match Container::open(&cut_path) {
            Err(_) => {}
            Ok(c) => {
                // Header may fit; payload reads must then fail.
                let mut failed = false;
                let mut buf = Vec::new();
                for s in c.sections().to_vec() {
                    if c.read_section_into(&s.name, &mut buf).is_err() {
                        failed = true;
                    }
                }
                assert!(
                    failed,
                    "cut at {cut}: all reads succeeded on truncated file"
                );
            }
        }
        std::fs::remove_file(&cut_path).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bitflips_in_header_fail_cleanly() {
    let path = tmp("bitflip");
    write_container(&path, 2);
    let bytes = std::fs::read(&path).unwrap();
    for pos in [0_usize, 3, 8, 10, 13, 20] {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0xFF;
        let bad = tmp(&format!("bitflip-{pos}"));
        std::fs::write(&bad, &corrupted).unwrap();
        // Must not panic; errors are fine, and a still-parsable header is
        // also fine as long as section reads stay within bounds.
        if let Ok(c) = Container::open(&bad) {
            let mut buf = Vec::new();
            for s in c.sections().to_vec() {
                let _ = c.read_section_into(&s.name, &mut buf);
            }
        }
        std::fs::remove_file(&bad).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn streamer_surfaces_io_errors_without_hanging() {
    // Delete the file mid-stream: next() must eventually error or finish,
    // not deadlock (page cache may serve some reads).
    let path = tmp("delete-mid");
    write_container(&path, 8);
    let c = Container::open(&path).unwrap();
    let names: Vec<String> = (0..8).map(|i| format!("layer.{i}")).collect();
    let mut s = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    let first = s.next().unwrap().expect("first section");
    s.recycle(first).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Unix keeps the inode alive through the open fd; the stream should
    // complete (or error) — either way, terminate.
    let mut delivered = 1;
    while let Ok(Some(sec)) = s.next() {
        delivered += 1;
        if s.recycle(sec).is_err() {
            break;
        }
    }
    assert!(delivered >= 1);
}

fn spill_tensor(seed: f32) -> Tensor {
    Tensor::from_fn(8, 16, |r, c| ((r * 16 + c) as f32 * 0.25 - 3.0) * seed)
}

/// Byte size of one spill slot as `SpillFile::create` lays it out.
fn slot_bytes(max_rows: usize, cols: usize) -> usize {
    SpillPrecision::F32
        .encoded_bytes(max_rows, cols)
        .max(SpillPrecision::Int8.encoded_bytes(max_rows, cols))
}

fn flip_byte(path: &std::path::Path, offset: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[offset] ^= 0xFF;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn spill_payload_bitflip_quarantines_then_recomputes() {
    // A flipped payload byte must fail the CRC as a typed
    // `ChecksumMismatch`, quarantine the slot (a re-read sees it empty,
    // never the corrupted bytes), and a recomputed write-back must
    // restore the bit-exact round trip.
    let path = tmp("spill-flip");
    let file =
        SpillFile::create(&path, 4, 8, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
    let tensor = spill_tensor(1.0);
    file.offload(0, &tensor).unwrap();
    flip_byte(&path, 16 + 5); // inside slot 0's payload, past the header
    let err = file.fetch(0).unwrap_err();
    assert!(
        matches!(err, StorageError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    assert_eq!(file.quarantined(), 1);
    // Quarantined means empty, not reusable garbage.
    let err = file.fetch(0).unwrap_err();
    assert!(
        matches!(err, StorageError::SectionMismatch { .. }),
        "{err:?}"
    );
    // The recompute path: re-offload and the round trip is exact again.
    file.offload(0, &tensor).unwrap();
    assert_eq!(file.fetch(0).unwrap().data(), tensor.data());
    file.cleanup().unwrap();
}

#[test]
fn spill_block_bitflip_quarantines_the_int8_path() {
    // The int8 compute path's encoded round trip gets the same
    // protection: a flipped code byte is a typed checksum failure, not
    // silently wrong scores.
    let path = tmp("spill-blockflip");
    let file =
        SpillFile::create(&path, 2, 8, 16, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
    let block = RowQuantBlock::encode(&spill_tensor(0.7)).unwrap();
    file.offload_block(1, &block).unwrap();
    let reread = file.fetch_block(1).unwrap();
    assert_eq!(reread.codes(), block.codes(), "clean round trip is exact");
    flip_byte(&path, slot_bytes(8, 16) + 16 + 8 * 8 + 3); // a code byte of slot 1
    let err = file.fetch_block(1).unwrap_err();
    assert!(
        matches!(err, StorageError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    assert_eq!(file.quarantined(), 1);
    file.cleanup().unwrap();
}

#[test]
fn spill_header_corruption_is_typed_never_wrong_data() {
    // Flips across the slot header (magic, version, encoding tag, shape
    // fields) must all produce typed errors — whichever validation
    // catches them first — and never a panic or a tensor built from a
    // lying header.
    for offset in [0_usize, 4, 5, 8, 12] {
        let path = tmp(&format!("spill-hdr-{offset}"));
        let file =
            SpillFile::create(&path, 2, 8, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        file.offload(0, &spill_tensor(1.3)).unwrap();
        flip_byte(&path, offset);
        assert!(file.fetch(0).is_err(), "header flip at {offset} fetched Ok");
        file.cleanup().unwrap();
    }
}

#[test]
fn spill_truncation_fails_the_cut_slot_only() {
    // A truncated scratch file (lost tail after a crash) must fail reads
    // of the cut slot with a typed error while intact slots stay
    // readable.
    let path = tmp("spill-trunc");
    let file =
        SpillFile::create(&path, 2, 8, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
    let tensor = spill_tensor(2.1);
    file.offload(0, &tensor).unwrap();
    file.offload(1, &tensor).unwrap();
    let keep = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    keep.set_len((slot_bytes(8, 16) + 24) as u64).unwrap(); // cut into slot 1
    drop(keep);
    assert!(
        file.fetch(1).is_err(),
        "read past EOF must be a typed error"
    );
    assert_eq!(file.fetch(0).unwrap().data(), tensor.data());
    file.cleanup().unwrap();
}

#[test]
fn spill_torn_write_is_caught_by_the_checksum() {
    // A torn write — prefix landed, tail didn't — leaves a plausible
    // header with a stale payload; the CRC trailer catches it and the
    // slot quarantines.
    let path = tmp("spill-torn");
    let file =
        SpillFile::create(&path, 2, 8, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
    file.offload(0, &spill_tensor(0.4)).unwrap();
    let len = SpillPrecision::F32.encoded_bytes(8, 16);
    let mut bytes = std::fs::read(&path).unwrap();
    for b in &mut bytes[len / 2..len] {
        *b = 0;
    }
    std::fs::write(&path, bytes).unwrap();
    let err = file.fetch(0).unwrap_err();
    assert!(
        matches!(err, StorageError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    assert_eq!(file.quarantined(), 1);
    file.cleanup().unwrap();
}

#[test]
fn pipeline_corrupted_fetch_is_typed_then_recomputable() {
    // Both pipeline modes must surface a corrupted slot as the typed
    // checksum error (through the reader lane when overlapped) and
    // accept a recomputed write-back afterwards — the engine's
    // quarantine-and-recompute contract.
    let run = |overlapped: bool, tag: &str| {
        let path = tmp(&format!("spill-pipe-{tag}"));
        let file =
            SpillFile::create(&path, 2, 8, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let tensor = spill_tensor(1.9);
        let mut pipe = if overlapped {
            SpillPipeline::overlapped(file).unwrap()
        } else {
            SpillPipeline::synchronous(file)
        };
        pipe.write_back(0, tensor.clone()).unwrap();
        pipe.drain().unwrap();
        fault::corrupt_fetches_under(path.to_string_lossy().into_owned(), 1);
        pipe.prefetch(0).unwrap();
        let err = pipe.fetch(0).unwrap_err();
        assert!(
            matches!(err, StorageError::ChecksumMismatch { .. }),
            "{err:?}"
        );
        fault::reset();
        pipe.write_back(0, tensor.clone()).unwrap();
        assert_eq!(pipe.fetch(0).unwrap().data(), tensor.data());
        pipe.cleanup().unwrap();
    };
    run(false, "sync");
    run(true, "over");
}

#[test]
fn concurrent_streamers_share_one_container_file() {
    // Two streamers over the same file must not interfere (independent
    // handles, positioned reads).
    let path = tmp("concurrent");
    write_container(&path, 6);
    let c = Container::open(&path).unwrap();
    let names: Vec<String> = (0..6).map(|i| format!("layer.{i}")).collect();
    let mut s1 = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    let mut s2 = LayerStreamer::new(&c, &names, 2, Throttle::unlimited()).unwrap();
    for i in 0..6 {
        let a = s1.next().unwrap().unwrap();
        let b = s2.next().unwrap().unwrap();
        assert_eq!(a.bytes, b.bytes, "section {i} diverged across streamers");
        s1.recycle(a).unwrap();
        s2.recycle(b).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}
