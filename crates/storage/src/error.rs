//! Error type for storage operations.

use std::fmt;

/// Errors produced by container parsing, streaming and caching.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `PRSM` magic or is structurally
    /// invalid.
    BadFormat {
        /// Human-readable reason.
        reason: String,
    },
    /// A requested section name is absent from the container.
    MissingSection {
        /// The section that was requested.
        name: String,
    },
    /// A section exists but has the wrong kind/shape for the request.
    SectionMismatch {
        /// The section that was requested.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A spill slot's stored CRC32 does not match its payload: the slot
    /// was quarantined and its contents must be recomputed, not used.
    ChecksumMismatch {
        /// The spill slot whose checksum failed.
        slot: usize,
        /// Human-readable detail (stored vs computed CRC).
        reason: String,
    },
    /// The background I/O thread disappeared (panic or channel closed).
    StreamerGone,
    /// Tensor-level error while decoding a section.
    Tensor(prism_tensor::TensorError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadFormat { reason } => write!(f, "bad container format: {reason}"),
            StorageError::MissingSection { name } => write!(f, "missing section: {name}"),
            StorageError::SectionMismatch { name, reason } => {
                write!(f, "section {name} mismatch: {reason}")
            }
            StorageError::ChecksumMismatch { slot, reason } => {
                write!(f, "spill slot {slot} checksum mismatch: {reason}")
            }
            StorageError::StreamerGone => write!(f, "layer streamer I/O thread terminated"),
            StorageError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<prism_tensor::TensorError> for StorageError {
    fn from(e: prism_tensor::TensorError) -> Self {
        StorageError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StorageError::MissingSection {
            name: "layer.3".into(),
        };
        assert!(e.to_string().contains("layer.3"));
        let e = StorageError::BadFormat {
            reason: "truncated".into(),
        };
        assert!(e.to_string().contains("truncated"));
        let e = StorageError::StreamerGone;
        assert!(e.to_string().contains("thread"));
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = StorageError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
