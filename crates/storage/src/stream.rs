//! Overlapped layer streaming: the dual-buffer weight prefetcher (§4.2).
//!
//! A [`LayerStreamer`] owns a background I/O thread and a small pool of
//! reusable byte buffers (two by default — the paper's "dual-layer sliding
//! window"). Sections are prefetched in order: while the consumer computes
//! on section *i*, the I/O thread fills a free buffer with section *i+1*.
//! Returning a consumed section recycles its buffer, which immediately
//! triggers the prefetch of section *i+2*.
//!
//! The streamer records how long the consumer actually blocked in
//! [`LayerStreamer::next`] versus how long the I/O thread spent reading, so
//! experiments can quantify the overlap window directly.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::{Container, Result, SectionMeta, StorageError, Throttle};

/// A section payload handed to the consumer.
#[derive(Debug)]
pub struct LoadedSection {
    /// Index into the streamed section list.
    pub index: usize,
    /// Metadata of the loaded section.
    pub meta: SectionMeta,
    /// The payload bytes (recycled buffer; length == `meta.len`).
    pub bytes: Vec<u8>,
    /// Time the I/O thread spent filling this buffer, in microseconds.
    pub io_micros: u64,
}

/// Aggregate streaming statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Sections delivered so far.
    pub sections: u64,
    /// Total bytes read from disk.
    pub bytes: u64,
    /// Total microseconds the I/O thread spent in reads.
    pub io_micros: u64,
    /// Total microseconds the consumer blocked waiting in `next()`.
    pub wait_micros: u64,
}

impl StreamStats {
    /// Fraction of I/O time hidden behind computation, in `[0, 1]`.
    ///
    /// `1.0` means the consumer never waited (perfect overlap, the paper's
    /// "no latency penalty" claim); `0.0` means fully synchronous I/O.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.io_micros == 0 {
            return 1.0;
        }
        let hidden = self.io_micros.saturating_sub(self.wait_micros);
        hidden as f64 / self.io_micros as f64
    }
}

enum IoRequest {
    Load { index: usize, buffer: Vec<u8> },
    Shutdown,
}

struct IoResponse {
    index: usize,
    meta: SectionMeta,
    bytes: Vec<u8>,
    io_micros: u64,
    error: Option<StorageError>,
}

/// Dual-buffer streaming prefetcher over an ordered list of sections.
pub struct LayerStreamer {
    req_tx: Sender<IoRequest>,
    resp_rx: Receiver<IoResponse>,
    io_thread: Option<std::thread::JoinHandle<()>>,
    total_sections: usize,
    next_to_schedule: usize,
    next_to_deliver: usize,
    buffer_bytes: usize,
    stats: StreamStats,
    /// Out-of-order arrivals parked until their turn.
    parked: Vec<IoResponse>,
}

impl LayerStreamer {
    /// Creates a streamer over the named sections of `container`, in order.
    ///
    /// `depth` is the number of in-flight buffers (the paper uses 2: one
    /// computing, one loading). The container handle is reopened so the I/O
    /// thread owns an independent file cursor.
    pub fn new(
        container: &Container,
        section_names: &[String],
        depth: usize,
        throttle: Throttle,
    ) -> Result<Self> {
        let depth = depth.max(1);
        let metas: Vec<SectionMeta> = section_names
            .iter()
            .map(|n| container.section(n).cloned())
            .collect::<Result<_>>()?;
        let io_container = container.reopen()?;
        let metas = Arc::new(metas);
        let (req_tx, req_rx) = bounded::<IoRequest>(depth + 1);
        let (resp_tx, resp_rx) = bounded::<IoResponse>(depth + 1);
        let thread_metas = Arc::clone(&metas);
        let io_thread = std::thread::Builder::new()
            .name("prism-io".into())
            .spawn(move || {
                io_loop(&io_container, &thread_metas, throttle, &req_rx, &resp_tx);
            })
            .map_err(StorageError::Io)?;

        let mut streamer = LayerStreamer {
            req_tx,
            resp_rx,
            io_thread: Some(io_thread),
            total_sections: metas.len(),
            next_to_schedule: 0,
            next_to_deliver: 0,
            buffer_bytes: 0,
            stats: StreamStats::default(),
            parked: Vec::new(),
        };
        // Prime the pipeline with `depth` buffers.
        for _ in 0..depth {
            streamer.schedule(Vec::new())?;
        }
        Ok(streamer)
    }

    fn schedule(&mut self, buffer: Vec<u8>) -> Result<()> {
        if self.next_to_schedule >= self.total_sections {
            // Nothing left; drop the buffer.
            self.buffer_bytes = self.buffer_bytes.saturating_sub(buffer.capacity());
            return Ok(());
        }
        self.buffer_bytes = self.buffer_bytes.saturating_sub(buffer.capacity());
        let index = self.next_to_schedule;
        self.next_to_schedule += 1;
        self.req_tx
            .send(IoRequest::Load { index, buffer })
            .map_err(|_| StorageError::StreamerGone)
    }

    /// Delivers the next section in order, blocking until it is loaded.
    ///
    /// Returns `Ok(None)` once all sections have been delivered.
    // The streamer is deliberately not an `Iterator`: `next` is fallible
    // and buffers must flow back through `recycle`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<LoadedSection>> {
        if self.next_to_deliver >= self.total_sections {
            return Ok(None);
        }
        let wanted = self.next_to_deliver;
        let wait_start = Instant::now();
        let resp = loop {
            if let Some(pos) = self.parked.iter().position(|r| r.index == wanted) {
                break self.parked.swap_remove(pos);
            }
            let resp = self
                .resp_rx
                .recv()
                .map_err(|_| StorageError::StreamerGone)?;
            if resp.index == wanted {
                break resp;
            }
            self.parked.push(resp);
        };
        self.stats.wait_micros += wait_start.elapsed().as_micros() as u64;
        if let Some(err) = resp.error {
            return Err(err);
        }
        self.next_to_deliver += 1;
        self.stats.sections += 1;
        self.stats.bytes += resp.meta.len;
        self.stats.io_micros += resp.io_micros;
        self.buffer_bytes += resp.bytes.capacity();
        Ok(Some(LoadedSection {
            index: resp.index,
            meta: resp.meta,
            bytes: resp.bytes,
            io_micros: resp.io_micros,
        }))
    }

    /// Returns a consumed section's buffer to the pool, immediately
    /// scheduling the next outstanding section into it.
    pub fn recycle(&mut self, section: LoadedSection) -> Result<()> {
        self.schedule(section.bytes)
    }

    /// Streaming statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Peak bytes held in consumer-visible buffers right now.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer_bytes
    }
}

impl Drop for LayerStreamer {
    fn drop(&mut self) {
        let _ = self.req_tx.send(IoRequest::Shutdown);
        // Drain any outstanding responses so the I/O thread can exit its send.
        while self.resp_rx.try_recv().is_ok() {}
        if let Some(handle) = self.io_thread.take() {
            let _ = handle.join();
        }
    }
}

fn io_loop(
    container: &Container,
    metas: &[SectionMeta],
    throttle: Throttle,
    req_rx: &Receiver<IoRequest>,
    resp_tx: &Sender<IoResponse>,
) {
    while let Ok(req) = req_rx.recv() {
        match req {
            IoRequest::Shutdown => break,
            IoRequest::Load { index, mut buffer } => {
                let meta = metas[index].clone();
                let start = Instant::now();
                buffer.resize(meta.len as usize, 0);
                let error = container.read_range(&meta, 0, &mut buffer).err();
                throttle.pace(start, meta.len);
                let io_micros = start.elapsed().as_micros() as u64;
                let resp = IoResponse {
                    index,
                    meta,
                    bytes: buffer,
                    io_micros,
                    error,
                };
                if resp_tx.send(resp).is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContainerWriter, SectionKind};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-stream-{}-{}", std::process::id(), name));
        p
    }

    fn make_container(path: &PathBuf, layers: usize, bytes_per_layer: usize) -> Container {
        let mut w = ContainerWriter::create(path);
        for i in 0..layers {
            let payload = vec![i as u8; bytes_per_layer];
            w.add_raw(&format!("layer.{i}"), SectionKind::Raw, 0, 0, payload);
        }
        w.finish().unwrap();
        Container::open(path).unwrap()
    }

    fn layer_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("layer.{i}")).collect()
    }

    #[test]
    fn streams_all_sections_in_order() {
        let path = tmp("order");
        let c = make_container(&path, 6, 128);
        let mut s = LayerStreamer::new(&c, &layer_names(6), 2, Throttle::unlimited()).unwrap();
        for i in 0..6 {
            let sec = s.next().unwrap().expect("section available");
            assert_eq!(sec.index, i);
            assert_eq!(sec.meta.name, format!("layer.{i}"));
            assert!(sec.bytes.iter().all(|&b| b == i as u8));
            s.recycle(sec).unwrap();
        }
        assert!(s.next().unwrap().is_none());
        assert_eq!(s.stats().sections, 6);
        assert_eq!(s.stats().bytes, 6 * 128);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overlap_hides_io_when_compute_dominates() {
        let path = tmp("overlap");
        let per_layer = 64 * 1024;
        let c = make_container(&path, 8, per_layer);
        // ~8 MB/s -> 8 ms per 64 KiB layer.
        let throttle = Throttle::bandwidth(8 * 1024 * 1024);
        let mut s = LayerStreamer::new(&c, &layer_names(8), 2, throttle).unwrap();
        let mut checksum = 0_u64;
        for _ in 0..8 {
            let sec = s.next().unwrap().unwrap();
            // "Compute" longer than one layer's I/O time.
            let start = Instant::now();
            while start.elapsed() < std::time::Duration::from_millis(12) {
                checksum = checksum.wrapping_add(sec.bytes.iter().map(|&b| b as u64).sum::<u64>());
            }
            s.recycle(sec).unwrap();
        }
        let stats = s.stats();
        // First layer is never hidden, the remaining seven should be.
        assert!(
            stats.overlap_efficiency() > 0.5,
            "overlap efficiency too low: {:?} (checksum {checksum})",
            stats
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exposes_wait_when_io_dominates() {
        let path = tmp("iowait");
        let per_layer = 256 * 1024;
        let c = make_container(&path, 4, per_layer);
        // 2 MB/s -> 128 ms per layer, while compute is ~zero.
        let throttle = Throttle::bandwidth(2 * 1024 * 1024);
        let mut s = LayerStreamer::new(&c, &layer_names(4), 2, throttle).unwrap();
        while let Some(sec) = s.next().unwrap() {
            s.recycle(sec).unwrap();
        }
        let stats = s.stats();
        assert!(stats.wait_micros > 100_000, "wait too small: {stats:?}");
        assert!(stats.overlap_efficiency() < 0.9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn depth_bounds_resident_buffers() {
        let path = tmp("depth");
        let per_layer = 32 * 1024;
        let c = make_container(&path, 10, per_layer);
        let mut s = LayerStreamer::new(&c, &layer_names(10), 2, Throttle::unlimited()).unwrap();
        let mut max_live = 0_usize;
        for _ in 0..10 {
            let sec = s.next().unwrap().unwrap();
            max_live = max_live.max(s.buffered_bytes());
            s.recycle(sec).unwrap();
        }
        // Consumer-visible buffers never exceed ~one layer (the other buffer
        // lives inside the I/O pipeline).
        assert!(max_live <= 2 * per_layer, "max_live {max_live}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_section_fails_fast() {
        let path = tmp("missing");
        let c = make_container(&path, 2, 16);
        let err = LayerStreamer::new(
            &c,
            &["layer.0".to_string(), "nope".to_string()],
            2,
            Throttle::unlimited(),
        );
        assert!(err.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drop_mid_stream_is_clean() {
        let path = tmp("dropmid");
        let c = make_container(&path, 8, 64 * 1024);
        let mut s =
            LayerStreamer::new(&c, &layer_names(8), 2, Throttle::bandwidth(4 << 20)).unwrap();
        let sec = s.next().unwrap().unwrap();
        drop(sec);
        drop(s); // Must join the I/O thread without deadlock.
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_overlap_efficiency_edge_cases() {
        let empty = StreamStats::default();
        assert_eq!(empty.overlap_efficiency(), 1.0);
        let all_hidden = StreamStats {
            sections: 2,
            bytes: 10,
            io_micros: 100,
            wait_micros: 0,
        };
        assert_eq!(all_hidden.overlap_efficiency(), 1.0);
        let none_hidden = StreamStats {
            sections: 2,
            bytes: 10,
            io_micros: 100,
            wait_micros: 100,
        };
        assert_eq!(none_hidden.overlap_efficiency(), 0.0);
        let over = StreamStats {
            sections: 1,
            bytes: 1,
            io_micros: 50,
            wait_micros: 80,
        };
        assert_eq!(over.overlap_efficiency(), 0.0);
    }
}
