//! Slot-based spill files for offloaded hidden states (§4.3).
//!
//! Under extreme memory pressure PRISM offloads per-chunk hidden states to
//! disk, keeping at most three chunks resident (computing / offloading /
//! prefetching). [`SpillFile`] provides the disk side: fixed-size slots in a
//! scratch file, written and read back with positioned I/O, with byte
//! accounting for the memory model.

use std::fs::{File, OpenOptions};

use std::path::{Path, PathBuf};
use std::time::Instant;

use prism_tensor::Tensor;

use crate::{Result, StorageError, Throttle};

/// A scratch file divided into equal `f32` slots for spilled tensors.
pub struct SpillFile {
    path: PathBuf,
    file: File,
    slot_floats: usize,
    slots: usize,
    /// Shape of the tensor stored in each occupied slot.
    shapes: Vec<Option<(usize, usize)>>,
    throttle: Throttle,
    write_micros: u64,
    read_micros: u64,
    bytes_written: u64,
    bytes_read: u64,
}

impl SpillFile {
    /// Creates a spill file at `path` with `slots` slots of `slot_floats`
    /// `f32` elements each.
    pub fn create(
        path: impl AsRef<Path>,
        slots: usize,
        slot_floats: usize,
        throttle: Throttle,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len((slots * slot_floats * 4) as u64)?;
        Ok(SpillFile {
            path,
            file,
            slot_floats,
            slots,
            shapes: vec![None; slots],
            throttle,
            write_micros: 0,
            read_micros: 0,
            bytes_written: 0,
            bytes_read: 0,
        })
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Capacity of each slot in `f32` elements.
    pub fn slot_floats(&self) -> usize {
        self.slot_floats
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read back so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Microseconds spent in spill writes.
    pub fn write_micros(&self) -> u64 {
        self.write_micros
    }

    /// Microseconds spent in spill reads.
    pub fn read_micros(&self) -> u64 {
        self.read_micros
    }

    /// Writes `tensor` into `slot`, replacing previous contents.
    pub fn offload(&mut self, slot: usize, tensor: &Tensor) -> Result<()> {
        if slot >= self.slots {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} out of {}", self.slots),
            });
        }
        if tensor.len() > self.slot_floats {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!(
                    "tensor of {} floats exceeds slot capacity {}",
                    tensor.len(),
                    self.slot_floats
                ),
            });
        }
        let start = Instant::now();
        let mut bytes = Vec::with_capacity(tensor.len() * 4);
        for &v in tensor.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        write_at(&mut self.file, (slot * self.slot_floats * 4) as u64, &bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.write_micros += start.elapsed().as_micros() as u64;
        self.bytes_written += bytes.len() as u64;
        self.shapes[slot] = Some(tensor.shape());
        Ok(())
    }

    /// Reads the tensor stored in `slot` back into memory.
    pub fn fetch(&mut self, slot: usize) -> Result<Tensor> {
        if slot >= self.slots {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} out of {}", self.slots),
            });
        }
        let (rows, cols) = self.shapes[slot].ok_or_else(|| StorageError::SectionMismatch {
            name: "spill".into(),
            reason: format!("slot {slot} is empty"),
        })?;
        let start = Instant::now();
        let mut bytes = vec![0_u8; rows * cols * 4];
        read_at(&self.file, (slot * self.slot_floats * 4) as u64, &mut bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.read_micros += start.elapsed().as_micros() as u64;
        self.bytes_read += bytes.len() as u64;
        let mut data = Vec::with_capacity(rows * cols);
        for chunk in bytes.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(Tensor::from_vec(rows, cols, data)?)
    }

    /// Marks a slot empty (no I/O).
    pub fn release(&mut self, slot: usize) {
        if slot < self.slots {
            self.shapes[slot] = None;
        }
    }

    /// Removes the backing scratch file.
    pub fn cleanup(self) -> Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

#[cfg(unix)]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &mut File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_at(file: &mut File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-spill-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn offload_fetch_round_trip() {
        let path = tmp("rt");
        let mut spill = SpillFile::create(&path, 3, 64, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.25);
        spill.offload(1, &t).unwrap();
        let back = spill.fetch(1).unwrap();
        assert_eq!(back, t);
        assert_eq!(spill.bytes_written(), 4 * 8 * 4);
        assert_eq!(spill.bytes_read(), 4 * 8 * 4);
        spill.cleanup().unwrap();
    }

    #[test]
    fn slots_are_independent() {
        let path = tmp("indep");
        let mut spill = SpillFile::create(&path, 2, 16, Throttle::unlimited()).unwrap();
        let a = Tensor::full(2, 8, 1.0);
        let b = Tensor::full(4, 4, 2.0);
        spill.offload(0, &a).unwrap();
        spill.offload(1, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), a);
        assert_eq!(spill.fetch(1).unwrap(), b);
        // Overwrite keeps the new shape.
        spill.offload(0, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), b);
        spill.cleanup().unwrap();
    }

    #[test]
    fn oversize_and_bad_slot_rejected() {
        let path = tmp("bad");
        let mut spill = SpillFile::create(&path, 1, 8, Throttle::unlimited()).unwrap();
        let big = Tensor::zeros(3, 3);
        assert!(spill.offload(0, &big).is_err());
        let ok = Tensor::zeros(2, 4);
        assert!(spill.offload(1, &ok).is_err());
        assert!(spill.fetch(0).is_err(), "empty slot fetch must fail");
        spill.cleanup().unwrap();
    }

    #[test]
    fn release_empties_slot() {
        let path = tmp("release");
        let mut spill = SpillFile::create(&path, 1, 8, Throttle::unlimited()).unwrap();
        spill.offload(0, &Tensor::zeros(2, 4)).unwrap();
        spill.release(0);
        assert!(spill.fetch(0).is_err());
        spill.cleanup().unwrap();
    }

    #[test]
    fn throttled_spill_takes_time() {
        let path = tmp("throttle");
        // 1 MB/s: a 1 KiB write should take ~1 ms.
        let mut spill = SpillFile::create(&path, 1, 256, Throttle::bandwidth(1 << 20)).unwrap();
        let t = Tensor::zeros(16, 16);
        let start = Instant::now();
        spill.offload(0, &t).unwrap();
        assert!(start.elapsed().as_micros() >= 900);
        assert!(spill.write_micros() >= 900);
        spill.cleanup().unwrap();
    }
}
