//! Slot-based spill files for offloaded hidden states (§4.3).
//!
//! Under extreme memory pressure PRISM offloads per-chunk hidden states to
//! disk, keeping at most three chunks resident (computing / offloading /
//! prefetching). [`SpillFile`] provides the disk side: fixed-size slots in
//! a scratch file, written and read back with positioned I/O, with byte
//! accounting for the memory model.
//!
//! # Slot format (version 2)
//!
//! Every occupied slot starts with a 16-byte header:
//!
//! ```text
//! magic "PSPL" | version u8 (=2) | encoding u8 | pad u16 | rows u32 | cols u32
//! ```
//!
//! followed by the payload the encoding dictates:
//!
//! * [`SpillPrecision::F32`] — `rows * cols` little-endian `f32`s (the
//!   historical raw format; round-trips bit-exactly),
//! * [`SpillPrecision::Int8`] — `rows` f32 row minima, `rows` f32 row
//!   scales, then `rows * cols` u8 codes ([`prism_tensor::rowq`]): ~4x
//!   fewer bytes through the bandwidth throttle at a per-element error
//!   bounded by `scale / 2`.
//!
//! The API takes `&self`: slot metadata sits behind a mutex and the byte
//! counters are atomics, so the overlapped spill pipeline's reader and
//! writer lanes can share one file through an `Arc`.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use prism_tensor::igemm::RowQuantBlock;
use prism_tensor::{rowq, Tensor};
use serde::Serialize;

use crate::{Result, StorageError, Throttle};

/// Precision of hidden states written to the spill file.
///
/// Carried per request on the engine's `RequestOptions`: the default
/// [`SpillPrecision::Int8`] compresses the offload window's disk traffic
/// 4x, while [`SpillPrecision::F32`] opts out for workloads that need the
/// spill round trip bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum SpillPrecision {
    /// Per-row affine u8 codes plus `(min, scale)` metadata (~4x fewer
    /// bytes; error `<= scale / 2` per element).
    #[default]
    Int8,
    /// Raw little-endian `f32` (bit-exact round trip).
    F32,
}

impl SpillPrecision {
    /// Exact on-disk bytes (header included) of a `rows x cols` tensor
    /// encoded at this precision — also the cost model's spill-byte term.
    pub fn encoded_bytes(self, rows: usize, cols: usize) -> usize {
        HEADER_BYTES
            + match self {
                SpillPrecision::F32 => 4 * rows * cols,
                SpillPrecision::Int8 => 8 * rows + rows * cols,
            }
    }

    fn tag(self) -> u8 {
        match self {
            SpillPrecision::Int8 => 1,
            SpillPrecision::F32 => 0,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SpillPrecision::F32),
            1 => Some(SpillPrecision::Int8),
            _ => None,
        }
    }
}

const MAGIC: [u8; 4] = *b"PSPL";
const VERSION: u8 = 2;
const HEADER_BYTES: usize = 16;

#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    rows: usize,
    cols: usize,
    enc: SpillPrecision,
    /// Total on-disk bytes of the slot's current payload, header included.
    len: usize,
}

/// A scratch file divided into equal-capacity versioned slots.
pub struct SpillFile {
    path: PathBuf,
    file: File,
    slots: usize,
    max_rows: usize,
    cols: usize,
    slot_bytes: usize,
    precision: SpillPrecision,
    meta: Mutex<Vec<Option<SlotMeta>>>,
    throttle: Throttle,
    write_micros: AtomicU64,
    read_micros: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SpillFile {
    /// Creates a spill file at `path` with `slots` slots, each sized for
    /// a tensor of up to `max_rows` rows by exactly `cols` columns at
    /// either precision.
    pub fn create(
        path: impl AsRef<Path>,
        slots: usize,
        max_rows: usize,
        cols: usize,
        precision: SpillPrecision,
        throttle: Throttle,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // A slot must hold the largest tensor at either encoding, so a
        // per-slot precision downgrade (or a future per-request mix)
        // can never overflow its neighbour.
        let slot_bytes = SpillPrecision::F32
            .encoded_bytes(max_rows, cols)
            .max(SpillPrecision::Int8.encoded_bytes(max_rows, cols));
        file.set_len((slots * slot_bytes) as u64)?;
        Ok(SpillFile {
            path,
            file,
            slots,
            max_rows,
            cols,
            slot_bytes,
            precision,
            meta: Mutex::new(vec![None; slots]),
            throttle,
            write_micros: AtomicU64::new(0),
            read_micros: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Maximum tensor rows a slot can hold.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Column count every stored tensor must have.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The precision tensors are encoded at.
    pub fn precision(&self) -> SpillPrecision {
        self.precision
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read back so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Microseconds spent in spill writes.
    pub fn write_micros(&self) -> u64 {
        self.write_micros.load(Ordering::Relaxed)
    }

    /// Microseconds spent in spill reads.
    pub fn read_micros(&self) -> u64 {
        self.read_micros.load(Ordering::Relaxed)
    }

    fn bad_slot(&self, slot: usize) -> StorageError {
        StorageError::SectionMismatch {
            name: "spill".into(),
            reason: format!("slot {slot} out of {}", self.slots),
        }
    }

    /// Writes `tensor` into `slot` at the file's precision, replacing
    /// previous contents. Returns the encoded byte count.
    pub fn offload(&self, slot: usize, tensor: &Tensor) -> Result<u64> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let (rows, cols) = tensor.shape();
        if cols != self.cols || rows > self.max_rows {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!(
                    "tensor {rows}x{cols} exceeds slot capacity {}x{}",
                    self.max_rows, self.cols
                ),
            });
        }
        let enc = self.precision;
        let len = enc.encoded_bytes(rows, cols);
        let start = Instant::now();
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(enc.tag());
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        bytes.extend_from_slice(&(cols as u32).to_le_bytes());
        match enc {
            SpillPrecision::F32 => {
                for &v in tensor.data() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            SpillPrecision::Int8 => {
                let mut mins = Vec::with_capacity(rows);
                let mut scales = Vec::with_capacity(rows);
                let mut codes = vec![0_u8; rows * cols];
                for r in 0..rows {
                    let (min, scale) = rowq::encode_row(
                        &tensor.data()[r * cols..(r + 1) * cols],
                        &mut codes[r * cols..(r + 1) * cols],
                    )
                    .map_err(|e| StorageError::SectionMismatch {
                        name: "spill".into(),
                        reason: format!("row encode: {e}"),
                    })?;
                    mins.push(min);
                    scales.push(scale);
                }
                for &m in &mins {
                    bytes.extend_from_slice(&m.to_le_bytes());
                }
                for &s in &scales {
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
                bytes.extend_from_slice(&codes);
            }
        }
        debug_assert_eq!(bytes.len(), len);
        write_at(&self.file, (slot * self.slot_bytes) as u64, &bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.write_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.meta.lock().expect("spill meta lock")[slot] = Some(SlotMeta {
            rows,
            cols,
            enc,
            len,
        });
        Ok(len as u64)
    }

    /// Reads the tensor stored in `slot` back into memory, decoding per
    /// the slot's recorded encoding.
    pub fn fetch(&self, slot: usize) -> Result<Tensor> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let meta = self.meta.lock().expect("spill meta lock")[slot].ok_or_else(|| {
            StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} is empty"),
            }
        })?;
        let start = Instant::now();
        let mut bytes = vec![0_u8; meta.len];
        read_at(&self.file, (slot * self.slot_bytes) as u64, &mut bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.read_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);

        let corrupt = |reason: String| StorageError::SectionMismatch {
            name: "spill".into(),
            reason,
        };
        if bytes[0..4] != MAGIC || bytes[4] != VERSION {
            return Err(corrupt(format!("slot {slot}: bad header")));
        }
        let enc = SpillPrecision::from_tag(bytes[5])
            .ok_or_else(|| corrupt(format!("slot {slot}: unknown encoding {}", bytes[5])))?;
        let rows = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if enc != meta.enc || rows != meta.rows || cols != meta.cols {
            return Err(corrupt(format!("slot {slot}: header/metadata mismatch")));
        }
        let payload = &bytes[HEADER_BYTES..];
        let mut data = vec![0.0_f32; rows * cols];
        match enc {
            SpillPrecision::F32 => {
                for (o, chunk) in data.iter_mut().zip(payload.chunks_exact(4)) {
                    *o = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
            }
            SpillPrecision::Int8 => {
                let read_f32 = |b: &[u8], i: usize| {
                    f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                };
                let (mins, rest) = payload.split_at(4 * rows);
                let (scales, codes) = rest.split_at(4 * rows);
                for r in 0..rows {
                    rowq::decode_row(
                        &codes[r * cols..(r + 1) * cols],
                        read_f32(mins, r),
                        read_f32(scales, r),
                        &mut data[r * cols..(r + 1) * cols],
                    )
                    .map_err(|e| corrupt(format!("slot {slot}: row decode: {e}")))?;
                }
            }
        }
        Ok(Tensor::from_vec(rows, cols, data)?)
    }

    /// Writes an already-encoded rowq block into `slot` — the int8
    /// compute path's write-back, which skips the encode the f32
    /// [`SpillFile::offload`] would redo. The slot is tagged
    /// [`SpillPrecision::Int8`] regardless of the file's default
    /// precision (the payload *is* the int8 wire format).
    pub fn offload_block(&self, slot: usize, block: &RowQuantBlock) -> Result<u64> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let (rows, cols) = (block.rows(), block.cols());
        if cols != self.cols || rows > self.max_rows {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!(
                    "block {rows}x{cols} exceeds slot capacity {}x{}",
                    self.max_rows, self.cols
                ),
            });
        }
        let enc = SpillPrecision::Int8;
        let len = enc.encoded_bytes(rows, cols);
        let start = Instant::now();
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(enc.tag());
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        bytes.extend_from_slice(&(cols as u32).to_le_bytes());
        for &m in block.mins() {
            bytes.extend_from_slice(&m.to_le_bytes());
        }
        for &s in block.scales() {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        bytes.extend_from_slice(block.codes());
        debug_assert_eq!(bytes.len(), len);
        write_at(&self.file, (slot * self.slot_bytes) as u64, &bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.write_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.meta.lock().expect("spill meta lock")[slot] = Some(SlotMeta {
            rows,
            cols,
            enc,
            len,
        });
        Ok(len as u64)
    }

    /// Reads `slot` back as a rowq block *without* decoding to f32 —
    /// the int8 compute path's fetch. An [`SpillPrecision::Int8`] slot
    /// returns its payload verbatim (bit-exact round trip of
    /// [`SpillFile::offload_block`]); an f32 slot is decoded and then
    /// row-encoded, so mixed-precision files still serve block fetches.
    pub fn fetch_block(&self, slot: usize) -> Result<RowQuantBlock> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let meta = self.meta.lock().expect("spill meta lock")[slot].ok_or_else(|| {
            StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} is empty"),
            }
        })?;
        if meta.enc == SpillPrecision::F32 {
            let tensor = self.fetch(slot)?;
            return RowQuantBlock::encode(&tensor).map_err(|e| StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot}: re-encode: {e}"),
            });
        }
        let start = Instant::now();
        let mut bytes = vec![0_u8; meta.len];
        read_at(&self.file, (slot * self.slot_bytes) as u64, &mut bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.read_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);

        let corrupt = |reason: String| StorageError::SectionMismatch {
            name: "spill".into(),
            reason,
        };
        if bytes[0..4] != MAGIC || bytes[4] != VERSION {
            return Err(corrupt(format!("slot {slot}: bad header")));
        }
        let enc = SpillPrecision::from_tag(bytes[5])
            .ok_or_else(|| corrupt(format!("slot {slot}: unknown encoding {}", bytes[5])))?;
        let rows = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if enc != meta.enc || rows != meta.rows || cols != meta.cols {
            return Err(corrupt(format!("slot {slot}: header/metadata mismatch")));
        }
        let payload = &bytes[HEADER_BYTES..];
        let read_f32 =
            |b: &[u8], i: usize| f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4"));
        let (minb, rest) = payload.split_at(4 * rows);
        let (scaleb, codes) = rest.split_at(4 * rows);
        let mins = (0..rows).map(|r| read_f32(minb, r)).collect();
        let scales = (0..rows).map(|r| read_f32(scaleb, r)).collect();
        RowQuantBlock::from_parts(rows, cols, mins, scales, codes.to_vec())
            .map_err(|e| corrupt(format!("slot {slot}: block parts: {e}")))
    }

    /// Marks a slot empty (no I/O).
    pub fn release(&self, slot: usize) {
        if slot < self.slots {
            self.meta.lock().expect("spill meta lock")[slot] = None;
        }
    }

    /// Removes the backing scratch file.
    pub fn cleanup(self) -> Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

#[cfg(unix)]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_at(file: &File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-spill-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn f32_offload_fetch_round_trip_is_bit_exact() {
        let path = tmp("rt");
        let spill =
            SpillFile::create(&path, 3, 4, 8, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.25);
        spill.offload(1, &t).unwrap();
        let back = spill.fetch(1).unwrap();
        assert_eq!(back, t);
        let expected = (HEADER_BYTES + 4 * 8 * 4) as u64;
        assert_eq!(spill.bytes_written(), expected);
        assert_eq!(spill.bytes_read(), expected);
        spill.cleanup().unwrap();
    }

    #[test]
    fn int8_round_trip_bounded_and_4x_smaller() {
        let path = tmp("int8");
        let rows = 16;
        let cols = 64;
        let spill = SpillFile::create(
            &path,
            2,
            rows,
            cols,
            SpillPrecision::Int8,
            Throttle::unlimited(),
        )
        .unwrap();
        let t = Tensor::from_fn(rows, cols, |r, c| ((r * 31 + c * 7) as f32 * 0.11).sin());
        let written = spill.offload(0, &t).unwrap();
        let back = spill.fetch(0).unwrap();
        assert_eq!(back.shape(), t.shape());
        // Row error bound: (max-min)/255/2; inputs live in [-1, 1].
        let bound = 2.0 / 255.0 / 2.0 + 1e-6;
        assert!(t.max_abs_diff(&back).unwrap() <= bound);
        // >= 3.5x fewer bytes than the f32 encoding of the same tensor.
        let f32_bytes = SpillPrecision::F32.encoded_bytes(rows, cols) as u64;
        assert!(written * 7 <= f32_bytes * 2, "{written} vs {f32_bytes}");
        spill.cleanup().unwrap();
    }

    #[test]
    fn block_offload_fetch_round_trip_is_bit_exact() {
        let path = tmp("block");
        let spill = SpillFile::create(&path, 2, 8, 32, SpillPrecision::Int8, Throttle::unlimited())
            .unwrap();
        let t = Tensor::from_fn(8, 32, |r, c| ((r * 13 + c * 5) as f32 * 0.23).cos());
        let block = RowQuantBlock::encode(&t).unwrap();
        let written = spill.offload_block(0, &block).unwrap();
        assert_eq!(written, SpillPrecision::Int8.encoded_bytes(8, 32) as u64);
        // The codes round-trip bit-exactly: no decode/re-encode drift.
        let back = spill.fetch_block(0).unwrap();
        assert_eq!(back, block);
        // The same slot decodes through the tensor path too.
        let decoded = spill.fetch(0).unwrap();
        let mut expect = Tensor::zeros(0, 0);
        block.decode_into(&mut expect).unwrap();
        assert_eq!(decoded, expect);
        // Oversized blocks are rejected like oversized tensors.
        let big = RowQuantBlock::encode(&Tensor::zeros(9, 32)).unwrap();
        assert!(spill.offload_block(0, &big).is_err());
        spill.cleanup().unwrap();
    }

    #[test]
    fn block_fetch_of_f32_slot_re_encodes() {
        let path = tmp("blockf32");
        let spill =
            SpillFile::create(&path, 1, 4, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 16, |r, c| ((r + c) as f32 * 0.31).sin());
        spill.offload(0, &t).unwrap();
        let block = spill.fetch_block(0).unwrap();
        assert_eq!(block, RowQuantBlock::encode(&t).unwrap());
        spill.cleanup().unwrap();
    }

    #[test]
    fn slots_are_independent_and_overwrite_keeps_new_shape() {
        let path = tmp("indep");
        let spill =
            SpillFile::create(&path, 2, 4, 4, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let a = Tensor::full(2, 4, 1.0);
        let b = Tensor::full(4, 4, 2.0);
        spill.offload(0, &a).unwrap();
        spill.offload(1, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), a);
        assert_eq!(spill.fetch(1).unwrap(), b);
        spill.offload(0, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), b);
        spill.cleanup().unwrap();
    }

    #[test]
    fn oversize_and_bad_slot_rejected() {
        let path = tmp("bad");
        let spill =
            SpillFile::create(&path, 1, 2, 4, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        // Too many rows.
        assert!(spill.offload(0, &Tensor::zeros(3, 4)).is_err());
        // Wrong column count.
        assert!(spill.offload(0, &Tensor::zeros(2, 3)).is_err());
        // Slot out of range.
        assert!(spill.offload(1, &Tensor::zeros(2, 4)).is_err());
        assert!(spill.fetch(0).is_err(), "empty slot fetch must fail");
        spill.cleanup().unwrap();
    }

    #[test]
    fn release_empties_slot() {
        let path = tmp("release");
        let spill =
            SpillFile::create(&path, 1, 2, 4, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        spill.offload(0, &Tensor::zeros(2, 4)).unwrap();
        spill.release(0);
        assert!(spill.fetch(0).is_err());
        spill.cleanup().unwrap();
    }

    #[test]
    fn throttled_spill_takes_time_and_int8_takes_less() {
        let path = tmp("throttle");
        // 1 MB/s: a ~1 KiB f32 write should take ~1 ms.
        let spill = SpillFile::create(
            &path,
            1,
            16,
            16,
            SpillPrecision::F32,
            Throttle::bandwidth(1 << 20),
        )
        .unwrap();
        let t = Tensor::zeros(16, 16);
        let start = Instant::now();
        spill.offload(0, &t).unwrap();
        assert!(start.elapsed().as_micros() >= 900);
        assert!(spill.write_micros() >= 900);
        spill.cleanup().unwrap();

        let path8 = tmp("throttle8");
        let spill8 = SpillFile::create(
            &path8,
            1,
            16,
            16,
            SpillPrecision::Int8,
            Throttle::bandwidth(1 << 20),
        )
        .unwrap();
        let start = Instant::now();
        spill8.offload(0, &t).unwrap();
        // ~400 bytes instead of ~1 KiB: well under the f32 pace.
        assert!(start.elapsed().as_micros() < 900);
        spill8.cleanup().unwrap();
    }

    #[test]
    fn encoded_bytes_matches_contract() {
        assert_eq!(
            SpillPrecision::F32.encoded_bytes(3, 8),
            HEADER_BYTES + 3 * 8 * 4
        );
        assert_eq!(
            SpillPrecision::Int8.encoded_bytes(3, 8),
            HEADER_BYTES + 3 * 8 + 3 * 8
        );
        // Default is the compressed format.
        assert_eq!(SpillPrecision::default(), SpillPrecision::Int8);
    }
}
