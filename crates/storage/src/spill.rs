//! Slot-based spill files for offloaded hidden states (§4.3).
//!
//! Under extreme memory pressure PRISM offloads per-chunk hidden states to
//! disk, keeping at most three chunks resident (computing / offloading /
//! prefetching). [`SpillFile`] provides the disk side: fixed-size slots in
//! a scratch file, written and read back with positioned I/O, with byte
//! accounting for the memory model.
//!
//! # Slot format (version 3)
//!
//! Every occupied slot starts with a 16-byte header:
//!
//! ```text
//! magic "PSPL" | version u8 (=3) | encoding u8 | pad u16 | rows u32 | cols u32
//! ```
//!
//! followed by the payload the encoding dictates:
//!
//! * [`SpillPrecision::F32`] — `rows * cols` little-endian `f32`s (the
//!   historical raw format; round-trips bit-exactly),
//! * [`SpillPrecision::Int8`] — `rows` f32 row minima, `rows` f32 row
//!   scales, then `rows * cols` u8 codes ([`prism_tensor::rowq`]): ~4x
//!   fewer bytes through the bandwidth throttle at a per-element error
//!   bounded by `scale / 2`,
//!
//! and a trailing little-endian CRC32 (IEEE) over header + payload.
//! Every fetch verifies the checksum; a mismatch **quarantines** the slot
//! (marks it empty, bumps [`SpillFile::quarantined`]) and returns
//! [`StorageError::ChecksumMismatch`] so the engine can recompute the
//! chunk from weights instead of propagating silently corrupted scores.
//! Version-2 slots (no trailer) are still readable — their payload length
//! is derived from the header, and verification is skipped.
//!
//! The API takes `&self`: slot metadata sits behind a mutex and the byte
//! counters are atomics, so the overlapped spill pipeline's reader and
//! writer lanes can share one file through an `Arc`.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use prism_tensor::igemm::RowQuantBlock;
use prism_tensor::{rowq, Tensor};
use serde::Serialize;

use crate::{Result, StorageError, Throttle};

/// Precision of hidden states written to the spill file.
///
/// Carried per request on the engine's `RequestOptions`: the default
/// [`SpillPrecision::Int8`] compresses the offload window's disk traffic
/// 4x, while [`SpillPrecision::F32`] opts out for workloads that need the
/// spill round trip bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum SpillPrecision {
    /// Per-row affine u8 codes plus `(min, scale)` metadata (~4x fewer
    /// bytes; error `<= scale / 2` per element).
    #[default]
    Int8,
    /// Raw little-endian `f32` (bit-exact round trip).
    F32,
}

impl SpillPrecision {
    /// Exact on-disk bytes (header and CRC trailer included) of a
    /// `rows x cols` tensor encoded at this precision — also the cost
    /// model's spill-byte term.
    pub fn encoded_bytes(self, rows: usize, cols: usize) -> usize {
        HEADER_BYTES + self.payload_bytes(rows, cols) + CRC_BYTES
    }

    /// Payload bytes alone (no header, no checksum trailer).
    fn payload_bytes(self, rows: usize, cols: usize) -> usize {
        match self {
            SpillPrecision::F32 => 4 * rows * cols,
            SpillPrecision::Int8 => 8 * rows + rows * cols,
        }
    }

    fn tag(self) -> u8 {
        match self {
            SpillPrecision::Int8 => 1,
            SpillPrecision::F32 => 0,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SpillPrecision::F32),
            1 => Some(SpillPrecision::Int8),
            _ => None,
        }
    }
}

const MAGIC: [u8; 4] = *b"PSPL";
const VERSION: u8 = 3;
/// The pre-checksum format: same header, no CRC trailer. Still readable.
const VERSION_NO_CRC: u8 = 2;
const HEADER_BYTES: usize = 16;
const CRC_BYTES: usize = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum gzip/zip use, small enough to hand-roll and fast enough to
/// disappear under the spill throttle.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0_u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0_u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Deterministic read-fault injection for tests and the chaos harness.
///
/// The engine creates its spill files internally, so corruption faults
/// cannot be injected per-file from outside; this knob flips one payload
/// byte in every `n`-th slot read *before* checksum verification,
/// turning it into a [`StorageError::ChecksumMismatch`] at a
/// deterministic point in the fetch sequence. Injection is scoped to
/// files under a path prefix (a server's spill directory, a single test
/// file) so concurrently running tests cannot perturb each other. Off
/// by default.
pub mod fault {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    static TARGET: Mutex<Option<String>> = Mutex::new(None);
    static EVERY: AtomicUsize = AtomicUsize::new(0);
    static FETCHES: AtomicUsize = AtomicUsize::new(0);

    /// Corrupts every `n`-th fetch (1 = every fetch) from spill files
    /// whose path starts with `prefix`; resets the fetch counter.
    /// `n = 0` disables injection.
    pub fn corrupt_fetches_under(prefix: impl Into<String>, n: usize) {
        let mut target = TARGET.lock().expect("fault target lock");
        *target = (n > 0).then(|| prefix.into());
        FETCHES.store(0, Ordering::SeqCst);
        EVERY.store(n, Ordering::SeqCst);
    }

    /// Turns injection off and resets the counter.
    pub fn reset() {
        corrupt_fetches_under(String::new(), 0);
    }

    pub(crate) fn take_corrupt(path: &std::path::Path) -> bool {
        let n = EVERY.load(Ordering::SeqCst);
        if n == 0 {
            return false;
        }
        {
            let target = TARGET.lock().expect("fault target lock");
            match target.as_ref() {
                Some(prefix) if path.starts_with(prefix) => {}
                _ => return false,
            }
        }
        FETCHES.fetch_add(1, Ordering::SeqCst) % n == n - 1
    }
}

#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    rows: usize,
    cols: usize,
    enc: SpillPrecision,
    /// Total on-disk bytes of the slot's current payload, header included.
    len: usize,
}

/// A scratch file divided into equal-capacity versioned slots.
pub struct SpillFile {
    path: PathBuf,
    file: File,
    slots: usize,
    max_rows: usize,
    cols: usize,
    slot_bytes: usize,
    precision: SpillPrecision,
    meta: Mutex<Vec<Option<SlotMeta>>>,
    throttle: Throttle,
    write_micros: AtomicU64,
    read_micros: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    quarantined: AtomicU64,
}

impl SpillFile {
    /// Creates a spill file at `path` with `slots` slots, each sized for
    /// a tensor of up to `max_rows` rows by exactly `cols` columns at
    /// either precision.
    pub fn create(
        path: impl AsRef<Path>,
        slots: usize,
        max_rows: usize,
        cols: usize,
        precision: SpillPrecision,
        throttle: Throttle,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // A slot must hold the largest tensor at either encoding, so a
        // per-slot precision downgrade (or a future per-request mix)
        // can never overflow its neighbour.
        let slot_bytes = SpillPrecision::F32
            .encoded_bytes(max_rows, cols)
            .max(SpillPrecision::Int8.encoded_bytes(max_rows, cols));
        file.set_len((slots * slot_bytes) as u64)?;
        Ok(SpillFile {
            path,
            file,
            slots,
            max_rows,
            cols,
            slot_bytes,
            precision,
            meta: Mutex::new(vec![None; slots]),
            throttle,
            write_micros: AtomicU64::new(0),
            read_micros: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// Path of the backing scratch file (tests inject on-disk faults
    /// through it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Slots quarantined after a checksum mismatch.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Maximum tensor rows a slot can hold.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Column count every stored tensor must have.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The precision tensors are encoded at.
    pub fn precision(&self) -> SpillPrecision {
        self.precision
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read back so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Microseconds spent in spill writes.
    pub fn write_micros(&self) -> u64 {
        self.write_micros.load(Ordering::Relaxed)
    }

    /// Microseconds spent in spill reads.
    pub fn read_micros(&self) -> u64 {
        self.read_micros.load(Ordering::Relaxed)
    }

    fn bad_slot(&self, slot: usize) -> StorageError {
        StorageError::SectionMismatch {
            name: "spill".into(),
            reason: format!("slot {slot} out of {}", self.slots),
        }
    }

    /// Writes `tensor` into `slot` at the file's precision, replacing
    /// previous contents. Returns the encoded byte count.
    pub fn offload(&self, slot: usize, tensor: &Tensor) -> Result<u64> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let (rows, cols) = tensor.shape();
        if cols != self.cols || rows > self.max_rows {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!(
                    "tensor {rows}x{cols} exceeds slot capacity {}x{}",
                    self.max_rows, self.cols
                ),
            });
        }
        let enc = self.precision;
        let len = enc.encoded_bytes(rows, cols);
        let start = Instant::now();
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(enc.tag());
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        bytes.extend_from_slice(&(cols as u32).to_le_bytes());
        match enc {
            SpillPrecision::F32 => {
                for &v in tensor.data() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            SpillPrecision::Int8 => {
                let mut mins = Vec::with_capacity(rows);
                let mut scales = Vec::with_capacity(rows);
                let mut codes = vec![0_u8; rows * cols];
                for r in 0..rows {
                    let (min, scale) = rowq::encode_row(
                        &tensor.data()[r * cols..(r + 1) * cols],
                        &mut codes[r * cols..(r + 1) * cols],
                    )
                    .map_err(|e| StorageError::SectionMismatch {
                        name: "spill".into(),
                        reason: format!("row encode: {e}"),
                    })?;
                    mins.push(min);
                    scales.push(scale);
                }
                for &m in &mins {
                    bytes.extend_from_slice(&m.to_le_bytes());
                }
                for &s in &scales {
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
                bytes.extend_from_slice(&codes);
            }
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(bytes.len(), len);
        write_at(&self.file, (slot * self.slot_bytes) as u64, &bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.write_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.meta.lock().expect("spill meta lock")[slot] = Some(SlotMeta {
            rows,
            cols,
            enc,
            len,
        });
        Ok(len as u64)
    }

    /// Reads `slot`, cross-checks the header against the recorded
    /// metadata, and verifies the version-3 trailing CRC32 (version-2
    /// slots carry no trailer; verification is skipped). On a checksum
    /// mismatch the slot is **quarantined** — marked empty, counted in
    /// [`SpillFile::quarantined`] — and the typed
    /// [`StorageError::ChecksumMismatch`] tells the caller to recompute
    /// the chunk rather than consume corrupted data. Returns the payload
    /// bytes (header and trailer stripped).
    fn read_verified(&self, slot: usize, meta: SlotMeta) -> Result<Vec<u8>> {
        let start = Instant::now();
        let mut bytes = vec![0_u8; meta.len];
        read_at(&self.file, (slot * self.slot_bytes) as u64, &mut bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.read_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        if fault::take_corrupt(&self.path) && bytes.len() > HEADER_BYTES {
            bytes[HEADER_BYTES] ^= 0x40;
        }

        let corrupt = |reason: String| StorageError::SectionMismatch {
            name: "spill".into(),
            reason,
        };
        if bytes[0..4] != MAGIC || !matches!(bytes[4], VERSION | VERSION_NO_CRC) {
            return Err(corrupt(format!("slot {slot}: bad header")));
        }
        let enc = SpillPrecision::from_tag(bytes[5])
            .ok_or_else(|| corrupt(format!("slot {slot}: unknown encoding {}", bytes[5])))?;
        let rows = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if enc != meta.enc || rows != meta.rows || cols != meta.cols {
            return Err(corrupt(format!("slot {slot}: header/metadata mismatch")));
        }
        let body = HEADER_BYTES + enc.payload_bytes(rows, cols);
        if bytes[4] == VERSION {
            if bytes.len() < body + CRC_BYTES {
                return Err(corrupt(format!("slot {slot}: truncated checksum trailer")));
            }
            let stored =
                u32::from_le_bytes(bytes[body..body + CRC_BYTES].try_into().expect("4 bytes"));
            let computed = crc32(&bytes[..body]);
            if stored != computed {
                self.meta.lock().expect("spill meta lock")[slot] = None;
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::ChecksumMismatch {
                    slot,
                    reason: format!("stored {stored:#010x}, computed {computed:#010x}"),
                });
            }
        }
        bytes.truncate(body);
        bytes.drain(..HEADER_BYTES);
        Ok(bytes)
    }

    /// Reads the tensor stored in `slot` back into memory, decoding per
    /// the slot's recorded encoding after checksum verification.
    pub fn fetch(&self, slot: usize) -> Result<Tensor> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let meta = self.meta.lock().expect("spill meta lock")[slot].ok_or_else(|| {
            StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} is empty"),
            }
        })?;
        let payload = self.read_verified(slot, meta)?;
        let payload = payload.as_slice();
        let corrupt = |reason: String| StorageError::SectionMismatch {
            name: "spill".into(),
            reason,
        };
        let (rows, cols, enc) = (meta.rows, meta.cols, meta.enc);
        let mut data = vec![0.0_f32; rows * cols];
        match enc {
            SpillPrecision::F32 => {
                for (o, chunk) in data.iter_mut().zip(payload.chunks_exact(4)) {
                    *o = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
            }
            SpillPrecision::Int8 => {
                let read_f32 = |b: &[u8], i: usize| {
                    f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                };
                let (mins, rest) = payload.split_at(4 * rows);
                let (scales, codes) = rest.split_at(4 * rows);
                for r in 0..rows {
                    rowq::decode_row(
                        &codes[r * cols..(r + 1) * cols],
                        read_f32(mins, r),
                        read_f32(scales, r),
                        &mut data[r * cols..(r + 1) * cols],
                    )
                    .map_err(|e| corrupt(format!("slot {slot}: row decode: {e}")))?;
                }
            }
        }
        Ok(Tensor::from_vec(rows, cols, data)?)
    }

    /// Writes an already-encoded rowq block into `slot` — the int8
    /// compute path's write-back, which skips the encode the f32
    /// [`SpillFile::offload`] would redo. The slot is tagged
    /// [`SpillPrecision::Int8`] regardless of the file's default
    /// precision (the payload *is* the int8 wire format).
    pub fn offload_block(&self, slot: usize, block: &RowQuantBlock) -> Result<u64> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let (rows, cols) = (block.rows(), block.cols());
        if cols != self.cols || rows > self.max_rows {
            return Err(StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!(
                    "block {rows}x{cols} exceeds slot capacity {}x{}",
                    self.max_rows, self.cols
                ),
            });
        }
        let enc = SpillPrecision::Int8;
        let len = enc.encoded_bytes(rows, cols);
        let start = Instant::now();
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(enc.tag());
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        bytes.extend_from_slice(&(cols as u32).to_le_bytes());
        for &m in block.mins() {
            bytes.extend_from_slice(&m.to_le_bytes());
        }
        for &s in block.scales() {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        bytes.extend_from_slice(block.codes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(bytes.len(), len);
        write_at(&self.file, (slot * self.slot_bytes) as u64, &bytes)?;
        self.throttle.pace(start, bytes.len() as u64);
        self.write_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.meta.lock().expect("spill meta lock")[slot] = Some(SlotMeta {
            rows,
            cols,
            enc,
            len,
        });
        Ok(len as u64)
    }

    /// Reads `slot` back as a rowq block *without* decoding to f32 —
    /// the int8 compute path's fetch. An [`SpillPrecision::Int8`] slot
    /// returns its payload verbatim (bit-exact round trip of
    /// [`SpillFile::offload_block`]); an f32 slot is decoded and then
    /// row-encoded, so mixed-precision files still serve block fetches.
    pub fn fetch_block(&self, slot: usize) -> Result<RowQuantBlock> {
        if slot >= self.slots {
            return Err(self.bad_slot(slot));
        }
        let meta = self.meta.lock().expect("spill meta lock")[slot].ok_or_else(|| {
            StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot} is empty"),
            }
        })?;
        if meta.enc == SpillPrecision::F32 {
            let tensor = self.fetch(slot)?;
            return RowQuantBlock::encode(&tensor).map_err(|e| StorageError::SectionMismatch {
                name: "spill".into(),
                reason: format!("slot {slot}: re-encode: {e}"),
            });
        }
        let payload = self.read_verified(slot, meta)?;
        let payload = payload.as_slice();
        let corrupt = |reason: String| StorageError::SectionMismatch {
            name: "spill".into(),
            reason,
        };
        let (rows, cols) = (meta.rows, meta.cols);
        let read_f32 =
            |b: &[u8], i: usize| f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4"));
        let (minb, rest) = payload.split_at(4 * rows);
        let (scaleb, codes) = rest.split_at(4 * rows);
        let mins = (0..rows).map(|r| read_f32(minb, r)).collect();
        let scales = (0..rows).map(|r| read_f32(scaleb, r)).collect();
        RowQuantBlock::from_parts(rows, cols, mins, scales, codes.to_vec())
            .map_err(|e| corrupt(format!("slot {slot}: block parts: {e}")))
    }

    /// Marks a slot empty (no I/O).
    pub fn release(&self, slot: usize) {
        if slot < self.slots {
            self.meta.lock().expect("spill meta lock")[slot] = None;
        }
    }

    /// Removes the backing scratch file.
    pub fn cleanup(self) -> Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

#[cfg(unix)]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_at(file: &File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-spill-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn f32_offload_fetch_round_trip_is_bit_exact() {
        let path = tmp("rt");
        let spill =
            SpillFile::create(&path, 3, 4, 8, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.25);
        spill.offload(1, &t).unwrap();
        let back = spill.fetch(1).unwrap();
        assert_eq!(back, t);
        let expected = SpillPrecision::F32.encoded_bytes(4, 8) as u64;
        assert_eq!(spill.bytes_written(), expected);
        assert_eq!(spill.bytes_read(), expected);
        spill.cleanup().unwrap();
    }

    #[test]
    fn int8_round_trip_bounded_and_4x_smaller() {
        let path = tmp("int8");
        let rows = 16;
        let cols = 64;
        let spill = SpillFile::create(
            &path,
            2,
            rows,
            cols,
            SpillPrecision::Int8,
            Throttle::unlimited(),
        )
        .unwrap();
        let t = Tensor::from_fn(rows, cols, |r, c| ((r * 31 + c * 7) as f32 * 0.11).sin());
        let written = spill.offload(0, &t).unwrap();
        let back = spill.fetch(0).unwrap();
        assert_eq!(back.shape(), t.shape());
        // Row error bound: (max-min)/255/2; inputs live in [-1, 1].
        let bound = 2.0 / 255.0 / 2.0 + 1e-6;
        assert!(t.max_abs_diff(&back).unwrap() <= bound);
        // >= 3.5x fewer bytes than the f32 encoding of the same tensor.
        let f32_bytes = SpillPrecision::F32.encoded_bytes(rows, cols) as u64;
        assert!(written * 7 <= f32_bytes * 2, "{written} vs {f32_bytes}");
        spill.cleanup().unwrap();
    }

    #[test]
    fn block_offload_fetch_round_trip_is_bit_exact() {
        let path = tmp("block");
        let spill = SpillFile::create(&path, 2, 8, 32, SpillPrecision::Int8, Throttle::unlimited())
            .unwrap();
        let t = Tensor::from_fn(8, 32, |r, c| ((r * 13 + c * 5) as f32 * 0.23).cos());
        let block = RowQuantBlock::encode(&t).unwrap();
        let written = spill.offload_block(0, &block).unwrap();
        assert_eq!(written, SpillPrecision::Int8.encoded_bytes(8, 32) as u64);
        // The codes round-trip bit-exactly: no decode/re-encode drift.
        let back = spill.fetch_block(0).unwrap();
        assert_eq!(back, block);
        // The same slot decodes through the tensor path too.
        let decoded = spill.fetch(0).unwrap();
        let mut expect = Tensor::zeros(0, 0);
        block.decode_into(&mut expect).unwrap();
        assert_eq!(decoded, expect);
        // Oversized blocks are rejected like oversized tensors.
        let big = RowQuantBlock::encode(&Tensor::zeros(9, 32)).unwrap();
        assert!(spill.offload_block(0, &big).is_err());
        spill.cleanup().unwrap();
    }

    #[test]
    fn block_fetch_of_f32_slot_re_encodes() {
        let path = tmp("blockf32");
        let spill =
            SpillFile::create(&path, 1, 4, 16, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 16, |r, c| ((r + c) as f32 * 0.31).sin());
        spill.offload(0, &t).unwrap();
        let block = spill.fetch_block(0).unwrap();
        assert_eq!(block, RowQuantBlock::encode(&t).unwrap());
        spill.cleanup().unwrap();
    }

    #[test]
    fn slots_are_independent_and_overwrite_keeps_new_shape() {
        let path = tmp("indep");
        let spill =
            SpillFile::create(&path, 2, 4, 4, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let a = Tensor::full(2, 4, 1.0);
        let b = Tensor::full(4, 4, 2.0);
        spill.offload(0, &a).unwrap();
        spill.offload(1, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), a);
        assert_eq!(spill.fetch(1).unwrap(), b);
        spill.offload(0, &b).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), b);
        spill.cleanup().unwrap();
    }

    #[test]
    fn oversize_and_bad_slot_rejected() {
        let path = tmp("bad");
        let spill =
            SpillFile::create(&path, 1, 2, 4, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        // Too many rows.
        assert!(spill.offload(0, &Tensor::zeros(3, 4)).is_err());
        // Wrong column count.
        assert!(spill.offload(0, &Tensor::zeros(2, 3)).is_err());
        // Slot out of range.
        assert!(spill.offload(1, &Tensor::zeros(2, 4)).is_err());
        assert!(spill.fetch(0).is_err(), "empty slot fetch must fail");
        spill.cleanup().unwrap();
    }

    #[test]
    fn release_empties_slot() {
        let path = tmp("release");
        let spill =
            SpillFile::create(&path, 1, 2, 4, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        spill.offload(0, &Tensor::zeros(2, 4)).unwrap();
        spill.release(0);
        assert!(spill.fetch(0).is_err());
        spill.cleanup().unwrap();
    }

    #[test]
    fn throttled_spill_takes_time_and_int8_takes_less() {
        let path = tmp("throttle");
        // 1 MB/s: a ~1 KiB f32 write should take ~1 ms.
        let spill = SpillFile::create(
            &path,
            1,
            16,
            16,
            SpillPrecision::F32,
            Throttle::bandwidth(1 << 20),
        )
        .unwrap();
        let t = Tensor::zeros(16, 16);
        let start = Instant::now();
        spill.offload(0, &t).unwrap();
        assert!(start.elapsed().as_micros() >= 900);
        assert!(spill.write_micros() >= 900);
        spill.cleanup().unwrap();

        let path8 = tmp("throttle8");
        let spill8 = SpillFile::create(
            &path8,
            1,
            16,
            16,
            SpillPrecision::Int8,
            Throttle::bandwidth(1 << 20),
        )
        .unwrap();
        let start = Instant::now();
        spill8.offload(0, &t).unwrap();
        // ~400 bytes instead of ~1 KiB: well under the f32 pace.
        assert!(start.elapsed().as_micros() < 900);
        spill8.cleanup().unwrap();
    }

    #[test]
    fn encoded_bytes_matches_contract() {
        assert_eq!(
            SpillPrecision::F32.encoded_bytes(3, 8),
            HEADER_BYTES + 3 * 8 * 4 + CRC_BYTES
        );
        assert_eq!(
            SpillPrecision::Int8.encoded_bytes(3, 8),
            HEADER_BYTES + 3 * 8 + 3 * 8 + CRC_BYTES
        );
        // Default is the compressed format.
        assert_eq!(SpillPrecision::default(), SpillPrecision::Int8);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE reference vectors ("check" values from the CRC catalogue).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn corrupted_slot_quarantines_with_typed_error() {
        for precision in [SpillPrecision::F32, SpillPrecision::Int8] {
            let path = tmp(&format!("crc-{precision:?}"));
            let spill =
                SpillFile::create(&path, 2, 4, 8, precision, Throttle::unlimited()).unwrap();
            let t = Tensor::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.3).sin());
            spill.offload(0, &t).unwrap();
            // Flip one payload byte on disk, behind the file's back.
            let mut raw = vec![0_u8; 1];
            read_at(&spill.file, HEADER_BYTES as u64 + 2, &mut raw).unwrap();
            raw[0] ^= 0x01;
            write_at(&spill.file, HEADER_BYTES as u64 + 2, &raw).unwrap();
            match spill.fetch(0) {
                Err(StorageError::ChecksumMismatch { slot, .. }) => assert_eq!(slot, 0),
                other => panic!("expected checksum mismatch, got {other:?}"),
            }
            assert_eq!(spill.quarantined(), 1);
            // Quarantine emptied the slot; a rewrite heals it.
            assert!(spill.fetch(0).is_err(), "quarantined slot must read empty");
            spill.offload(0, &t).unwrap();
            assert_eq!(spill.fetch(0).unwrap().shape(), t.shape());
            assert_eq!(spill.quarantined(), 1);
            spill.cleanup().unwrap();
        }
    }

    #[test]
    fn corrupted_block_slot_quarantines_on_block_fetch() {
        let path = tmp("crc-block");
        let spill =
            SpillFile::create(&path, 1, 4, 8, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        let block = RowQuantBlock::encode(&Tensor::from_fn(4, 8, |r, c| (r + c) as f32)).unwrap();
        spill.offload_block(0, &block).unwrap();
        let mut raw = vec![0_u8; 1];
        read_at(&spill.file, HEADER_BYTES as u64, &mut raw).unwrap();
        raw[0] ^= 0x80;
        write_at(&spill.file, HEADER_BYTES as u64, &raw).unwrap();
        assert!(matches!(
            spill.fetch_block(0),
            Err(StorageError::ChecksumMismatch { slot: 0, .. })
        ));
        assert_eq!(spill.quarantined(), 1);
        spill.cleanup().unwrap();
    }

    #[test]
    fn version_2_slot_without_trailer_still_reads() {
        let path = tmp("v2compat");
        let spill =
            SpillFile::create(&path, 1, 4, 8, SpillPrecision::F32, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.5);
        spill.offload(0, &t).unwrap();
        // Rewrite the slot as version 2: flip the version byte and trash
        // the (now meaningless) trailer. A v3 reader must still decode it
        // bit-exactly, skipping verification.
        write_at(&spill.file, 4, &[VERSION_NO_CRC]).unwrap();
        let trailer_at = (HEADER_BYTES + SpillPrecision::F32.payload_bytes(4, 8)) as u64;
        write_at(&spill.file, trailer_at, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        assert_eq!(spill.fetch(0).unwrap(), t);
        assert_eq!(spill.quarantined(), 0);
        spill.cleanup().unwrap();
    }

    #[test]
    fn fault_hook_corrupts_every_nth_fetch_deterministically() {
        let path = tmp("faulthook");
        let spill =
            SpillFile::create(&path, 2, 4, 8, SpillPrecision::Int8, Throttle::unlimited()).unwrap();
        let t = Tensor::from_fn(4, 8, |r, c| ((r + 2 * c) as f32 * 0.2).cos());
        spill.offload(0, &t).unwrap();
        spill.offload(1, &t).unwrap();
        fault::corrupt_fetches_under(path.display().to_string(), 2);
        let first = spill.fetch(0);
        let second = spill.fetch(1);
        fault::reset();
        assert!(first.is_ok(), "fetch 1 of 2 must pass: {first:?}");
        assert!(
            matches!(second, Err(StorageError::ChecksumMismatch { .. })),
            "fetch 2 of 2 must trip the injected corruption: {second:?}"
        );
        assert_eq!(spill.quarantined(), 1);
        spill.cleanup().unwrap();
    }
}
