//! An intrusive, allocation-free LRU index over fixed slots.
//!
//! [`LruIndex`] tracks recency for a fixed number of slots using a doubly
//! linked list embedded in two `Vec<u32>`s. It does not own values — the
//! embedding cache keeps row payloads in one flat `Vec<f32>` and uses this
//! index purely for eviction ordering, so a cache hit costs two vector
//! writes and no allocation.

/// Sentinel meaning "no slot".
const NIL: u32 = u32::MAX;

/// Recency list over `capacity` slots; slot 0..capacity are caller-managed.
#[derive(Debug, Clone)]
pub struct LruIndex {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruIndex {
    /// Creates an index with room for `capacity` slots, all initially
    /// detached.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "capacity too large");
        LruIndex {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of attached slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of slots.
    pub fn capacity(&self) -> usize {
        self.prev.len()
    }

    /// Attaches `slot` as the most recently used entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slot is already attached.
    pub fn push_front(&mut self, slot: usize) {
        let s = slot as u32;
        debug_assert!(self.prev[slot] == NIL && self.next[slot] == NIL && self.head != s);
        self.next[slot] = self.head;
        self.prev[slot] = NIL;
        if self.head != NIL {
            self.prev[self.head as usize] = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
        self.len += 1;
    }

    /// Detaches `slot` from the recency list.
    pub fn detach(&mut self, slot: usize) {
        let s = slot as u32;
        let p = self.prev[slot];
        let n = self.next[slot];
        if p != NIL {
            self.next[p as usize] = n;
        } else if self.head == s {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else if self.tail == s {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.len -= 1;
    }

    /// Moves an attached `slot` to the front (most recently used).
    pub fn touch(&mut self, slot: usize) {
        if self.head == slot as u32 {
            return;
        }
        self.detach(slot);
        self.push_front(slot);
    }

    /// The least recently used slot, if any.
    pub fn lru(&self) -> Option<usize> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail as usize)
        }
    }

    /// Detaches and returns the least recently used slot.
    pub fn pop_lru(&mut self) -> Option<usize> {
        let slot = self.lru()?;
        self.detach(slot);
        Some(slot)
    }

    /// Iterates slots from most to least recently used (for diagnostics).
    pub fn iter_mru(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let s = cur as usize;
                cur = self.next[s];
                Some(s)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_order() {
        let mut l = LruIndex::new(4);
        assert!(l.is_empty());
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.len(), 3);
        // LRU is the first pushed.
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_promotes() {
        let mut l = LruIndex::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.touch(0); // 0 becomes MRU.
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(0));
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruIndex::new(2);
        l.push_front(0);
        l.push_front(1);
        l.touch(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    fn detach_middle() {
        let mut l = LruIndex::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.detach(1);
        assert_eq!(l.len(), 2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 0]);
        // Reattach works.
        l.push_front(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 2, 0]);
    }

    #[test]
    fn single_slot_lifecycle() {
        let mut l = LruIndex::new(1);
        l.push_front(0);
        assert_eq!(l.lru(), Some(0));
        l.touch(0);
        assert_eq!(l.pop_lru(), Some(0));
        assert!(l.is_empty());
        assert_eq!(l.lru(), None);
    }

    #[test]
    fn interleaved_stress_matches_reference() {
        // Cross-check against a naive Vec-based recency model.
        let cap = 16;
        let mut l = LruIndex::new(cap);
        let mut reference: Vec<usize> = Vec::new(); // front = MRU
        let mut attached = vec![false; cap];
        let mut x = 123_456_789_u64;
        for step in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = (x >> 33) as usize % cap;
            match step % 3 {
                0 if !attached[slot] => {
                    l.push_front(slot);
                    reference.insert(0, slot);
                    attached[slot] = true;
                }
                1 if attached[slot] => {
                    l.touch(slot);
                    reference.retain(|&s| s != slot);
                    reference.insert(0, slot);
                }
                2 if !reference.is_empty() => {
                    let got = l.pop_lru().unwrap();
                    let want = reference.pop().unwrap();
                    assert_eq!(got, want);
                    attached[got] = false;
                }
                _ => {}
            }
            assert_eq!(l.len(), reference.len());
        }
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), reference);
    }
}
