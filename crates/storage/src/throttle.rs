//! Deterministic bandwidth throttling for simulated SSDs.
//!
//! Mini-scale weight files are so small that a modern filesystem serves
//! them from page cache at tens of GB/s, which would hide the I/O the paper
//! overlaps. A [`Throttle`] inserts a sleep proportional to bytes moved so a
//! test or bench can dial in a realistic effective bandwidth (the paper's
//! platforms use PCIe 4.0 SSDs around 5 GB/s) — or scale it down so the
//! mini model exhibits the same compute/I-O ratio as the paper-scale model.

use std::time::{Duration, Instant};

/// Bandwidth limiter applied after each read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throttle {
    /// Emulated bandwidth in bytes per second. `None` disables throttling.
    bytes_per_sec: Option<u64>,
    /// Fixed per-request latency (seek/queue time).
    request_latency: Duration,
}

impl Throttle {
    /// No throttling: reads run at native filesystem speed.
    pub const fn unlimited() -> Self {
        Throttle {
            bytes_per_sec: None,
            request_latency: Duration::ZERO,
        }
    }

    /// Throttle to the given bandwidth with zero per-request latency.
    pub const fn bandwidth(bytes_per_sec: u64) -> Self {
        Throttle {
            bytes_per_sec: Some(bytes_per_sec),
            request_latency: Duration::ZERO,
        }
    }

    /// Throttle with both bandwidth and a fixed per-request latency.
    pub const fn with_latency(bytes_per_sec: u64, request_latency: Duration) -> Self {
        Throttle {
            bytes_per_sec: Some(bytes_per_sec),
            request_latency,
        }
    }

    /// Whether this throttle actually limits anything.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_sec.is_none() && self.request_latency.is_zero()
    }

    /// The duration a transfer of `bytes` should take under this throttle.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let bw = match self.bytes_per_sec {
            None => return self.request_latency,
            Some(b) => b.max(1),
        };
        self.request_latency + Duration::from_secs_f64(bytes as f64 / bw as f64)
    }

    /// Blocks until the emulated transfer would have completed, given that
    /// the real read started at `start` and moved `bytes` bytes.
    pub fn pace(&self, start: Instant, bytes: u64) {
        if self.is_unlimited() {
            return;
        }
        let target = self.transfer_time(bytes);
        let elapsed = start.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
    }
}

impl Default for Throttle {
    fn default() -> Self {
        Throttle::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_free() {
        let t = Throttle::unlimited();
        assert!(t.is_unlimited());
        assert_eq!(t.transfer_time(1 << 30), Duration::ZERO);
        let start = Instant::now();
        t.pace(start, 1 << 30);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t = Throttle::bandwidth(1_000_000); // 1 MB/s
        assert_eq!(t.transfer_time(1_000_000), Duration::from_secs(1));
        assert_eq!(t.transfer_time(500_000), Duration::from_millis(500));
    }

    #[test]
    fn latency_added_per_request() {
        let t = Throttle::with_latency(1_000_000, Duration::from_millis(10));
        assert_eq!(t.transfer_time(0), Duration::from_millis(10));
        assert_eq!(t.transfer_time(1_000_000), Duration::from_millis(1010));
    }

    #[test]
    fn pace_blocks_for_residual_time() {
        let t = Throttle::bandwidth(10_000_000); // 10 MB/s
        let start = Instant::now();
        t.pace(start, 200_000); // 20 ms worth
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn zero_bandwidth_clamped() {
        let t = Throttle::bandwidth(0);
        // Must not divide by zero; clamps to 1 B/s.
        assert!(t.transfer_time(2) >= Duration::from_secs(2));
    }
}
