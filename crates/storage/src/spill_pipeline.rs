//! The overlapped spill pipeline: background I/O lanes over a spill file
//! (§4.3's three-stage window).
//!
//! The paper's offload regime keeps three chunks in flight — one
//! *computing*, one *offloading* (write-back of the previous chunk), one
//! *prefetching* (read-ahead of the next) — so the spill traffic of the
//! neighbouring chunks hides behind the current chunk's compute. The
//! synchronous [`SpillFile`] serializes all three stages;
//! [`SpillPipeline`] restores the overlap with two background lanes built
//! like the dual-buffer weight prefetcher in [`crate::stream`]:
//!
//! * a **reader** lane servicing [`SpillPipeline::prefetch`] /
//!   [`SpillPipeline::fetch`],
//! * a **writer** lane servicing [`SpillPipeline::write_back`]
//!   (fire-and-forget; errors surface on the next call that must
//!   synchronize, and at [`SpillPipeline::drain`] / cleanup).
//!
//! Both lanes share one [`SpillFile`] through an `Arc` — positioned I/O
//! needs no seek cursor — and pace themselves independently against the
//! file's throttle, modelling a full-duplex NVMe SSD. Ordering hazards
//! are resolved at the consumer: a fetch or prefetch of a slot with an
//! outstanding write first waits for that write's acknowledgement, so a
//! read can never observe a half-written slot.
//!
//! [`SpillPipeline::synchronous`] wraps the same file without threads —
//! every call runs inline — which is both the degraded mode for hosts
//! where spawning fails and the frozen baseline the offload benchmarks
//! compare against.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use prism_tensor::igemm::RowQuantBlock;
use prism_tensor::Tensor;

use crate::{Result, SpillFile, StorageError};

/// Aggregate spill-pipeline statistics (the spill analogue of
/// [`crate::StreamStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Slot reads completed.
    pub reads: u64,
    /// Slot writes completed.
    pub writes: u64,
    /// Bytes read from the spill file.
    pub bytes_read: u64,
    /// Bytes written to the spill file.
    pub bytes_written: u64,
    /// Microseconds the I/O lanes spent in reads + writes.
    pub io_micros: u64,
    /// Microseconds the consumer blocked waiting on spill I/O.
    pub wait_micros: u64,
    /// Slots quarantined after a checksum mismatch (each one forced a
    /// recompute of its chunk from weights).
    pub quarantined: u64,
}

impl SpillStats {
    /// Total bytes moved to/from the spill file.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of spill I/O time hidden behind computation, in `[0, 1]`
    /// (`1.0` = the consumer never waited; `0.0` = fully synchronous).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.io_micros == 0 {
            return 1.0;
        }
        let hidden = self.io_micros.saturating_sub(self.wait_micros);
        hidden as f64 / self.io_micros as f64
    }
}

/// What travels through the lanes: decoded f32 hidden states (the
/// historical payload) or rowq-encoded blocks (the int8 compute path,
/// which keeps codes end-to-end — ~4x less memory alive in the lanes
/// and no decode/encode on either side of the I/O).
enum Payload {
    F32(Tensor),
    Int8(RowQuantBlock),
}

impl Payload {
    fn size_bytes(&self) -> u64 {
        match self {
            Payload::F32(t) => t.size_bytes() as u64,
            Payload::Int8(b) => b.size_bytes() as u64,
        }
    }

    /// Coerces into a tensor, decoding an encoded block if needed.
    fn into_tensor(self) -> Result<Tensor> {
        match self {
            Payload::F32(t) => Ok(t),
            Payload::Int8(b) => {
                let mut t = Tensor::zeros(0, 0);
                b.decode_into(&mut t).map_err(tensor_err)?;
                Ok(t)
            }
        }
    }

    /// Coerces into a block, encoding a decoded tensor if needed.
    fn into_block(self) -> Result<RowQuantBlock> {
        match self {
            Payload::Int8(b) => Ok(b),
            Payload::F32(t) => RowQuantBlock::encode(&t).map_err(tensor_err),
        }
    }
}

fn tensor_err(e: prism_tensor::TensorError) -> StorageError {
    StorageError::SectionMismatch {
        name: "spill-pipeline".into(),
        reason: e.to_string(),
    }
}

enum ReadJob {
    Read { slot: usize, encoded: bool },
}

struct ReadDone {
    slot: usize,
    payload: Result<Payload>,
}

enum WriteJob {
    Write { slot: usize, payload: Payload },
}

struct WriteDone {
    slot: usize,
    result: Result<u64>,
}

struct Lanes {
    read_tx: Option<Sender<ReadJob>>,
    read_rx: Receiver<ReadDone>,
    write_tx: Option<Sender<WriteJob>>,
    write_rx: Receiver<WriteDone>,
    reader: Option<std::thread::JoinHandle<()>>,
    writer: Option<std::thread::JoinHandle<()>>,
    /// Slots with reads in flight, in submission order.
    pending_reads: VecDeque<usize>,
    /// Read results that arrived ahead of their consumer.
    parked_reads: Vec<ReadDone>,
    /// Slots with unacknowledged writes (submission order), with each
    /// queued tensor's in-memory byte size.
    pending_writes: VecDeque<(usize, u64)>,
}

impl Lanes {
    fn has_pending_write(&self, slot: usize) -> bool {
        self.pending_writes.iter().any(|&(s, _)| s == slot)
    }
}

/// Spill I/O front-end: overlapped (background lanes) or synchronous.
pub struct SpillPipeline {
    file: Option<Arc<SpillFile>>,
    lanes: Option<Lanes>,
    /// First write error observed; surfaced on the next synchronizing
    /// call so a failed background write-back cannot pass silently.
    sticky: Option<String>,
    wait_micros: u64,
    reads: u64,
    writes: u64,
}

impl SpillPipeline {
    /// Wraps `file` without background lanes: every operation runs
    /// inline, exactly like pre-pipeline spilling.
    pub fn synchronous(file: SpillFile) -> Self {
        SpillPipeline {
            file: Some(Arc::new(file)),
            lanes: None,
            sticky: None,
            wait_micros: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Wraps `file` with a background reader and writer lane.
    ///
    /// Lane depth enforces the §4.3 memory bound: at most two write-backs
    /// are alive off the compute thread (one queued, one being written)
    /// and at most three reads, so [`SpillPipeline::write_back`] exerts
    /// backpressure — a producer outrunning the throttled writer blocks
    /// instead of accumulating the whole batch's hidden states in the
    /// channel.
    pub fn overlapped(file: SpillFile) -> Result<Self> {
        let file = Arc::new(file);
        let slots = file.slots().max(1);
        let (read_tx, read_job_rx) = bounded::<ReadJob>(2);
        let (read_done_tx, read_rx) = bounded::<ReadDone>(slots + 1);
        let (write_tx, write_job_rx) = bounded::<WriteJob>(1);
        let (write_done_tx, write_rx) = bounded::<WriteDone>(slots + 1);

        let reader_file = Arc::clone(&file);
        let reader = std::thread::Builder::new()
            .name("prism-spill-rd".into())
            .spawn(move || {
                while let Ok(ReadJob::Read { slot, encoded }) = read_job_rx.recv() {
                    let payload = if encoded {
                        reader_file.fetch_block(slot).map(Payload::Int8)
                    } else {
                        reader_file.fetch(slot).map(Payload::F32)
                    };
                    if read_done_tx.send(ReadDone { slot, payload }).is_err() {
                        break;
                    }
                }
            })
            .map_err(StorageError::Io)?;

        let writer_file = Arc::clone(&file);
        let writer = std::thread::Builder::new()
            .name("prism-spill-wr".into())
            .spawn(move || {
                while let Ok(WriteJob::Write { slot, payload }) = write_job_rx.recv() {
                    let result = match &payload {
                        Payload::F32(t) => writer_file.offload(slot, t),
                        Payload::Int8(b) => writer_file.offload_block(slot, b),
                    };
                    if write_done_tx.send(WriteDone { slot, result }).is_err() {
                        break;
                    }
                }
            })
            .map_err(StorageError::Io)?;

        Ok(SpillPipeline {
            file: Some(file),
            lanes: Some(Lanes {
                read_tx: Some(read_tx),
                read_rx,
                write_tx: Some(write_tx),
                write_rx,
                reader: Some(reader),
                writer: Some(writer),
                pending_reads: VecDeque::new(),
                parked_reads: Vec::new(),
                pending_writes: VecDeque::new(),
            }),
            sticky: None,
            wait_micros: 0,
            reads: 0,
            writes: 0,
        })
    }

    /// Whether background lanes are active.
    pub fn is_overlapped(&self) -> bool {
        self.lanes.is_some()
    }

    /// The precision the backing file encodes at.
    pub fn precision(&self) -> crate::SpillPrecision {
        self.file.as_ref().expect("live spill file").precision()
    }

    fn file(&self) -> &SpillFile {
        self.file.as_ref().expect("live spill file")
    }

    fn sticky_error(&mut self) -> Option<StorageError> {
        self.sticky
            .take()
            .map(|reason| StorageError::SectionMismatch {
                name: "spill-pipeline".into(),
                reason,
            })
    }

    fn note_write_done(sticky: &mut Option<String>, lanes: &mut Lanes, done: &WriteDone) {
        if let Some(pos) = lanes
            .pending_writes
            .iter()
            .position(|&(s, _)| s == done.slot)
        {
            lanes.pending_writes.remove(pos);
        }
        if let Err(e) = &done.result {
            sticky.get_or_insert_with(|| format!("write-back of slot {}: {e}", done.slot));
        }
    }

    /// Absorbs already-arrived write acknowledgements without blocking.
    fn drain_write_acks(&mut self) {
        let Some(lanes) = self.lanes.as_mut() else {
            return;
        };
        while let Ok(done) = lanes.write_rx.try_recv() {
            Self::note_write_done(&mut self.sticky, lanes, &done);
        }
    }

    /// Blocks until no write to `slot` is outstanding.
    fn flush_writes_to(&mut self, slot: usize) -> Result<()> {
        self.drain_write_acks();
        let Some(lanes) = self.lanes.as_mut() else {
            return Ok(());
        };
        let wait = Instant::now();
        while lanes.has_pending_write(slot) {
            let done = lanes
                .write_rx
                .recv()
                .map_err(|_| StorageError::StreamerGone)?;
            Self::note_write_done(&mut self.sticky, lanes, &done);
        }
        self.wait_micros += wait.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Discards any queued or parked read of `slot` (it predates a new
    /// write, so its data is stale). Blocks only while an in-flight read
    /// of that slot finishes.
    fn discard_reads_to(&mut self, slot: usize) -> Result<()> {
        let Some(lanes) = self.lanes.as_mut() else {
            return Ok(());
        };
        lanes.parked_reads.retain(|r| r.slot != slot);
        while lanes.pending_reads.contains(&slot) {
            let done = lanes
                .read_rx
                .recv()
                .map_err(|_| StorageError::StreamerGone)?;
            if let Some(pos) = lanes.pending_reads.iter().position(|&s| s == done.slot) {
                lanes.pending_reads.remove(pos);
            }
            if done.slot != slot {
                lanes.parked_reads.push(done);
            }
            // A stale read of `slot` (data or error) is dropped silently:
            // the caller is about to overwrite the slot anyway.
        }
        Ok(())
    }

    /// Schedules a background read of `slot` (no-op in synchronous mode;
    /// the later [`SpillPipeline::fetch`] does the work inline).
    pub fn prefetch(&mut self, slot: usize) -> Result<()> {
        self.prefetch_as(slot, false)
    }

    /// Schedules a background *encoded* read of `slot`: the reader lane
    /// returns the rowq block verbatim, never materializing f32 — the
    /// int8 compute path's read-ahead.
    pub fn prefetch_block(&mut self, slot: usize) -> Result<()> {
        self.prefetch_as(slot, true)
    }

    fn prefetch_as(&mut self, slot: usize, encoded: bool) -> Result<()> {
        if self.lanes.is_none() {
            return Ok(());
        }
        self.flush_writes_to(slot)?;
        let lanes = self.lanes.as_mut().expect("overlapped lanes");
        if lanes.pending_reads.contains(&slot) || lanes.parked_reads.iter().any(|r| r.slot == slot)
        {
            return Ok(());
        }
        lanes
            .read_tx
            .as_ref()
            .expect("reader lane open")
            .send(ReadJob::Read { slot, encoded })
            .map_err(|_| StorageError::StreamerGone)?;
        lanes.pending_reads.push_back(slot);
        Ok(())
    }

    /// Blocks until the read of `slot` completes, issuing it if absent.
    fn await_read(&mut self, slot: usize, encoded: bool) -> Result<Payload> {
        self.prefetch_as(slot, encoded)?;
        if let Some(e) = self.sticky_error() {
            return Err(e);
        }
        let lanes = self.lanes.as_mut().expect("overlapped lanes");
        let wait = Instant::now();
        let done = loop {
            if let Some(pos) = lanes.parked_reads.iter().position(|r| r.slot == slot) {
                break lanes.parked_reads.swap_remove(pos);
            }
            let done = lanes
                .read_rx
                .recv()
                .map_err(|_| StorageError::StreamerGone)?;
            if let Some(pos) = lanes.pending_reads.iter().position(|&s| s == done.slot) {
                lanes.pending_reads.remove(pos);
            }
            if done.slot == slot {
                break done;
            }
            lanes.parked_reads.push(done);
        };
        self.wait_micros += wait.elapsed().as_micros() as u64;
        if done.payload.is_ok() {
            self.reads += 1;
        }
        done.payload
    }

    /// Returns the tensor stored in `slot`, waiting for (or issuing) its
    /// read. Also the point where a prior background write error
    /// surfaces.
    pub fn fetch(&mut self, slot: usize) -> Result<Tensor> {
        if self.lanes.is_none() {
            let wait = Instant::now();
            let out = self.file().fetch(slot);
            self.wait_micros += wait.elapsed().as_micros() as u64;
            if out.is_ok() {
                self.reads += 1;
            }
            return out;
        }
        // A prefetch that raced in as encoded is decoded here — the
        // payload kinds convert losslessly in this direction.
        self.await_read(slot, false)?.into_tensor()
    }

    /// Returns the rowq block stored in `slot` without decoding to f32
    /// (an f32-encoded slot is row-encoded on the reader lane).
    pub fn fetch_block(&mut self, slot: usize) -> Result<RowQuantBlock> {
        if self.lanes.is_none() {
            let wait = Instant::now();
            let out = self.file().fetch_block(slot);
            self.wait_micros += wait.elapsed().as_micros() as u64;
            if out.is_ok() {
                self.reads += 1;
            }
            return out;
        }
        self.await_read(slot, true)?.into_block()
    }

    /// Writes `tensor` back into `slot` — queued on the writer lane when
    /// overlapped, inline otherwise.
    pub fn write_back(&mut self, slot: usize, tensor: Tensor) -> Result<()> {
        self.write_back_payload(slot, Payload::F32(tensor))
    }

    /// Writes an already-encoded rowq block back into `slot`, skipping
    /// the encode the f32 write-back performs; the lane holds the ~4x
    /// smaller codes instead of an f32 tensor until the write lands.
    pub fn write_back_block(&mut self, slot: usize, block: RowQuantBlock) -> Result<()> {
        self.write_back_payload(slot, Payload::Int8(block))
    }

    fn write_back_payload(&mut self, slot: usize, payload: Payload) -> Result<()> {
        match self.lanes.as_mut() {
            None => {
                let wait = Instant::now();
                let out = match &payload {
                    Payload::F32(t) => self.file().offload(slot, t).map(|_| ()),
                    Payload::Int8(b) => self.file().offload_block(slot, b).map(|_| ()),
                };
                self.wait_micros += wait.elapsed().as_micros() as u64;
                if out.is_ok() {
                    self.writes += 1;
                }
                out
            }
            Some(_) => {
                // A read issued before this write would observe stale
                // data; drop it so only post-write fetches resolve.
                self.discard_reads_to(slot)?;
                let bytes = payload.size_bytes();
                let lanes = self.lanes.as_mut().expect("overlapped lanes");
                lanes
                    .write_tx
                    .as_ref()
                    .expect("writer lane open")
                    .send(WriteJob::Write { slot, payload })
                    .map_err(|_| StorageError::StreamerGone)?;
                lanes.pending_writes.push_back((slot, bytes));
                self.writes += 1;
                self.drain_write_acks();
                Ok(())
            }
        }
    }

    /// Marks `slot` empty, after flushing any outstanding write to it.
    pub fn release(&mut self, slot: usize) -> Result<()> {
        self.flush_writes_to(slot)?;
        self.file().release(slot);
        Ok(())
    }

    /// Waits for every outstanding read and write; surfaces the first
    /// deferred error.
    pub fn drain(&mut self) -> Result<()> {
        if let Some(lanes) = self.lanes.as_mut() {
            let wait = Instant::now();
            while let Some(&slot) = lanes.pending_reads.front() {
                let done = lanes
                    .read_rx
                    .recv()
                    .map_err(|_| StorageError::StreamerGone)?;
                if let Some(pos) = lanes.pending_reads.iter().position(|&s| s == done.slot) {
                    lanes.pending_reads.remove(pos);
                }
                let _ = slot;
                if let Err(e) = done.payload {
                    self.sticky
                        .get_or_insert_with(|| format!("prefetch of slot {}: {e}", done.slot));
                }
            }
            lanes.parked_reads.clear();
            while !lanes.pending_writes.is_empty() {
                let done = lanes
                    .write_rx
                    .recv()
                    .map_err(|_| StorageError::StreamerGone)?;
                Self::note_write_done(&mut self.sticky, lanes, &done);
            }
            self.wait_micros += wait.elapsed().as_micros() as u64;
        }
        match self.sticky_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Statistics so far (bytes/io from the shared file counters, wait
    /// time from the consumer side).
    pub fn stats(&self) -> SpillStats {
        let file = self.file();
        SpillStats {
            reads: self.reads,
            writes: self.writes,
            bytes_read: file.bytes_read(),
            bytes_written: file.bytes_written(),
            io_micros: file.read_micros() + file.write_micros(),
            wait_micros: self.wait_micros,
            quarantined: file.quarantined(),
        }
    }

    /// In-memory bytes of tensors currently held by the background
    /// lanes: queued/in-flight write-backs plus read results parked on
    /// the consumer side. Results sitting unobserved in the reader's
    /// done channel (at most the lane depth) are not visible here; the
    /// engine folds this into its hidden-state metering so the §4.3
    /// peak includes what the pipeline keeps alive.
    pub fn held_bytes(&self) -> u64 {
        let Some(lanes) = self.lanes.as_ref() else {
            return 0;
        };
        let writes: u64 = lanes.pending_writes.iter().map(|&(_, b)| b).sum();
        let parked: u64 = lanes
            .parked_reads
            .iter()
            .filter_map(|r| r.payload.as_ref().ok().map(Payload::size_bytes))
            .sum();
        writes + parked
    }

    fn shutdown_lanes(&mut self) {
        let Some(mut lanes) = self.lanes.take() else {
            return;
        };
        // Closing the job senders ends both lane loops; drain their done
        // channels so a lane blocked on a full channel can exit its send.
        lanes.read_tx = None;
        lanes.write_tx = None;
        while lanes.read_rx.try_recv().is_ok() {}
        while lanes.write_rx.try_recv().is_ok() {}
        if let Some(h) = lanes.reader.take() {
            while !h.is_finished() {
                while lanes.read_rx.try_recv().is_ok() {}
                std::thread::yield_now();
            }
            let _ = h.join();
        }
        if let Some(h) = lanes.writer.take() {
            while !h.is_finished() {
                while lanes.write_rx.try_recv().is_ok() {}
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }

    /// Stops the lanes (draining in-flight work) and deletes the backing
    /// file. An abort path: pending I/O errors are reported after the
    /// file is gone, so a failing request can never leak its spill file.
    pub fn cleanup(mut self) -> Result<()> {
        let drained = self.drain();
        self.shutdown_lanes();
        let file = self.file.take().expect("live spill file");
        let removed = match Arc::try_unwrap(file) {
            Ok(file) => file.cleanup(),
            Err(_) => Err(StorageError::StreamerGone),
        };
        drained.and(removed)
    }
}

impl Drop for SpillPipeline {
    fn drop(&mut self) {
        self.shutdown_lanes();
        if let Some(file) = self.file.take() {
            if let Ok(file) = Arc::try_unwrap(file).map_err(|_| ()) {
                let _ = file.cleanup();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpillPrecision, Throttle};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-spillpipe-{}-{}", std::process::id(), name));
        p
    }

    fn file(name: &str, precision: SpillPrecision, throttle: Throttle) -> (SpillFile, PathBuf) {
        let path = tmp(name);
        let f = SpillFile::create(&path, 6, 8, 16, precision, throttle).unwrap();
        (f, path)
    }

    fn tensor(seed: usize) -> Tensor {
        Tensor::from_fn(8, 16, |r, c| ((r * 16 + c + seed) as f32 * 0.17).sin())
    }

    #[test]
    fn overlapped_matches_synchronous_results() {
        for precision in [SpillPrecision::F32, SpillPrecision::Int8] {
            let (f_sync, p_sync) = file("sync", precision, Throttle::unlimited());
            let mut sync = SpillPipeline::synchronous(f_sync);
            let (f_over, p_over) = file("over", precision, Throttle::unlimited());
            let mut over = SpillPipeline::overlapped(f_over).unwrap();
            assert!(over.is_overlapped() && !sync.is_overlapped());

            for slot in 0..4 {
                sync.write_back(slot, tensor(slot)).unwrap();
                over.write_back(slot, tensor(slot)).unwrap();
            }
            over.prefetch(0).unwrap();
            for slot in 0..4 {
                if slot + 1 < 4 {
                    over.prefetch(slot + 1).unwrap();
                }
                let a = sync.fetch(slot).unwrap();
                let b = over.fetch(slot).unwrap();
                assert_eq!(a, b, "slot {slot} diverged ({precision:?})");
            }
            over.drain().unwrap();
            sync.cleanup().unwrap();
            over.cleanup().unwrap();
            assert!(!p_sync.exists() && !p_over.exists());
        }
    }

    #[test]
    fn block_path_round_trips_without_f32_materialization() {
        for overlapped in [false, true] {
            let (f, path) = file("blockpipe", SpillPrecision::Int8, Throttle::unlimited());
            let mut pipe = if overlapped {
                SpillPipeline::overlapped(f).unwrap()
            } else {
                SpillPipeline::synchronous(f)
            };
            let blocks: Vec<RowQuantBlock> = (0..4)
                .map(|s| RowQuantBlock::encode(&tensor(s)).unwrap())
                .collect();
            for (slot, b) in blocks.iter().enumerate() {
                pipe.write_back_block(slot, b.clone()).unwrap();
            }
            pipe.prefetch_block(0).unwrap();
            for (slot, b) in blocks.iter().enumerate() {
                if slot + 1 < blocks.len() {
                    pipe.prefetch_block(slot + 1).unwrap();
                }
                // Codes written == codes read: bit-exact, no decode hop.
                assert_eq!(&pipe.fetch_block(slot).unwrap(), b, "slot {slot}");
            }
            // Mixed access still works: a tensor fetch of a block slot
            // decodes, matching the block's own decode.
            let t = pipe.fetch(2).unwrap();
            let mut expect = Tensor::zeros(0, 0);
            blocks[2].decode_into(&mut expect).unwrap();
            assert_eq!(t, expect);
            pipe.drain().unwrap();
            pipe.cleanup().unwrap();
            assert!(!path.exists());
        }
    }

    #[test]
    fn block_write_back_holds_fewer_bytes_than_f32() {
        let (f, path) = file(
            "blockheld",
            SpillPrecision::Int8,
            Throttle::bandwidth(1 << 20),
        );
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        let t = tensor(3);
        let block = RowQuantBlock::encode(&t).unwrap();
        let block_bytes = block.size_bytes() as u64;
        pipe.write_back_block(0, block).unwrap();
        let held = pipe.held_bytes();
        assert!(held <= block_bytes, "held {held} > block {block_bytes}");
        // 16-col rows make the per-row affine overhead visible; even so
        // the codes stay well under half the f32 footprint.
        assert!(block_bytes * 2 < t.size_bytes() as u64);
        pipe.drain().unwrap();
        pipe.cleanup().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn write_then_fetch_same_slot_is_ordered() {
        let (f, path) = file("order", SpillPrecision::F32, Throttle::bandwidth(4 << 20));
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        for round in 0..3 {
            let t = tensor(round * 10);
            pipe.write_back(2, t.clone()).unwrap();
            // Immediate fetch must observe the just-queued write.
            assert_eq!(pipe.fetch(2).unwrap(), t, "round {round}");
        }
        pipe.cleanup().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn overlap_hides_io_under_compute() {
        // 2 MB/s: each ~0.5 KiB f32 slot costs ~250 us of paced I/O.
        let (f, path) = file("hide", SpillPrecision::F32, Throttle::bandwidth(2 << 20));
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        for slot in 0..6 {
            pipe.write_back(slot, tensor(slot)).unwrap();
        }
        pipe.drain().unwrap();
        pipe.prefetch(0).unwrap();
        for slot in 0..6 {
            let t = pipe.fetch(slot).unwrap();
            if slot + 1 < 6 {
                pipe.prefetch(slot + 1).unwrap();
            }
            // "Compute" longer than one slot's I/O.
            let start = Instant::now();
            while start.elapsed() < std::time::Duration::from_micros(400) {
                std::hint::black_box(t.data().iter().sum::<f32>());
            }
            pipe.write_back(slot, t).unwrap();
        }
        pipe.drain().unwrap();
        let stats = pipe.stats();
        assert!(
            stats.overlap_efficiency() > 0.3,
            "overlap too low: {stats:?}"
        );
        assert!(stats.bytes() > 0);
        pipe.cleanup().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn write_back_invalidates_earlier_prefetch() {
        let (f, path) = file("stale", SpillPrecision::F32, Throttle::unlimited());
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        let old = tensor(1);
        let new = tensor(2);
        pipe.write_back(3, old).unwrap();
        pipe.drain().unwrap();
        // Prefetch the old contents (parked or in flight), then
        // overwrite: the fetch must observe the write, not the stale
        // prefetched tensor.
        pipe.prefetch(3).unwrap();
        pipe.write_back(3, new.clone()).unwrap();
        assert_eq!(pipe.fetch(3).unwrap(), new);
        pipe.cleanup().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn release_after_pending_write_is_flushed() {
        let (f, path) = file("rel", SpillPrecision::Int8, Throttle::bandwidth(8 << 20));
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        pipe.write_back(1, tensor(1)).unwrap();
        pipe.release(1).unwrap();
        assert!(pipe.fetch(1).is_err(), "released slot must be empty");
        pipe.cleanup().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn drop_mid_flight_removes_file() {
        let (f, path) = file("drop", SpillPrecision::Int8, Throttle::bandwidth(2 << 20));
        let mut pipe = SpillPipeline::overlapped(f).unwrap();
        for slot in 0..6 {
            pipe.write_back(slot, tensor(slot)).unwrap();
        }
        pipe.prefetch(0).unwrap();
        drop(pipe); // Must join lanes and delete the file without deadlock.
        assert!(!path.exists());
    }

    #[test]
    fn stats_overlap_edge_cases() {
        let empty = SpillStats::default();
        assert_eq!(empty.overlap_efficiency(), 1.0);
        let none_hidden = SpillStats {
            io_micros: 100,
            wait_micros: 100,
            ..Default::default()
        };
        assert_eq!(none_hidden.overlap_efficiency(), 0.0);
        let over = SpillStats {
            io_micros: 50,
            wait_micros: 80,
            ..Default::default()
        };
        assert_eq!(over.overlap_efficiency(), 0.0);
    }
}
