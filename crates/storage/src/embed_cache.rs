//! Embedding table caching (§4.4).
//!
//! Rerankers touch a tiny, Zipf-skewed slice of their vocabulary per request
//! (the paper measures ≤ 6.75 % of 151 k tokens). [`EmbeddingCache`] keeps a
//! configurable fraction of embedding rows in a flat in-memory arena managed
//! by an [`LruIndex`]; misses issue synchronous positioned reads against the
//! weight container. The cache exposes hit/miss/eviction statistics and its
//! exact resident byte size for memory accounting.

use std::collections::HashMap;
use std::time::Instant;

use prism_tensor::Tensor;

use crate::{Container, LruIndex, Result, SectionMeta, StorageError, Throttle};

/// Source of embedding rows (the disk-backed table, or an in-memory table in
/// tests).
pub trait RowSource {
    /// Number of rows (vocabulary size).
    fn rows(&self) -> usize;
    /// Row width (hidden dimension).
    fn cols(&self) -> usize;
    /// Reads row `row` into `out` (`out.len() == cols`).
    fn read_row(&self, row: usize, out: &mut [f32]) -> Result<()>;
}

/// Disk-backed [`RowSource`] reading from an `f32` container section.
pub struct DiskRowSource {
    container: Container,
    meta: SectionMeta,
    throttle: Throttle,
}

impl DiskRowSource {
    /// Opens the named section of `container` as a row source.
    ///
    /// The container is reopened so this source owns its file handle.
    pub fn new(container: &Container, section: &str, throttle: Throttle) -> Result<Self> {
        let meta = container.section(section)?.clone();
        if meta.cols == 0 {
            return Err(StorageError::SectionMismatch {
                name: section.to_string(),
                reason: "zero-width embedding section".into(),
            });
        }
        Ok(DiskRowSource {
            container: container.reopen()?,
            meta,
            throttle,
        })
    }
}

impl RowSource for DiskRowSource {
    fn rows(&self) -> usize {
        self.meta.rows as usize
    }

    fn cols(&self) -> usize {
        self.meta.cols as usize
    }

    fn read_row(&self, row: usize, out: &mut [f32]) -> Result<()> {
        let start = Instant::now();
        self.container.read_f32_rows(&self.meta, row as u64, out)?;
        self.throttle.pace(start, self.meta.cols * 4);
        Ok(())
    }
}

/// An in-memory [`RowSource`] (tests and the vanilla baseline).
pub struct TensorRowSource {
    table: Tensor,
}

impl TensorRowSource {
    /// Wraps a resident embedding table.
    pub fn new(table: Tensor) -> Self {
        TensorRowSource { table }
    }
}

impl RowSource for TensorRowSource {
    fn rows(&self) -> usize {
        self.table.rows()
    }

    fn cols(&self) -> usize {
        self.table.cols()
    }

    fn read_row(&self, row: usize, out: &mut [f32]) -> Result<()> {
        let r = self.table.row(row)?;
        out.copy_from_slice(r);
        Ok(())
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbeddingCacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that read from the backing source.
    pub misses: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
    /// Bytes read from the backing source on misses.
    pub miss_bytes: u64,
    /// Microseconds spent in miss reads.
    pub miss_micros: u64,
}

impl EmbeddingCacheStats {
    /// Hit rate in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// LRU cache over embedding rows backed by a [`RowSource`].
pub struct EmbeddingCache<S: RowSource> {
    source: S,
    capacity_rows: usize,
    cols: usize,
    /// Flat arena: `capacity_rows * cols` floats.
    arena: Vec<f32>,
    /// Which vocabulary row each slot currently holds (`u32::MAX` = empty).
    slot_row: Vec<u32>,
    /// Vocabulary row -> slot.
    map: HashMap<u32, u32>,
    lru: LruIndex,
    free: Vec<u32>,
    stats: EmbeddingCacheStats,
}

impl<S: RowSource> EmbeddingCache<S> {
    /// Creates a cache holding at most `capacity_rows` rows.
    ///
    /// The paper sizes this at 10 % of the vocabulary; callers pick the
    /// policy. A capacity of zero is clamped to one row.
    pub fn new(source: S, capacity_rows: usize) -> Self {
        let capacity_rows = capacity_rows.clamp(1, source.rows().max(1));
        let cols = source.cols();
        EmbeddingCache {
            capacity_rows,
            cols,
            arena: vec![0.0; capacity_rows * cols],
            slot_row: vec![u32::MAX; capacity_rows],
            map: HashMap::with_capacity(capacity_rows * 2),
            lru: LruIndex::new(capacity_rows),
            free: (0..capacity_rows as u32).rev().collect(),
            stats: EmbeddingCacheStats::default(),
            source,
        }
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Maximum rows held.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Resident bytes of the row arena (the cache's memory footprint).
    pub fn resident_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<f32>()
    }

    /// Statistics so far.
    pub fn stats(&self) -> EmbeddingCacheStats {
        self.stats
    }

    /// Resets statistics (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = EmbeddingCacheStats::default();
    }

    /// Looks up one token's embedding row, faulting it in on miss, and
    /// copies it into `out`.
    pub fn lookup_into(&mut self, token: u32, out: &mut [f32]) -> Result<()> {
        let slot = self.ensure_resident(token)?;
        let start = slot as usize * self.cols;
        out.copy_from_slice(&self.arena[start..start + self.cols]);
        Ok(())
    }

    /// Embeds a token sequence into a `[tokens.len(), cols]` tensor.
    pub fn embed_sequence(&mut self, tokens: &[u32]) -> Result<Tensor> {
        let mut out = Tensor::zeros(tokens.len(), self.cols);
        let cols = self.cols;
        for (i, &t) in tokens.iter().enumerate() {
            let slot = self.ensure_resident(t)?;
            let src = slot as usize * cols;
            let data = out.data_mut();
            data[i * cols..(i + 1) * cols].copy_from_slice(&self.arena_range(src));
        }
        Ok(out)
    }

    fn arena_range(&self, start: usize) -> Vec<f32> {
        self.arena[start..start + self.cols].to_vec()
    }

    fn ensure_resident(&mut self, token: u32) -> Result<u32> {
        if token as usize >= self.source.rows() {
            return Err(StorageError::SectionMismatch {
                name: "embedding".into(),
                reason: format!("token {token} outside vocabulary {}", self.source.rows()),
            });
        }
        if let Some(&slot) = self.map.get(&token) {
            self.stats.hits += 1;
            self.lru.touch(slot as usize);
            return Ok(slot);
        }
        self.stats.misses += 1;
        let slot = if let Some(free) = self.free.pop() {
            free
        } else {
            let victim = self.lru.pop_lru().expect("cache non-empty when full");
            let old_row = self.slot_row[victim];
            self.map.remove(&old_row);
            self.stats.evictions += 1;
            victim as u32
        };
        let start = Instant::now();
        let cols = self.cols;
        let arena_start = slot as usize * cols;
        let (rows_read, result) = {
            let out = &mut self.arena[arena_start..arena_start + cols];
            (cols as u64 * 4, self.source.read_row(token as usize, out))
        };
        result?;
        self.stats.miss_bytes += rows_read;
        self.stats.miss_micros += start.elapsed().as_micros() as u64;
        self.slot_row[slot as usize] = token;
        self.map.insert(token, slot);
        self.lru.push_front(slot as usize);
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(rows: usize, cols: usize) -> TensorRowSource {
        TensorRowSource::new(Tensor::from_fn(rows, cols, |r, c| (r * cols + c) as f32))
    }

    #[test]
    fn lookup_returns_correct_rows() {
        let mut cache = EmbeddingCache::new(source(10, 4), 4);
        let mut buf = [0.0_f32; 4];
        cache.lookup_into(3, &mut buf).unwrap();
        assert_eq!(buf, [12.0, 13.0, 14.0, 15.0]);
        cache.lookup_into(0, &mut buf).unwrap();
        assert_eq!(buf, [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn hits_after_first_access() {
        let mut cache = EmbeddingCache::new(source(10, 2), 4);
        let mut buf = [0.0_f32; 2];
        cache.lookup_into(5, &mut buf).unwrap();
        cache.lookup_into(5, &mut buf).unwrap();
        cache.lookup_into(5, &mut buf).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn evicts_lru_not_mru() {
        let mut cache = EmbeddingCache::new(source(10, 2), 2);
        let mut buf = [0.0_f32; 2];
        cache.lookup_into(1, &mut buf).unwrap(); // slotted
        cache.lookup_into(2, &mut buf).unwrap(); // slotted
        cache.lookup_into(1, &mut buf).unwrap(); // touch 1 -> MRU
        cache.lookup_into(3, &mut buf).unwrap(); // evicts 2
        assert_eq!(cache.stats().evictions, 1);
        cache.lookup_into(1, &mut buf).unwrap(); // still a hit
        assert_eq!(cache.stats().misses, 3);
        cache.lookup_into(2, &mut buf).unwrap(); // miss again
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn capacity_clamped_to_vocab() {
        let cache = EmbeddingCache::new(source(4, 2), 100);
        assert_eq!(cache.capacity_rows(), 4);
        let cache = EmbeddingCache::new(source(4, 2), 0);
        assert_eq!(cache.capacity_rows(), 1);
    }

    #[test]
    fn out_of_vocab_token_rejected() {
        let mut cache = EmbeddingCache::new(source(4, 2), 2);
        let mut buf = [0.0_f32; 2];
        assert!(cache.lookup_into(4, &mut buf).is_err());
    }

    #[test]
    fn embed_sequence_matches_rows() {
        let mut cache = EmbeddingCache::new(source(8, 3), 3);
        let t = cache.embed_sequence(&[2, 2, 7]).unwrap();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.row(0).unwrap(), &[6.0, 7.0, 8.0]);
        assert_eq!(t.row(1).unwrap(), &[6.0, 7.0, 8.0]);
        assert_eq!(t.row(2).unwrap(), &[21.0, 22.0, 23.0]);
        // Duplicate token cost one miss only.
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn resident_bytes_is_capacity_bound() {
        let cache = EmbeddingCache::new(source(100, 8), 10);
        assert_eq!(cache.resident_bytes(), 10 * 8 * 4);
    }

    #[test]
    fn zipf_workload_beats_uniform_at_10pct_capacity() {
        // The paper's 10%-of-vocab sizing rests on Zipf-skewed token usage.
        // Under uniform traffic a 10% cache hits ~10% of the time; under
        // Zipf(~1) traffic the same cache must hit a solid majority.
        let vocab = 1000_usize;
        let lookups = 20_000;
        let run = |zipf: bool| -> f64 {
            let mut cache = EmbeddingCache::new(source(vocab, 4), vocab / 10);
            let mut buf = [0.0_f32; 4];
            let mut x = 88172645463325252_u64;
            for _ in 0..lookups {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1_u64 << 53) as f64;
                let token = if zipf {
                    // Inverse CDF of rank-frequency 1/r: r = V^u.
                    ((vocab as f64).powf(u) as u32).saturating_sub(1) % vocab as u32
                } else {
                    (u * vocab as f64) as u32 % vocab as u32
                };
                cache.lookup_into(token, &mut buf).unwrap();
            }
            cache.stats().hit_rate()
        };
        let zipf_rate = run(true);
        let uniform_rate = run(false);
        assert!(zipf_rate > 0.5, "Zipf hit rate {zipf_rate} too low");
        assert!(
            uniform_rate < 0.2,
            "uniform hit rate {uniform_rate} unexpectedly high"
        );
        assert!(zipf_rate > uniform_rate + 0.35);
    }

    #[test]
    fn disk_row_source_reads_from_container() {
        use crate::{ContainerWriter, SectionKind};
        let mut path = std::env::temp_dir();
        path.push(format!("prism-embcache-{}", std::process::id()));
        let table = Tensor::from_fn(20, 3, |r, c| (r * 3 + c) as f32);
        let mut w = ContainerWriter::create(&path);
        w.add_f32("embedding", &table);
        w.add_raw("other", SectionKind::Raw, 0, 0, vec![9; 3]);
        w.finish().unwrap();
        let container = Container::open(&path).unwrap();
        let src = DiskRowSource::new(&container, "embedding", Throttle::unlimited()).unwrap();
        assert_eq!(src.rows(), 20);
        assert_eq!(src.cols(), 3);
        let mut cache = EmbeddingCache::new(src, 5);
        let mut buf = [0.0_f32; 3];
        cache.lookup_into(19, &mut buf).unwrap();
        assert_eq!(buf, [57.0, 58.0, 59.0]);
        assert!(cache.stats().miss_bytes >= 12);
        std::fs::remove_file(&path).unwrap();
    }
}
