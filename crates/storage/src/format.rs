//! The `PRSM` weight container format.
//!
//! A container is a single file holding named binary sections — one per
//! transformer layer plus the embedding table and classifier head. The
//! header stores a section table with byte offsets so readers can issue
//! positioned reads for exactly the bytes they need: whole layers (the
//! streamer), individual embedding rows (the cache), or nothing at all (the
//! cost model, which only needs sizes).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     8  b"PRSMWT01"
//! count     4  u32 number of sections
//! per section:
//!   name_len 2  u16
//!   name     .. utf-8
//!   kind     1  u8  (0 = f32 tensor, 1 = q4 blob, 2 = raw bytes)
//!   rows     8  u64
//!   cols     8  u64
//!   offset   8  u64 (from file start)
//!   len      8  u64 (bytes)
//! payloads  .. concatenated section bytes
//! ```

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use prism_tensor::Tensor;

use crate::{Result, StorageError};

const MAGIC: &[u8; 8] = b"PRSMWT01";

/// What a section's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Row-major `f32` tensor of shape `rows x cols`.
    F32,
    /// Opaque 4-bit quantized blob (shape metadata still meaningful).
    Q4,
    /// Raw bytes.
    Raw,
}

impl SectionKind {
    fn to_u8(self) -> u8 {
        match self {
            SectionKind::F32 => 0,
            SectionKind::Q4 => 1,
            SectionKind::Raw => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(SectionKind::F32),
            1 => Ok(SectionKind::Q4),
            2 => Ok(SectionKind::Raw),
            other => Err(StorageError::BadFormat {
                reason: format!("unknown section kind {other}"),
            }),
        }
    }
}

/// Metadata of one section in a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionMeta {
    /// Section name, e.g. `"layer.7"` or `"embedding"`.
    pub name: String,
    /// Payload interpretation.
    pub kind: SectionKind,
    /// Logical rows (0 for raw blobs).
    pub rows: u64,
    /// Logical columns (0 for raw blobs).
    pub cols: u64,
    /// Byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// Buffered writer that assembles a container and flushes it on
/// [`ContainerWriter::finish`].
///
/// Mini-scale model files are a few megabytes, so buffering sections in
/// memory keeps the format code simple; paper-scale weights never exist as
/// bytes (the device model works from section *sizes*).
pub struct ContainerWriter {
    path: PathBuf,
    sections: Vec<(SectionMeta, Vec<u8>)>,
}

impl ContainerWriter {
    /// Starts a new container that will be written to `path`.
    pub fn create(path: impl AsRef<Path>) -> Self {
        ContainerWriter {
            path: path.as_ref().to_path_buf(),
            sections: Vec::new(),
        }
    }

    /// Adds an `f32` tensor section.
    pub fn add_f32(&mut self, name: &str, tensor: &Tensor) -> &mut Self {
        let mut bytes = Vec::with_capacity(tensor.len() * 4);
        for &v in tensor.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push((
            SectionMeta {
                name: name.to_string(),
                kind: SectionKind::F32,
                rows: tensor.rows() as u64,
                cols: tensor.cols() as u64,
                offset: 0,
                len: bytes.len() as u64,
            },
            bytes,
        ));
        self
    }

    /// Adds an opaque byte section.
    pub fn add_raw(
        &mut self,
        name: &str,
        kind: SectionKind,
        rows: u64,
        cols: u64,
        bytes: Vec<u8>,
    ) -> &mut Self {
        self.sections.push((
            SectionMeta {
                name: name.to_string(),
                kind,
                rows,
                cols,
                offset: 0,
                len: bytes.len() as u64,
            },
            bytes,
        ));
        self
    }

    /// Writes the container to disk.
    pub fn finish(mut self) -> Result<()> {
        // Compute header size to lay out payload offsets.
        let mut header_len = MAGIC.len() + 4;
        for (meta, _) in &self.sections {
            header_len += 2 + meta.name.len() + 1 + 8 * 4;
        }
        let mut offset = header_len as u64;
        for (meta, _) in &mut self.sections {
            meta.offset = offset;
            offset += meta.len;
        }
        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (meta, _) in &self.sections {
            out.extend_from_slice(&(meta.name.len() as u16).to_le_bytes());
            out.extend_from_slice(meta.name.as_bytes());
            out.push(meta.kind.to_u8());
            out.extend_from_slice(&meta.rows.to_le_bytes());
            out.extend_from_slice(&meta.cols.to_le_bytes());
            out.extend_from_slice(&meta.offset.to_le_bytes());
            out.extend_from_slice(&meta.len.to_le_bytes());
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        let mut file = File::create(&self.path)?;
        file.write_all(&out)?;
        file.sync_all()?;
        Ok(())
    }
}

/// Read-only handle to a container with positioned-read access.
///
/// `Container` is cheap to clone logically via [`Container::reopen`]: each
/// component (streamer thread, embedding cache) opens its own file handle so
/// positioned reads never contend on a shared seek cursor.
pub struct Container {
    path: PathBuf,
    file: File,
    sections: Vec<SectionMeta>,
}

impl Container {
    /// Opens a container and parses its section table.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let mut magic = [0_u8; 8];
        file.read_exact(&mut magic)
            .map_err(|_| StorageError::BadFormat {
                reason: "file too short for magic".into(),
            })?;
        if &magic != MAGIC {
            return Err(StorageError::BadFormat {
                reason: "bad magic".into(),
            });
        }
        let count = read_u32(&mut file)? as usize;
        if count > 1 << 20 {
            return Err(StorageError::BadFormat {
                reason: format!("absurd section count {count}"),
            });
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = read_u16(&mut file)? as usize;
            let mut name = vec![0_u8; name_len];
            file.read_exact(&mut name)
                .map_err(|_| StorageError::BadFormat {
                    reason: "truncated section name".into(),
                })?;
            let name = String::from_utf8(name).map_err(|_| StorageError::BadFormat {
                reason: "non-utf8 section name".into(),
            })?;
            let mut kind = [0_u8; 1];
            file.read_exact(&mut kind)?;
            let kind = SectionKind::from_u8(kind[0])?;
            let rows = read_u64(&mut file)?;
            let cols = read_u64(&mut file)?;
            let offset = read_u64(&mut file)?;
            let len = read_u64(&mut file)?;
            sections.push(SectionMeta {
                name,
                kind,
                rows,
                cols,
                offset,
                len,
            });
        }
        let total = file.metadata()?.len();
        for s in &sections {
            if s.offset + s.len > total {
                return Err(StorageError::BadFormat {
                    reason: format!("section {} overruns file", s.name),
                });
            }
        }
        Ok(Container {
            path,
            file,
            sections,
        })
    }

    /// Opens an independent handle to the same container (own file cursor).
    pub fn reopen(&self) -> Result<Container> {
        Container::open(&self.path)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All section metadata in file order.
    pub fn sections(&self) -> &[SectionMeta] {
        &self.sections
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Result<&SectionMeta> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StorageError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Total payload bytes across sections whose name matches `pred`.
    pub fn payload_bytes(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.sections
            .iter()
            .filter(|s| pred(&s.name))
            .map(|s| s.len)
            .sum()
    }

    /// Reads an arbitrary byte range of a section via positioned read.
    pub fn read_range(&self, meta: &SectionMeta, start: u64, buf: &mut [u8]) -> Result<()> {
        if start + buf.len() as u64 > meta.len {
            return Err(StorageError::SectionMismatch {
                name: meta.name.clone(),
                reason: format!(
                    "range {}..{} exceeds section length {}",
                    start,
                    start + buf.len() as u64,
                    meta.len
                ),
            });
        }
        read_at(&self.file, meta.offset + start, buf)?;
        Ok(())
    }

    /// Reads a whole section's payload into `buf` (resized to fit).
    pub fn read_section_into(&self, name: &str, buf: &mut Vec<u8>) -> Result<SectionMeta> {
        let meta = self.section(name)?.clone();
        buf.resize(meta.len as usize, 0);
        self.read_range(&meta, 0, buf)?;
        Ok(meta)
    }

    /// Reads and decodes an `f32` tensor section.
    pub fn read_f32(&self, name: &str) -> Result<Tensor> {
        let meta = self.section(name)?.clone();
        if meta.kind != SectionKind::F32 {
            return Err(StorageError::SectionMismatch {
                name: name.to_string(),
                reason: "not an f32 section".into(),
            });
        }
        let mut bytes = vec![0_u8; meta.len as usize];
        self.read_range(&meta, 0, &mut bytes)?;
        decode_f32_tensor(&meta, &bytes)
    }

    /// Reads `row_count` logical `f32` rows starting at `row_start` from an
    /// `f32` section without touching the rest of the payload.
    pub fn read_f32_rows(&self, meta: &SectionMeta, row_start: u64, out: &mut [f32]) -> Result<()> {
        if meta.kind != SectionKind::F32 {
            return Err(StorageError::SectionMismatch {
                name: meta.name.clone(),
                reason: "not an f32 section".into(),
            });
        }
        let cols = meta.cols as usize;
        if cols == 0 || !out.len().is_multiple_of(cols) {
            return Err(StorageError::SectionMismatch {
                name: meta.name.clone(),
                reason: "output buffer not a whole number of rows".into(),
            });
        }
        let row_count = (out.len() / cols) as u64;
        if row_start + row_count > meta.rows {
            return Err(StorageError::SectionMismatch {
                name: meta.name.clone(),
                reason: format!(
                    "rows {row_start}..{} exceed {}",
                    row_start + row_count,
                    meta.rows
                ),
            });
        }
        let byte_start = row_start * meta.cols * 4;
        let mut bytes = vec![0_u8; out.len() * 4];
        self.read_range(meta, byte_start, &mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Ok(())
    }
}

/// Decodes a little-endian `f32` payload into a tensor using the section's
/// declared shape.
pub fn decode_f32_tensor(meta: &SectionMeta, bytes: &[u8]) -> Result<Tensor> {
    if bytes.len() != (meta.rows * meta.cols * 4) as usize {
        return Err(StorageError::SectionMismatch {
            name: meta.name.clone(),
            reason: format!(
                "payload {} bytes, shape wants {}",
                bytes.len(),
                meta.rows * meta.cols * 4
            ),
        });
    }
    let mut data = Vec::with_capacity(bytes.len() / 4);
    for chunk in bytes.chunks_exact(4) {
        data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Ok(Tensor::from_vec(
        meta.rows as usize,
        meta.cols as usize,
        data,
    )?)
}

#[cfg(unix)]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    // Fallback: clone the handle and seek, keeping the original cursor
    // untouched for concurrent readers.
    use std::io::{Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

fn read_u16(r: &mut impl Read) -> Result<u16> {
    let mut b = [0_u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0_u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0_u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prism-format-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn write_then_read_round_trip() {
        let path = tmp("roundtrip");
        let t0 = Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t1 = Tensor::from_fn(2, 2, |r, c| (r + c) as f32 * 0.5);
        let mut w = ContainerWriter::create(&path);
        w.add_f32("layer.0", &t0);
        w.add_f32("layer.1", &t1);
        w.add_raw("meta", SectionKind::Raw, 0, 0, vec![1, 2, 3]);
        w.finish().unwrap();

        let c = Container::open(&path).unwrap();
        assert_eq!(c.sections().len(), 3);
        assert_eq!(c.read_f32("layer.0").unwrap(), t0);
        assert_eq!(c.read_f32("layer.1").unwrap(), t1);
        let mut buf = Vec::new();
        let meta = c.read_section_into("meta", &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(meta.kind, SectionKind::Raw);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_section_reported() {
        let path = tmp("missing");
        let mut w = ContainerWriter::create(&path);
        w.add_raw("x", SectionKind::Raw, 0, 0, vec![]);
        w.finish().unwrap();
        let c = Container::open(&path).unwrap();
        assert!(matches!(
            c.section("y"),
            Err(StorageError::MissingSection { .. })
        ));
        assert!(c.read_f32("x").is_err(), "raw section is not f32");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTPRSM0rest").unwrap();
        assert!(matches!(
            Container::open(&path),
            Err(StorageError::BadFormat { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("trunc");
        std::fs::write(&path, b"PRS").unwrap();
        assert!(Container::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn positioned_row_reads() {
        let path = tmp("rows");
        let t = Tensor::from_fn(10, 3, |r, c| (r * 3 + c) as f32);
        let mut w = ContainerWriter::create(&path);
        w.add_f32("emb", &t);
        w.finish().unwrap();
        let c = Container::open(&path).unwrap();
        let meta = c.section("emb").unwrap().clone();
        let mut out = vec![0.0_f32; 6];
        c.read_f32_rows(&meta, 4, &mut out).unwrap();
        assert_eq!(out, vec![12., 13., 14., 15., 16., 17.]);
        // Out-of-range row read is rejected.
        let mut out = vec![0.0_f32; 3];
        assert!(c.read_f32_rows(&meta, 10, &mut out).is_err());
        // Non-row-multiple buffer is rejected.
        let mut out = vec![0.0_f32; 4];
        assert!(c.read_f32_rows(&meta, 0, &mut out).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_gives_independent_handle() {
        let path = tmp("reopen");
        let t = Tensor::from_fn(2, 2, |r, c| (r + c) as f32);
        let mut w = ContainerWriter::create(&path);
        w.add_f32("a", &t);
        w.finish().unwrap();
        let c1 = Container::open(&path).unwrap();
        let c2 = c1.reopen().unwrap();
        assert_eq!(c1.read_f32("a").unwrap(), c2.read_f32("a").unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn payload_bytes_filters() {
        let path = tmp("payload");
        let mut w = ContainerWriter::create(&path);
        w.add_raw("layer.0", SectionKind::Raw, 0, 0, vec![0; 10]);
        w.add_raw("layer.1", SectionKind::Raw, 0, 0, vec![0; 20]);
        w.add_raw("embedding", SectionKind::Raw, 0, 0, vec![0; 5]);
        w.finish().unwrap();
        let c = Container::open(&path).unwrap();
        assert_eq!(c.payload_bytes(|n| n.starts_with("layer.")), 30);
        assert_eq!(c.payload_bytes(|_| true), 35);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn section_overrun_detected() {
        let path = tmp("overrun");
        let mut w = ContainerWriter::create(&path);
        w.add_raw("x", SectionKind::Raw, 0, 0, vec![7; 64]);
        w.finish().unwrap();
        // Truncate payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            Container::open(&path),
            Err(StorageError::BadFormat { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
