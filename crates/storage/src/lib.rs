//! Storage substrate for PRISM: weight container files, simulated SSD
//! bandwidth, background layer prefetching, embedding-row caching and
//! hidden-state spilling.
//!
//! The paper streams transformer layer weights from an NVMe SSD while the
//! current layer computes (§4.2), serves embedding rows from a small LRU
//! cache backed by disk (§4.4), and spills chunk hidden states to disk under
//! extreme memory pressure (§4.3). This crate provides those mechanisms
//! against a real filesystem:
//!
//! * `format` — the `PRSM` container format holding named weight
//!   sections with positioned-read access ([`Container`],
//!   [`ContainerWriter`]),
//! * [`throttle`] — an optional bandwidth throttle so tests and benches can
//!   emulate a specific SSD speed deterministically,
//! * [`stream`] — [`stream::LayerStreamer`], the dual-buffer ("sliding
//!   window") prefetcher that overlaps layer I/O with computation,
//! * [`lru`] / [`embed_cache`] — an intrusive LRU index and the
//!   disk-backed embedding-row cache built on it,
//! * [`spill`] — slot-based spill files for offloaded hidden states, with
//!   a versioned slot format holding raw `f32` or per-row-quantized int8
//!   payloads ([`SpillPrecision`]),
//! * [`spill_pipeline`] — the overlapped spill pipeline: background
//!   reader/writer lanes that hide spill I/O behind chunk computation
//!   (§4.3's computing / offloading / prefetching window).

pub mod embed_cache;
pub mod error;
pub mod format;
pub mod lru;
pub mod spill;
pub mod spill_pipeline;
pub mod stream;
pub mod throttle;

pub use embed_cache::{DiskRowSource, EmbeddingCache, EmbeddingCacheStats, RowSource};
pub use error::StorageError;
pub use format::{Container, ContainerWriter, SectionKind, SectionMeta};
pub use lru::LruIndex;
pub use spill::{crc32, fault, SpillFile, SpillPrecision};
pub use spill_pipeline::{SpillPipeline, SpillStats};
pub use stream::{LayerStreamer, LoadedSection, StreamStats};
pub use throttle::Throttle;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
