//! Rerank request generation with planted relevance.
//!
//! A request is a query plus `N` candidates. Relevance levels are drawn in
//! three bands (high / mid / low) so score clusters exist for PRISM to
//! find; token sequences realize a level `r` by mixing on-topic /
//! off-topic / background tokens with on-topic probability increasing in
//! `r` and gaps scaled by the dataset's separability. Everything is
//! deterministic per `(profile, seed, request index)`.

use prism_model::semantics::{anti_topic_token_range, background_token_range, topic_token_range};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tokenizer::ZipfSampler;
use crate::DatasetProfile;

/// One candidate document.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateDoc {
    /// Token sequence of the *query ++ candidate* cross-encoder input.
    pub tokens: Vec<u32>,
    /// Planted relevance level in `[0, 1]`.
    pub relevance: f32,
    /// Whether this candidate belongs to the ground-truth relevant set.
    pub is_relevant: bool,
}

/// A full rerank request.
#[derive(Debug, Clone, PartialEq)]
pub struct RerankRequest {
    /// Query tokens (shared prefix of every candidate's input).
    pub query: Vec<u32>,
    /// Candidates in corpus order.
    pub candidates: Vec<CandidateDoc>,
    /// Indices of ground-truth relevant candidates.
    pub relevant: Vec<usize>,
}

impl RerankRequest {
    /// Candidate token sequences, ready for [`prism_model::SequenceBatch`].
    pub fn sequences(&self) -> Vec<Vec<u32>> {
        self.candidates.iter().map(|c| c.tokens.clone()).collect()
    }

    /// Indices sorted by descending planted relevance (ideal ranking).
    pub fn ideal_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.candidates.len()).collect();
        idx.sort_by(|&a, &b| {
            self.candidates[b]
                .relevance
                .total_cmp(&self.candidates[a].relevance)
        });
        idx
    }
}

/// Seeded generator of rerank requests for one dataset profile.
pub struct WorkloadGenerator {
    profile: DatasetProfile,
    vocab_size: usize,
    max_seq: usize,
    background: ZipfSampler,
    seed: u64,
}

impl WorkloadGenerator {
    /// Creates a generator targeting a model's vocabulary and sequence
    /// budget.
    pub fn new(profile: DatasetProfile, vocab_size: usize, max_seq: usize, seed: u64) -> Self {
        let (b0, b1) = background_token_range(vocab_size);
        let background = ZipfSampler::new((b1 - b0) as usize, profile.zipf_exponent);
        WorkloadGenerator {
            profile,
            vocab_size,
            max_seq,
            background,
            seed,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Generates request number `index` with `num_candidates` candidates.
    pub fn request(&self, index: u64, num_candidates: usize) -> RerankRequest {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ index
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(0x2545_F491_4F6C_DD1D),
        );
        let query_len = (self.max_seq / 8).clamp(2, 12);
        let query: Vec<u32> = (0..query_len)
            .map(|_| self.background_token(&mut rng))
            .collect();

        // Relevance levels in three bands whose spacing scales with
        // separability; band populations follow the profile's ground-truth
        // density.
        let sep = self.profile.separability;
        let n_rel = sample_count(&mut rng, self.profile.relevant_per_request, num_candidates);
        let n_mid = ((num_candidates - n_rel) / 2)
            .max(1)
            .min(num_candidates - n_rel);
        let mut levels = Vec::with_capacity(num_candidates);
        for i in 0..num_candidates {
            let (base, spread) = if i < n_rel {
                (0.55 + 0.35 * sep, 0.08)
            } else if i < n_rel + n_mid {
                (0.45, 0.10)
            } else {
                (0.40 - 0.32 * sep, 0.08)
            };
            let jitter = (rng.gen::<f32>() - 0.5) * 2.0 * spread;
            levels.push((base + jitter).clamp(0.02, 0.98));
        }
        // Shuffle so relevant docs are not positionally biased.
        for i in (1..levels.len()).rev() {
            let j = rng.gen_range(0..=i);
            levels.swap(i, j);
        }

        let candidates: Vec<CandidateDoc> = levels
            .iter()
            .map(|&r| self.candidate(&mut rng, &query, r))
            .collect();
        // Ground truth: the top band.
        let rel_threshold = 0.5 + 0.1 * sep;
        let relevant: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (c.relevance >= rel_threshold).then_some(i))
            .collect();
        RerankRequest {
            query,
            candidates,
            relevant,
        }
    }

    /// A deterministic paraphrase of `base`: each candidate body token
    /// flips to a fresh background token with probability `jitter`,
    /// while the shared query prefix, candidate count, lengths, and
    /// planted relevance stay identical. `jitter = 0` returns a
    /// verbatim copy. Pure function of `(seed, index, jitter, base)` —
    /// the per-index seed mix is salted so a near-duplicate of request
    /// `i` never shares its token stream with request `i` itself.
    pub fn near_duplicate(&self, base: &RerankRequest, index: u64, jitter: f64) -> RerankRequest {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ 0x0A11_A5ED_u64
                ^ index
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(0x2545_F491_4F6C_DD1D),
        );
        let jitter = jitter.clamp(0.0, 1.0);
        let query_len = base.query.len();
        let mut out = base.clone();
        for candidate in &mut out.candidates {
            for token in candidate.tokens.iter_mut().skip(query_len) {
                if rng.gen::<f64>() < jitter {
                    *token = self.background_token(&mut rng);
                }
            }
        }
        out
    }

    fn candidate(&self, rng: &mut StdRng, query: &[u32], relevance: f32) -> CandidateDoc {
        let len_mean = self.profile.candidate_len_mean * (self.max_seq as f32 * 0.75);
        let len_std = len_mean * self.profile.candidate_len_rel_std;
        let body_len = (len_mean + (rng.gen::<f32>() - 0.5) * 2.0 * len_std)
            .round()
            .clamp(4.0, (self.max_seq - query.len()) as f32) as usize;

        let noise = self.profile.token_noise;
        let (t0, t1) = topic_token_range(self.vocab_size);
        let (a0, a1) = anti_topic_token_range(self.vocab_size);
        // On-topic probability rises linearly with relevance; token noise
        // occasionally flips a token's band.
        let p_topic = 0.15 + 0.6 * relevance;
        let p_anti = 0.15 + 0.6 * (1.0 - relevance);
        let mut tokens: Vec<u32> = Vec::with_capacity(query.len() + body_len);
        tokens.extend_from_slice(query);
        for _ in 0..body_len {
            let u: f32 = rng.gen();
            let flip = rng.gen::<f32>() < noise;
            let scaled_topic = p_topic * 0.6;
            let scaled_anti = scaled_topic + p_anti * 0.6;
            let band = if u < scaled_topic {
                if flip {
                    Band::Anti
                } else {
                    Band::Topic
                }
            } else if u < scaled_anti {
                if flip {
                    Band::Topic
                } else {
                    Band::Anti
                }
            } else {
                Band::Background
            };
            let tok = match band {
                Band::Topic => t0 + rng.gen_range(0..t1 - t0),
                Band::Anti => a0 + rng.gen_range(0..a1 - a0),
                Band::Background => self.background_token(rng),
            };
            tokens.push(tok);
        }
        CandidateDoc {
            tokens,
            relevance,
            is_relevant: false, // Filled by caller via `relevant` indices.
        }
    }

    /// Deterministic tenant label for request `index` among `tenants`
    /// distinct tenants, with harmonically skewed popularity (tenant
    /// `t` submits with weight `1/(t+1)`), so per-tenant quota and
    /// shard-fairness tests get a hot tenant whose limit actually
    /// binds. Pure function of `(seed, index, tenants)`.
    pub fn tenant(&self, index: u64, tenants: usize) -> String {
        let tenants = tenants.max(1);
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x1F12_3BB5_159A_55E5),
        );
        let total: f64 = (0..tenants).map(|t| 1.0 / (t + 1) as f64).sum();
        let mut u = rng.gen::<f64>() * total;
        for t in 0..tenants {
            u -= 1.0 / (t + 1) as f64;
            if u <= 0.0 {
                return format!("tenant-{t}");
            }
        }
        format!("tenant-{}", tenants - 1)
    }

    fn background_token(&self, rng: &mut StdRng) -> u32 {
        let (b0, _) = background_token_range(self.vocab_size);
        b0 + self.background.sample(rng) as u32
    }
}

enum Band {
    Topic,
    Anti,
    Background,
}

fn sample_count(rng: &mut StdRng, mean: f32, max: usize) -> usize {
    let jitter = (rng.gen::<f32>() - 0.5) * 2.0;
    ((mean + jitter).round() as usize).clamp(1, max.saturating_sub(2).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_catalog;
    use prism_model::semantics::token_signal;

    fn generator(name: &str) -> WorkloadGenerator {
        let profile = crate::dataset::dataset_by_name(name).unwrap();
        WorkloadGenerator::new(profile, 2048, 64, 99)
    }

    #[test]
    fn requests_are_deterministic() {
        let g = generator("wikipedia");
        let a = g.request(3, 20);
        let b = g.request(3, 20);
        assert_eq!(a, b);
        let c = g.request(4, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn tenant_labels_are_deterministic_skewed_and_in_range() {
        let g = generator("wikipedia");
        let tenants = 4;
        let mut counts = vec![0_usize; tenants];
        for i in 0..4_000_u64 {
            let label = g.tenant(i, tenants);
            assert_eq!(label, g.tenant(i, tenants));
            let t: usize = label.strip_prefix("tenant-").unwrap().parse().unwrap();
            counts[t] += 1;
        }
        // Harmonic weights 1, 1/2, 1/3, 1/4: the hot tenant owns ~48%
        // of the stream and every tenant appears.
        assert!(counts[0] > counts[1] && counts[1] > counts[3], "{counts:?}");
        assert!(counts[0] > 4_000 * 2 / 5, "hot tenant too cold: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Degenerate argument: everything lands on the only tenant.
        assert_eq!(g.tenant(7, 0), "tenant-0");
    }

    #[test]
    fn request_shape_is_correct() {
        let g = generator("msmarco");
        let r = g.request(0, 20);
        assert_eq!(r.candidates.len(), 20);
        assert!(!r.relevant.is_empty());
        assert!(r.relevant.len() < 20);
        for c in &r.candidates {
            assert!(c.tokens.len() <= 64);
            assert!(c.tokens.len() >= r.query.len() + 4);
            assert!(c.tokens.starts_with(&r.query));
            assert!(c.tokens.iter().all(|&t| (t as usize) < 2048));
        }
    }

    #[test]
    fn relevant_set_matches_top_relevance() {
        let g = generator("wikipedia");
        let r = g.request(1, 20);
        let ideal = r.ideal_ranking();
        // Every ground-truth index must be in the top |relevant| of the
        // ideal ranking (relevance bands are disjoint by construction).
        let top: Vec<usize> = ideal[..r.relevant.len()].to_vec();
        for rel in &r.relevant {
            assert!(top.contains(rel), "relevant {rel} missing from ideal top");
        }
    }

    #[test]
    fn token_mix_encodes_relevance() {
        let g = generator("quora");
        let r = g.request(5, 20);
        // Mean token signal of body tokens must correlate with relevance.
        let mean_signal = |c: &CandidateDoc| -> f32 {
            let body = &c.tokens[r.query.len()..];
            body.iter().map(|&t| token_signal(t, 2048)).sum::<f32>() / body.len() as f32
        };
        let ideal = r.ideal_ranking();
        let best = mean_signal(&r.candidates[ideal[0]]);
        let worst = mean_signal(&r.candidates[*ideal.last().unwrap()]);
        assert!(
            best > worst + 0.1,
            "signal best {best} worst {worst} must separate"
        );
    }

    #[test]
    fn separability_widens_relevance_gaps() {
        let easy = generator("quora"); // separability 0.8
        let hard = generator("coderag"); // separability 0.38
        let gap = |g: &WorkloadGenerator| -> f32 {
            let r = g.request(2, 20);
            let mut lv: Vec<f32> = r.candidates.iter().map(|c| c.relevance).collect();
            lv.sort_by(f32::total_cmp);
            lv.last().unwrap() - lv.first().unwrap()
        };
        assert!(gap(&easy) > gap(&hard));
    }

    #[test]
    fn all_catalog_profiles_generate() {
        for profile in dataset_catalog() {
            let g = WorkloadGenerator::new(profile, 2048, 64, 1);
            let r = g.request(0, 10);
            assert_eq!(r.candidates.len(), 10, "{}", g.profile().name);
            assert!(!r.relevant.is_empty(), "{}", g.profile().name);
        }
    }

    #[test]
    fn near_duplicates_paraphrase_bodies_only() {
        let g = generator("wikipedia");
        let base = g.request(3, 12);
        // Determinism and index sensitivity.
        let a = g.near_duplicate(&base, 3, 0.2);
        assert_eq!(a, g.near_duplicate(&base, 3, 0.2));
        assert_ne!(a, g.near_duplicate(&base, 4, 0.2));
        // Zero jitter is a verbatim repeat.
        assert_eq!(g.near_duplicate(&base, 3, 0.0), base);
        // Shape, query prefix, and planted relevance survive; the body
        // flip rate lands near the requested jitter.
        assert_eq!(a.relevant, base.relevant);
        let (mut flipped, mut body) = (0_usize, 0_usize);
        for (dup, orig) in a.candidates.iter().zip(&base.candidates) {
            assert_eq!(dup.tokens.len(), orig.tokens.len());
            assert_eq!(dup.relevance, orig.relevance);
            assert!(dup.tokens.starts_with(&base.query));
            for (d, o) in dup.tokens[base.query.len()..]
                .iter()
                .zip(&orig.tokens[base.query.len()..])
            {
                body += 1;
                flipped += usize::from(d != o);
            }
        }
        let rate = flipped as f64 / body as f64;
        assert!(
            rate > 0.05 && rate < 0.4,
            "flip rate {rate:.3} for jitter 0.2 ({flipped}/{body})"
        );
    }

    #[test]
    fn sequences_accessor_matches_candidates() {
        let g = generator("nq");
        let r = g.request(7, 5);
        let seqs = r.sequences();
        assert_eq!(seqs.len(), 5);
        for (s, c) in seqs.iter().zip(&r.candidates) {
            assert_eq!(s, &c.tokens);
        }
    }
}
